//! Macro-scale soak: a 100 000-session virtual organization must run
//! with observability state bounded by the number of *sites* — never
//! the number of sessions — and produce bit-identical metrics, trace
//! digests, and per-site checksums at every shard/thread packing.
//! This is the memory-bounded counterpart of `tests/determinism.rs`:
//! the same claims, held at the scale where per-session bookkeeping
//! would blow up.

use gridvm::core::multisite::{build_vo_scale, Placement, VoScaleConfig};
use gridvm::simcore::metrics::{self, Metrics};

const SESSIONS: u64 = 100_000;

/// Kept fast enough for debug-profile CI: short sessions, one work
/// draw per step, but the full diurnal + flash-crowd arrival shape
/// over 8 regions × 6 sites.
fn soak_config() -> VoScaleConfig {
    VoScaleConfig {
        sessions: SESSIONS,
        steps_per_session: 4,
        work_draws: 1,
        ..VoScaleConfig::reference()
    }
}

struct SoakRun {
    digest: u64,
    metrics: Metrics,
    checksums: Vec<u64>,
    retained: usize,
    sampled: u64,
}

fn run(shards: usize, threads: usize) -> SoakRun {
    let cfg = soak_config();
    let mut sim = build_vo_scale(&cfg).shards(shards).threads(threads);
    metrics::reset();
    sim.run();
    metrics::reset();
    let merged = sim.merged_metrics();
    let checksums: Vec<u64> = (0..cfg.sites() as usize)
        .map(|i| sim.with_site(i, |s, _| s.world.checksum))
        .collect();
    SoakRun {
        digest: sim.trace_digest(),
        metrics: merged,
        checksums,
        retained: sim.retained_trace_entries(),
        sampled: sim.sampled_trace_entries(),
    }
}

#[test]
fn hundred_thousand_sessions_stay_bounded_and_invariant() {
    let cfg = soak_config();
    let base = run(1, 1);

    // Every session completed; observability stayed O(sites).
    assert_eq!(base.metrics.counter("vo.sessions_completed"), SESSIONS);
    assert_eq!(base.metrics.counter("vo.arrivals"), SESSIONS);
    assert_eq!(
        base.metrics.counter("vo.hops"),
        base.metrics.counter("vo.hops_in"),
        "no lost hops"
    );
    assert!(
        base.metrics.tracked_entries() < 32,
        "metric keyspace grew with session count: {} entries",
        base.metrics.tracked_entries()
    );
    assert!(
        base.retained <= cfg.sites() as usize * cfg.trace_capacity,
        "trace rings exceeded their per-site capacity"
    );
    assert_eq!(
        base.metrics.counter("trace.sampled") + base.metrics.counter("trace.dropped"),
        SESSIONS,
        "one sampling decision per completion"
    );
    assert_eq!(base.sampled, base.metrics.counter("trace.sampled"));

    // The slowdown histogram saw every session and stayed ordered.
    let slowdown = base
        .metrics
        .histogram("vo.slowdown_x1000")
        .expect("slowdown histogram");
    assert_eq!(slowdown.count(), SESSIONS);
    assert!(slowdown.min() >= 1000, "slowdown is ≥ 1x by construction");
    assert!(slowdown.p99() >= slowdown.p50());

    // Bit-identical across shard and thread packings.
    for (shards, threads) in [(1, 8), (4, 1), (4, 8)] {
        let other = run(shards, threads);
        assert_eq!(
            other.digest, base.digest,
            "trace digest diverged at shards={shards} threads={threads}"
        );
        assert_eq!(
            other.metrics, base.metrics,
            "metrics diverged at shards={shards} threads={threads}"
        );
        assert_eq!(
            other.checksums, base.checksums,
            "world checksums diverged at shards={shards} threads={threads}"
        );
        assert_eq!(other.retained, base.retained);
    }
}

#[test]
fn soak_world_reproduces_per_seed_and_varies_across_seeds() {
    let with_seed = |seed: u64| {
        let cfg = VoScaleConfig {
            sessions: 2_000,
            seed,
            ..soak_config()
        };
        let mut sim = build_vo_scale(&cfg).shards(4).threads(2);
        metrics::reset();
        sim.run();
        metrics::reset();
        (sim.trace_digest(), sim.merged_metrics())
    };
    assert_eq!(with_seed(7), with_seed(7));
    assert_ne!(with_seed(7).0, with_seed(8).0, "seed must matter");
}

#[test]
fn placement_changes_the_flow_but_not_the_accounting() {
    for placement in Placement::ALL {
        let cfg = VoScaleConfig {
            sessions: 2_000,
            placement,
            ..soak_config()
        };
        let mut sim = build_vo_scale(&cfg).shards(4).threads(2);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(
            m.counter("vo.sessions_completed"),
            cfg.sessions,
            "{} lost sessions",
            placement.label()
        );
        assert!(
            m.tracked_entries() < 32,
            "{} grew the metric keyspace",
            placement.label()
        );
    }
}
