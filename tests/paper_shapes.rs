//! Integration tests asserting the paper's headline result *shapes*
//! across crates (small sample counts — the bench binaries run the
//! full versions).

use gridvm::core::server::ComputeServer;
use gridvm::core::startup::{run_startup, StartupConfig, StartupMode, StateAccess};
use gridvm::host::{HostConfig, HostSim, TaskSpec};
use gridvm::hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm::sched::SchedulerKind;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::stats::OnlineStats;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::units::{ByteSize, CpuWork};
use gridvm::storage::disk::{DiskModel, DiskProfile};
use gridvm::vmm::exec::{run_app, ExecMode, LocalDiskStorage};
use gridvm::vmm::machine::DiskMode;
use gridvm::vmm::VirtCostModel;
use gridvm::workloads::spec;

/// Figure 1 takeaway: with heavy background load, the test task on
/// the VM sees a typical slowdown within ~10% of the same scenario on
/// the physical machine.
#[test]
fn fig1_vm_slowdown_stays_near_physical() {
    let model = VirtCostModel::default();
    let config = HostConfig::default();
    let work = CpuWork::from_duration(SimDuration::from_secs(3), config.clock_hz);

    let measure = |on_vm: bool, seed: u64| -> f64 {
        let mut stats = OnlineStats::new();
        for i in 0..15 {
            let rng = SimRng::seed_from(seed + i);
            let mut host = HostSim::new(config, SchedulerKind::TimeShare.build(), rng.split("s"));
            let trace = TraceGenerator::preset(LoadLevel::Heavy)
                .with_interval(SimDuration::from_millis(250))
                .generate(600, &mut rng.split("t"));
            host.set_background(
                TracePlayback::new(trace),
                4,
                TaskSpec::compute(CpuWork::ZERO),
            );
            let spec = if on_vm {
                model.guest_task(work, 0.0)
            } else {
                model.native_task(work)
            };
            let id = host.spawn(spec);
            let out = host
                .run_until_complete(id, SimDuration::from_secs(120))
                .expect("finishes");
            stats.record(out.slowdown_vs(host.baseline(&model.native_task(work))));
        }
        stats.mean()
    };

    let physical = measure(false, 100);
    let vm = measure(true, 100);
    assert!(
        vm - physical < 0.10,
        "VM-induced extra slowdown {:.3} vs physical {:.3}",
        vm - physical,
        physical
    );
    assert!(vm >= physical, "virtualization cannot be free");
}

/// Table 1 shape: VM overhead ~1% for SPECseis, ~4% for SPECclimate,
/// and PVFS adds only a little more — with the *ordering* preserved.
#[test]
fn table1_overheads_are_small_and_ordered() {
    let model = VirtCostModel::default();
    // 2% scale keeps the test fast; overheads are ratios.
    let shrink = |app: &gridvm::workloads::AppProfile| {
        gridvm::workloads::AppProfile::new(app.name(), app.user_work().mul_f64(0.02))
            .with_syscalls(app.syscalls() / 50)
            .with_reads(
                ByteSize::from_bytes(app.read_bytes().as_u64() / 50),
                app.io_pattern(),
            )
            .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / 50))
            .with_memory_pressure(app.memory_pressure())
    };
    let run = |app: &gridvm::workloads::AppProfile, mode: ExecMode| {
        let mut disk = DiskModel::new(DiskProfile::ide_2003());
        run_app(
            app,
            mode,
            &model,
            &mut LocalDiskStorage::new(&mut disk),
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(5),
        )
    };

    let seis = shrink(&spec::specseis());
    let climate = shrink(&spec::specclimate());
    let seis_overhead =
        run(&seis, ExecMode::Virtualized).overhead_vs(&run(&seis, ExecMode::Native));
    let climate_overhead =
        run(&climate, ExecMode::Virtualized).overhead_vs(&run(&climate, ExecMode::Native));

    assert!(
        (0.005..0.03).contains(&seis_overhead),
        "seis overhead {seis_overhead} (paper 1.2%)"
    );
    assert!(
        (0.03..0.055).contains(&climate_overhead),
        "climate overhead {climate_overhead} (paper 4.0%)"
    );
    assert!(
        climate_overhead > seis_overhead,
        "climate pays more (memory pressure)"
    );
}

/// Table 2 shape: full ordering of the six scenarios.
#[test]
fn table2_scenario_ordering_holds() {
    let total = |mode, disk, access, seed| {
        let mut server = ComputeServer::paper_node("t2");
        let cfg = StartupConfig::table2(mode, disk, access);
        run_startup(&mut server, &cfg, &mut SimRng::seed_from(seed)).total_secs()
    };
    let reboot_persistent = total(
        StartupMode::Reboot,
        DiskMode::Persistent,
        StateAccess::DiskFs,
        1,
    );
    let reboot_fs = total(
        StartupMode::Reboot,
        DiskMode::NonPersistent,
        StateAccess::DiskFs,
        2,
    );
    let reboot_nfs = total(
        StartupMode::Reboot,
        DiskMode::NonPersistent,
        StateAccess::LoopbackNfs,
        3,
    );
    let restore_persistent = total(
        StartupMode::Restore,
        DiskMode::Persistent,
        StateAccess::DiskFs,
        4,
    );
    let restore_fs = total(
        StartupMode::Restore,
        DiskMode::NonPersistent,
        StateAccess::DiskFs,
        5,
    );
    let restore_nfs = total(
        StartupMode::Restore,
        DiskMode::NonPersistent,
        StateAccess::LoopbackNfs,
        6,
    );

    // The paper's orderings.
    assert!(restore_fs < restore_nfs, "{restore_fs} < {restore_nfs}");
    assert!(restore_nfs < reboot_fs, "{restore_nfs} < {reboot_fs}");
    assert!(reboot_fs < reboot_nfs, "{reboot_fs} < {reboot_nfs}");
    assert!(
        reboot_nfs < restore_persistent,
        "{reboot_nfs} < {restore_persistent}"
    );
    assert!(
        (restore_persistent - reboot_persistent).abs() < 40.0,
        "persistent rows are copy-dominated: {restore_persistent} vs {reboot_persistent}"
    );
    // Magnitudes: smallest observed startup ~12s, persistent > 4 min.
    assert!(restore_fs < 20.0, "fastest row {restore_fs} (paper 12.4)");
    assert!(
        reboot_persistent > 240.0,
        "persistent {reboot_persistent} (paper 273)"
    );
}
