//! Cross-shard transport regressions: the zero-allocation delivery
//! path and the per-(src,dst) window protocol.
//!
//! PR 5 made local dispatch allocation-free and pinned it with
//! `sim.events_boxed == 0`; these tests pin the same property for the
//! cross-shard mailboxes (every VO message rides the inline `Arg2`
//! event words) and pin the per-pair lookahead protocol's contract:
//! identical histories — trace digests, per-site checksums, metrics —
//! to the global-lookahead protocol and across every shard/thread
//! packing, with strictly fewer barrier windows wherever the topology
//! has latency spread.

use gridvm::core::multisite::{build_vo, build_vo_scale, VoConfig, VoScaleConfig};
use gridvm::simcore::metrics::{self, Metrics};
use gridvm_bench::regional::{build_handoff, HandoffConfig};
use proptest::prelude::*;

/// Everything two runs must agree on when they claim "same history",
/// regardless of synchronizer protocol: the sampled trace digest,
/// per-site work checksums, cross-site message count, total executed
/// events, and every metric that is not synchronizer bookkeeping
/// (`shard.*` legitimately differs between protocols — that's the
/// point of the optimization).
#[derive(Debug, PartialEq)]
struct History {
    digest: u64,
    checksums: Vec<u64>,
    messages: u64,
    total_events: u64,
    counters: Vec<(&'static str, u64)>,
    histogram_count: usize,
}

fn history(
    digest: u64,
    checksums: Vec<u64>,
    messages: u64,
    total_events: u64,
    m: &Metrics,
) -> History {
    History {
        digest,
        checksums,
        messages,
        total_events,
        counters: m
            .counters()
            .filter(|(name, _)| !name.starts_with("shard."))
            .collect(),
        histogram_count: m.histograms().count(),
    }
}

fn run_vo(cfg: &VoConfig, shards: usize, threads: usize) -> (History, u64, u64) {
    let mut sim = build_vo(cfg).shards(shards).threads(threads);
    metrics::reset();
    sim.run();
    metrics::reset();
    let checksums = (0..cfg.sites as usize)
        .map(|i| sim.with_site(i, |s, _| s.world.checksum))
        .collect();
    let m = sim.merged_metrics();
    let boxed = m.counter("sim.events_boxed");
    (
        history(
            sim.trace_digest(),
            checksums,
            sim.messages(),
            sim.total_events(),
            &m,
        ),
        sim.windows(),
        boxed,
    )
}

#[test]
fn steady_state_vo_mailbox_traffic_is_allocation_free() {
    // The tentpole regression: every cross-site hop in both VO worlds
    // encodes to the two inline event words, so a steady-state run
    // boxes nothing — and the pre-sized outboxes never regrow.
    let cfg = VoConfig {
        sites: 6,
        hop_per_mille: 200,
        ..VoConfig::paper_vo()
    };
    let mut sim = build_vo(&cfg).shards(4);
    metrics::reset();
    sim.run();
    metrics::reset();
    let m = sim.merged_metrics();
    assert!(sim.messages() > 100, "the run must cross shard boundaries");
    assert_eq!(m.counter("sim.events_boxed"), 0, "boxed cross-shard event");
    assert_eq!(m.counter("shard.outbox_regrown"), 0, "outbox regrew");
}

#[test]
fn steady_state_vo_scale_mailbox_traffic_is_allocation_free() {
    let cfg = VoScaleConfig {
        regions: 2,
        sites_per_region: 3,
        sessions: 600,
        steps_per_session: 8,
        hop_per_mille: 200,
        ..VoScaleConfig::reference()
    };
    let mut sim = build_vo_scale(&cfg).shards(3).threads(2);
    metrics::reset();
    sim.run();
    metrics::reset();
    let m = sim.merged_metrics();
    assert!(sim.messages() > 100, "the run must cross shard boundaries");
    assert_eq!(m.counter("sim.events_boxed"), 0, "boxed cross-shard event");
}

#[test]
fn per_pair_windows_cut_barriers_threefold_on_the_regional_handoff_world() {
    // The bursty handoff workload (one active site per region,
    // everything else idle) is where the per-pair protocol's wider
    // horizons pay: the nearest *activity* is a WAN region away even
    // though the nearest *link* is metro. Same history, >= 3x fewer
    // barrier windows — the bench gate's regional scenario asserts
    // the same bound from the recorded baseline.
    let run = |per_pair: bool| {
        let cfg = HandoffConfig {
            per_pair_lookahead: per_pair,
            ..HandoffConfig::reference()
        };
        let mut sim = build_handoff(&cfg).shards(4).threads(2);
        metrics::reset();
        sim.run();
        metrics::reset();
        let checksums: Vec<u64> = (0..cfg.regions as usize * 2)
            .map(|i| sim.with_site(i, |s, _| s.world.checksum))
            .collect();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("sim.events_boxed"), 0, "boxed handoff message");
        (
            history(
                sim.trace_digest(),
                checksums,
                sim.messages(),
                sim.total_events(),
                &m,
            ),
            sim.windows(),
        )
    };
    let (global_history, global_windows) = run(false);
    let (paired_history, paired_windows) = run(true);
    assert_eq!(
        paired_history, global_history,
        "per-pair lookahead changed the simulated history"
    );
    assert!(
        paired_windows * 3 <= global_windows,
        "expected >= 3x fewer windows, got {paired_windows} vs {global_windows}"
    );
}

#[test]
fn per_pair_windows_match_global_history_on_the_scale_world() {
    // The always-active scale world is the adversarial case for the
    // per-pair protocol: every site has pending work, so horizons
    // collapse toward the metro latency and the window win is small.
    // What must hold unconditionally is the contract — identical
    // history, never *more* barriers than the global protocol.
    let run = |per_pair: bool| {
        let cfg = VoScaleConfig {
            regions: 3,
            sites_per_region: 4,
            sessions: 2_000,
            steps_per_session: 10,
            hop_per_mille: 120,
            per_pair_lookahead: per_pair,
            ..VoScaleConfig::reference()
        };
        let mut sim = build_vo_scale(&cfg).shards(4);
        metrics::reset();
        sim.run();
        metrics::reset();
        let checksums = (0..cfg.sites() as usize)
            .map(|i| sim.with_site(i, |s, _| s.world.checksum))
            .collect();
        let m = sim.merged_metrics();
        (
            history(
                sim.trace_digest(),
                checksums,
                sim.messages(),
                sim.total_events(),
                &m,
            ),
            sim.windows(),
        )
    };
    let (global_history, global_windows) = run(false);
    let (paired_history, paired_windows) = run(true);
    assert_eq!(
        paired_history, global_history,
        "per-pair lookahead changed the simulated history"
    );
    assert!(
        paired_windows <= global_windows,
        "per-pair widened windows: {paired_windows} vs {global_windows}"
    );
}

proptest! {
    /// For any workload shape and seed, the per-pair protocol's
    /// history is bit-identical to the global protocol's, and both
    /// are invariant across the full shard {1,2,4,8} × thread {1,8}
    /// sweep. Windows may only shrink when the matrix is installed.
    #[test]
    fn per_pair_protocol_is_history_identical_for_any_seed(
        seed in 1u64..u64::MAX / 2,
        sites in 2u32..7,
        sessions_per_site in 2u32..7,
        steps_per_session in 10u32..40,
        hop_per_mille in 40u32..400,
    ) {
        let cfg = VoConfig {
            sites,
            sessions_per_site,
            steps_per_session,
            hop_per_mille,
            seed,
            per_pair_lookahead: false,
            ..VoConfig::paper_vo()
        };
        let paired_cfg = VoConfig { per_pair_lookahead: true, ..cfg };
        let (global, global_windows, global_boxed) = run_vo(&cfg, 1, 1);
        let (paired, paired_windows, paired_boxed) = run_vo(&paired_cfg, 1, 1);
        prop_assert_eq!(&paired, &global, "protocols diverged");
        prop_assert!(
            paired_windows <= global_windows,
            "per-pair widened windows: {} vs {}", paired_windows, global_windows
        );
        prop_assert_eq!(global_boxed, 0);
        prop_assert_eq!(paired_boxed, 0);
        for shards in [2usize, 4, 8] {
            for threads in [1usize, 8] {
                let (got, windows, _) = run_vo(&paired_cfg, shards, threads);
                prop_assert_eq!(
                    &got, &paired,
                    "per-pair diverged at shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    windows, paired_windows,
                    "window count must not depend on packing"
                );
                let (got, windows, _) = run_vo(&cfg, shards, threads);
                prop_assert_eq!(
                    &got, &global,
                    "global diverged at shards={} threads={}", shards, threads
                );
                prop_assert_eq!(windows, global_windows);
            }
        }
    }
}
