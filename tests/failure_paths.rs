//! Cross-crate failure injection: the architecture must fail loudly
//! and consistently when authorization, capacity, connectivity or
//! state-machine preconditions are violated.

use gridvm::core::recovery::{run_resilient_session, ChaosError, Cluster, RecoveryConfig};
use gridvm::core::session::SessionRequest;
use gridvm::core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm::gridmw::accounts::{AccountError, AccountPool};
use gridvm::gridmw::gram::{GramError, GramServer, JobRequest};
use gridvm::sched::constraint::{compile, PolicyError};
use gridvm::simcore::fault::{FaultKind, FaultPlan};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::trace::TraceLog;
use gridvm::simcore::units::{Bandwidth, ByteSize, CpuWork};
use gridvm::storage::block::{BlockAddr, BlockStore, StorageError};
use gridvm::storage::disk::{DiskModel, DiskProfile};
use gridvm::vfs::mount::{Mount, Transport};
use gridvm::vfs::protocol::{NfsError, NfsRequest};
use gridvm::vfs::server::NfsServer;
use gridvm::vmm::machine::{DiskMode, Vm, VmConfig};
use gridvm::vnet::addr::{Ipv4Addr, MacAddr, Subnet};
use gridvm::vnet::dhcp::DhcpServer;
use gridvm::vnet::link::NetLink;
use gridvm::vnet::overlay::{Overlay, OverlayError};
use gridvm::vnet::tunnel::{EthernetTunnel, Vpn, VpnError};
use gridvm::workloads::AppProfile;

#[test]
fn unauthorized_user_cannot_start_vms() {
    let mut gram = GramServer::new();
    gram.authorize("/CN=alice");
    let mallory = JobRequest {
        executable: "vmware-start".into(),
        subject: "/CN=mallory".into(),
    };
    match gram.submit(SimTime::ZERO, &mallory) {
        Err(GramError::NotAuthorized(who)) => assert!(who.contains("mallory")),
        other => panic!("expected authorization failure, got {other:?}"),
    }
}

#[test]
fn overcommitted_owner_policy_never_compiles() {
    let err = compile(
        r#"
        host cores 1;
        owner reserve 0.5;
        vm "a" realtime period 100ms slice 80ms;
        "#,
    )
    .unwrap_err();
    assert!(matches!(err, PolicyError::Overcommitted { .. }));
    // The same absolute real-time demand fits a bigger host.
    assert!(compile(
        r#"
        host cores 2;
        owner reserve 0.5;
        vm "a" realtime period 100ms slice 80ms;
        "#
    )
    .is_ok());
}

#[test]
fn address_exhaustion_surfaces_and_recovers() {
    let mut dhcp = DhcpServer::new(
        Subnet::new(Ipv4Addr::from_octets(10, 9, 9, 0), 30),
        SimDuration::from_secs(10),
    );
    dhcp.acquire(SimTime::ZERO, MacAddr::local(1))
        .expect("first");
    dhcp.acquire(SimTime::ZERO, MacAddr::local(2))
        .expect("second");
    assert!(dhcp.acquire(SimTime::ZERO, MacAddr::local(3)).is_err());
    // Leases expire; the pool recovers without intervention.
    assert!(dhcp
        .acquire(SimTime::from_secs(11), MacAddr::local(3))
        .is_ok());
}

#[test]
fn vpn_survives_tunnel_loss_reporting_cleanly() {
    let dhcp = DhcpServer::new(
        Subnet::new(Ipv4Addr::from_octets(192, 168, 0, 0), 24),
        SimDuration::from_secs(600),
    );
    let mut vpn = Vpn::new(
        EthernetTunnel::new(NetLink::new(
            SimDuration::from_millis(20),
            Bandwidth::from_mbit_per_sec(10.0),
        )),
        dhcp,
    );
    let (addr, t) = vpn.join(SimTime::ZERO, MacAddr::local(5)).expect("joins");
    // The underlay dies mid-session.
    vpn.tunnel_mut().underlay_mut().set_down();
    let err = vpn
        .send_home(t, MacAddr::local(5), ByteSize::from_kib(4))
        .unwrap_err();
    assert!(matches!(err, VpnError::Tunnel(_)));
    // Membership (control-plane state) survives the outage, and the
    // data plane recovers when the link comes back.
    assert_eq!(vpn.address_of(MacAddr::local(5)), Some(addr));
    vpn.tunnel_mut().underlay_mut().set_up();
    assert!(vpn
        .send_home(t, MacAddr::local(5), ByteSize::from_kib(4))
        .is_ok());
}

#[test]
fn stale_handles_fail_across_the_full_stack() {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let f = server
        .fs_mut()
        .create(root, "doomed", SimTime::ZERO)
        .expect("fresh");
    server
        .fs_mut()
        .remove(root, "doomed", SimTime::ZERO)
        .expect("removable");
    let mut mount = Mount::new(Transport::lan(), server, None);
    let (_, r) = mount.request(
        SimTime::ZERO,
        NfsRequest::Read {
            fh: f,
            offset: 0,
            len: 10,
        },
    );
    assert!(matches!(r, Err(NfsError::Stale(_))));
}

#[test]
fn stale_slot_derefs_are_typed_and_counted() {
    use gridvm::simcore::metrics;
    use gridvm::simcore::slot::SlotMap;

    metrics::reset();
    let mut arena: SlotMap<(), &'static str> = SlotMap::new();
    let h = arena.insert("ephemeral");
    assert_eq!(arena.remove(h), Ok("ephemeral"));

    // Every dereference flavour fails with the typed error that names
    // the held and current generations — no silent recycled reads.
    let stale = arena.get(h).expect_err("freed handle must not read");
    assert_eq!(stale.held, 0);
    assert_eq!(stale.current, Some(1), "free bumped the generation");
    assert!(arena.get_mut(h).is_err());
    assert!(arena.remove(h).is_err());

    // Slot reuse keeps the old handle stale: the recycled slot's new
    // generation does not resurrect it.
    let h2 = arena.insert("recycled");
    assert_eq!(arena.get(h2), Ok(&"recycled"));
    assert!(arena.get(h).is_err());
    assert!(!arena.contains(h), "contains is the non-counting query");

    // The slot.stale_derefs counter makes stale-pointer loops visible
    // in harvested metrics: one bump per failed deref above.
    assert_eq!(metrics::take().counter("slot.stale_derefs"), 4);
}

#[test]
fn storage_bounds_hold_through_layers() {
    let image = gridvm::storage::image::VmImage::redhat_guest("rh72");
    let mut overlay = gridvm::storage::cow::CowOverlay::new(image.base_store());
    let beyond = BlockAddr(image.disk_blocks());
    assert!(matches!(
        overlay.read(beyond),
        Err(StorageError::OutOfRange { .. })
    ));
    assert!(matches!(
        overlay.write(beyond, bytes::Bytes::from(vec![0u8; 4096])),
        Err(StorageError::OutOfRange { .. })
    ));
}

#[test]
fn vm_state_machine_rejects_skipped_steps() {
    let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
    assert!(
        vm.mark_running(SimTime::ZERO).is_err(),
        "cannot run unbooted"
    );
    assert!(
        vm.begin_suspend(SimTime::ZERO).is_err(),
        "cannot suspend off"
    );
    assert!(
        vm.begin_migration(SimTime::ZERO).is_err(),
        "cannot migrate off"
    );
    vm.terminate(SimTime::ZERO)
        .expect("terminate from any live state");
    assert!(
        vm.begin_staging(SimTime::ZERO).is_err(),
        "terminated is final"
    );
}

#[test]
fn account_pool_exhaustion_reports_and_recovers() {
    let mut pool = AccountPool::new(&["g1"], SimDuration::from_secs(5));
    pool.acquire(SimTime::ZERO, "/CN=a").expect("first");
    assert_eq!(
        pool.acquire(SimTime::ZERO, "/CN=b"),
        Err(AccountError::PoolExhausted)
    );
    assert!(pool.acquire(SimTime::from_secs(6), "/CN=b").is_ok());
}

#[test]
fn partitioned_overlay_reports_unreachable() {
    let mut ov = Overlay::new();
    let a = ov.add_node();
    let b = ov.add_node();
    // No measurements at all: partition.
    assert_eq!(
        ov.route(a, b),
        Err(OverlayError::Unreachable { from: a, to: b })
    );
}

// ---- resilient-session failure paths -------------------------------
//
// The recovery layer must convert injected infrastructure faults into
// typed, displayable session errors — never a panic, never a hang.

fn chaos_request() -> SessionRequest {
    SessionRequest {
        user: "userX".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        app: AppProfile::new("chaos-app", CpuWork::from_cycles(96_000_000_000)),
    }
}

fn run_chaos(plan: &FaultPlan) -> Result<gridvm::core::recovery::ChaosReport, ChaosError> {
    let mut cluster = Cluster::paper_lan(3, "rh72", "userX");
    let mut rng = SimRng::seed_from(20030517);
    let mut trace = TraceLog::default();
    run_resilient_session(
        &mut cluster,
        &chaos_request(),
        &RecoveryConfig::default(),
        plan,
        &mut rng,
        &mut trace,
    )
}

#[test]
fn partition_during_image_transfer_times_out_loudly() {
    // The crash forces a migration; the recovery target's link then
    // partitions for far longer than the session is willing to wait
    // for the suspend-image transfer.
    let patience = RecoveryConfig::default().partition_patience;
    let plan = FaultPlan::new()
        .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
        .with(
            "node1",
            SimTime::from_secs(80),
            FaultKind::LinkPartition {
                heal_after: patience * 4,
            },
        );
    let err = run_chaos(&plan).unwrap_err();
    match err {
        ChaosError::PartitionTimeout { waited, at } => {
            assert!(waited >= patience, "gave up before the patience budget");
            assert!(at >= SimTime::from_secs(80), "timeout predates the crash");
        }
        other => panic!("expected partition timeout, got {other}"),
    }
    assert!(err.to_string().contains("partition"), "{err}");
}

#[test]
fn storage_fault_during_checkpoint_commit_is_fatal_and_named() {
    // The destination host's disk throws an I/O error while the
    // suspended image (the COW checkpoint state) is being committed.
    let plan = FaultPlan::new()
        .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
        .with("node1", SimTime::from_secs(80), FaultKind::StorageIoError);
    let err = run_chaos(&plan).unwrap_err();
    match err {
        ChaosError::StorageFault { op, at } => {
            assert_eq!(op, "checkpoint-commit");
            assert!(at >= SimTime::from_secs(80));
        }
        other => panic!("expected storage fault, got {other}"),
    }
    assert!(err.to_string().contains("checkpoint-commit"), "{err}");
}

#[test]
fn retry_budget_exhaustion_fails_the_session_loudly() {
    // More NFS/MDS timeouts than the default six-attempt budget,
    // queued from the first instant: resource discovery can never get
    // an answer and must give up with a typed error naming the
    // operation, not spin forever.
    let budget = gridvm::gridmw::retry::RetryPolicy::default().max_attempts;
    let mut plan = FaultPlan::new();
    for i in 0..u64::from(budget) + 2 {
        plan = plan.with(
            "nfs",
            SimTime::from_nanos((i + 1) * 1_000_000),
            FaultKind::NfsTimeout,
        );
    }
    let err = run_chaos(&plan).unwrap_err();
    match err {
        ChaosError::RetryBudgetExhausted { op, at } => {
            assert!(!op.is_empty(), "exhaustion must name the operation");
            assert!(at > SimTime::ZERO, "six backed-off attempts take time");
        }
        other => panic!("expected retry exhaustion, got {other}"),
    }
    assert!(err.to_string().contains("retry budget"), "{err}");
}

#[test]
#[should_panic(expected = "Reservoir capacity must be positive")]
fn zero_capacity_reservoir_is_rejected_loudly() {
    // A zero-slot reservoir would silently drop every trace sample
    // while reporting a healthy `seen` count — construction must
    // refuse instead.
    let _ = gridvm::simcore::sample::Reservoir::<u64>::new(0, 42);
}

#[test]
#[should_panic(expected = "histogram value")]
fn histogram_value_above_top_bucket_is_rejected_loudly() {
    // Values past the layout's top bucket would alias into the
    // clamped last bucket and quietly corrupt the tail quantiles;
    // recording one is a caller bug and must panic with the layout.
    let mut h = gridvm::simcore::hist::Histogram::new(5, 16);
    h.record(1 << 16);
}

#[test]
#[should_panic(expected = "merge of mismatched Histogram bucket layouts")]
fn mismatched_histogram_layouts_refuse_to_merge() {
    // Bucket indices only line up between identical layouts; merging
    // across layouts would scramble counts into the wrong value
    // ranges without any arithmetic error to catch it later.
    let mut a = gridvm::simcore::hist::Histogram::new(5, 48);
    let b = gridvm::simcore::hist::Histogram::new(6, 48);
    a.merge(&b);
}
