//! Chaos soak: many sessions under seeded fault plans must each
//! reach a verdict — completion or a typed terminal error — with the
//! whole run bit-identical across thread counts (the PR's acceptance
//! criterion for deterministic fault injection).

use gridvm::core::recovery::{run_resilient_session, ChaosError, Cluster, RecoveryConfig};
use gridvm::core::session::SessionRequest;
use gridvm::core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm::simcore::fault::{FaultKind, FaultPlan, FaultProcess};
use gridvm::simcore::metrics;
use gridvm::simcore::replication::{ReplicationCtx, ReplicationRunner};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::trace::TraceLog;
use gridvm::simcore::units::CpuWork;
use gridvm::vmm::machine::DiskMode;
use gridvm::workloads::AppProfile;

fn request() -> SessionRequest {
    SessionRequest {
        user: "userX".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        // ~2 minutes of guest work: several checkpoint intervals.
        app: AppProfile::new("chaos-app", CpuWork::from_cycles(96_000_000_000)),
    }
}

/// A hostile seeded plan: frequent crashes plus background link and
/// NFS trouble across a three-node cluster.
fn chaos_plan(seed: u64) -> FaultPlan {
    let nodes: Vec<String> = (0..3).map(|i| format!("node{i}")).collect();
    FaultPlan::seeded(
        seed,
        SimDuration::from_secs(1800),
        &[
            FaultProcess {
                kind: FaultKind::HostCrash,
                mean_interval: SimDuration::from_secs(60),
                targets: nodes.clone(),
            },
            FaultProcess {
                kind: FaultKind::LinkPartition {
                    heal_after: SimDuration::from_secs(15),
                },
                mean_interval: SimDuration::from_secs(120),
                targets: nodes.clone(),
            },
            FaultProcess {
                kind: FaultKind::LinkLoss,
                mean_interval: SimDuration::from_secs(90),
                targets: nodes,
            },
            FaultProcess {
                kind: FaultKind::NfsTimeout,
                mean_interval: SimDuration::from_secs(150),
                targets: vec!["nfs".to_owned()],
            },
        ],
    )
}

#[test]
fn chaos_soak_every_session_reaches_a_verdict() {
    metrics::reset();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut migrations = 0usize;
    for s in 0..24u64 {
        let seed = 0xC0FF_EE00 ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = chaos_plan(seed);
        let mut cluster = Cluster::paper_lan(3, "rh72", "userX");
        let mut rng = SimRng::seed_from(seed);
        let mut trace = TraceLog::default();
        match run_resilient_session(
            &mut cluster,
            &request(),
            &RecoveryConfig::default(),
            &plan,
            &mut rng,
            &mut trace,
        ) {
            Ok(report) => {
                completed += 1;
                migrations += report.migrations();
                for r in &report.recoveries {
                    assert!(r.resumed_at > r.crash_at, "recovery takes time");
                    assert_ne!(r.from_host, r.to_host, "resume on a different host");
                    assert!(
                        r.lost_work <= RecoveryConfig::default().checkpoint_interval,
                        "lost work bounded by one checkpoint interval: {}",
                        r.lost_work
                    );
                }
                assert!(report.total >= report.app_nominal, "work cannot compress");
            }
            Err(e) => {
                failed += 1;
                // Typed, displayable terminal errors only — a panic or
                // an opaque error would fail this match.
                assert!(
                    matches!(
                        e,
                        ChaosError::Establish(_)
                            | ChaosError::NoSurvivingHost { .. }
                            | ChaosError::RetryBudgetExhausted { .. }
                            | ChaosError::StorageFault { .. }
                            | ChaosError::PartitionTimeout { .. }
                    ),
                    "unexpected error shape"
                );
                assert!(!e.to_string().is_empty());
            }
        }
        // No event escaped a bounded horizon: the session cannot hang.
        assert!(
            trace
                .entries()
                .all(|e| e.time < SimTime::ZERO + SimDuration::from_secs(7200)),
            "runaway event time in session {s}"
        );
    }
    assert_eq!(completed + failed, 24);
    assert!(completed > 0, "some sessions must survive the chaos");
    assert!(migrations > 0, "the soak must exercise crash recovery");
    let m = metrics::take();
    assert!(
        m.counter("fault.host_crash") >= m.counter("recovery.migrations"),
        "every migration traces back to a crash"
    );
    assert_eq!(m.counter("chaos.sessions_completed"), completed as u64);
    assert_eq!(m.counter("chaos.sessions_failed"), failed as u64);
}

/// One replication: a session with a guaranteed mid-run crash plus
/// seeded background noise. Returns everything the thread-invariance
/// assertion compares bit-for-bit.
fn chaos_sample(ctx: &ReplicationCtx) -> (u64, u64, u64) {
    let mut rng = ctx.rng().split("chaos");
    let noise_seed = ctx.rng().split("plan").next_u64();
    let plan = FaultPlan::new()
        .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
        .merged(&FaultPlan::seeded(
            noise_seed,
            SimDuration::from_secs(900),
            &[FaultProcess {
                kind: FaultKind::LinkLoss,
                mean_interval: SimDuration::from_secs(120),
                targets: vec!["node1".to_owned(), "node2".to_owned()],
            }],
        ));
    let mut cluster = Cluster::paper_lan(3, "rh72", "userX");
    let mut trace = TraceLog::default();
    let verdict = run_resilient_session(
        &mut cluster,
        &request(),
        &RecoveryConfig::default(),
        &plan,
        &mut rng,
        &mut trace,
    );
    let (code, total_ns) = match &verdict {
        Ok(r) => (0u64, r.total.as_nanos()),
        Err(_) => (1u64, 0),
    };
    (code, total_ns, trace.digest())
}

/// The acceptance criterion: a session interrupted by an injected
/// host crash completes via suspend → transfer → resume on another
/// host, with identical metrics and trace digests for 1 and 8
/// worker threads.
#[test]
fn recovery_is_thread_count_invariant() {
    let serial = ReplicationRunner::new(1).run(20030517, 8, chaos_sample);
    let parallel = ReplicationRunner::new(8).run(20030517, 8, chaos_sample);
    assert_eq!(serial.results, parallel.results, "per-replication results");
    assert_eq!(
        serial.replication_metrics, parallel.replication_metrics,
        "per-replication metrics"
    );
    assert_eq!(
        serial.merged_metrics, parallel.merged_metrics,
        "merged metrics"
    );
    // The scheduled crash actually fired and was recovered from, and
    // the recovery is visible in the merged metrics.
    assert!(serial.merged_metrics.counter("recovery.migrations") >= 8);
    assert!(serial.merged_metrics.counter("fault.host_crash") >= 8);
    assert!(serial.merged_metrics.counter("chaos.sessions_completed") >= 1);
    // Replications see different noise seeds: digests must vary.
    let digests: std::collections::BTreeSet<u64> =
        serial.results.iter().map(|(_, _, d)| *d).collect();
    assert!(digests.len() > 1, "trace digests trivially constant");
}
