//! Figure 2's data-management topology, end to end: a virtualized
//! compute server `V` hosting two Red Hat instances for users A and
//! B, a WAN image server `I` whose master state is cached by a
//! host-side proxy, and a data server `D` whose user blocks are
//! cached by per-VM proxies. Asserts the sharing and isolation
//! properties the figure illustrates.

use gridvm::simcore::time::SimTime;
use gridvm::simcore::units::ByteSize;
use gridvm::storage::disk::{DiskModel, DiskProfile};
use gridvm::storage::image::VmImage;
use gridvm::vfs::mount::{Mount, Transport};
use gridvm::vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm::vfs::server::NfsServer;
use gridvm::vmm::boot::{boot_read_runs, BootProfile};

/// Host-side image proxy tuned like the A1 ablation (big cache,
/// shallow prefetch — boot runs are short and scattered).
fn image_proxy() -> VfsProxy {
    VfsProxy::new(ProxyConfig {
        cache_blocks: (ByteSize::from_mib(512).as_u64() / 8192) as usize,
        prefetch_depth: 2,
        ..ProxyConfig::default()
    })
}

#[test]
fn master_image_is_fetched_once_for_two_instances() {
    // Image server I across the WAN, exporting the master image.
    let image = VmImage::redhat_guest("rh72");
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let master = server
        .fs_mut()
        .create_synthetic(
            root,
            "rh72-master",
            image.disk_size.into(),
            image.content_seed,
            SimTime::ZERO,
        )
        .expect("fresh export");
    // One mount at host V, shared by both instances (the host-side
    // proxy of Figure 2).
    let mut mount = Mount::new(Transport::wan(), server, Some(image_proxy()));

    let runs = boot_read_runs(&image, &BootProfile::default());
    let bs = ByteSize::from(image.block_size).as_u64();
    let boot = |mount: &mut Mount, start_at: SimTime| {
        let mut t = start_at;
        for (start, len) in &runs {
            let (done, r) = mount.read_range(t, master, start.0 * bs, len * bs);
            r.expect("image readable");
            t = done;
        }
        t.duration_since(start_at)
    };

    let instance_a = boot(&mut mount, SimTime::ZERO);
    let rpcs_after_a = mount.rpcs_sent();
    let instance_b = boot(&mut mount, SimTime::from_secs(600));
    let rpcs_after_b = mount.rpcs_sent();

    // Instance B boots from the proxy cache: orders of magnitude
    // faster, near-zero new server traffic.
    assert!(
        instance_b.as_secs_f64() < instance_a.as_secs_f64() / 50.0,
        "A {instance_a} vs B {instance_b}"
    );
    assert!(
        rpcs_after_b - rpcs_after_a < rpcs_after_a / 20,
        "B added {} RPCs vs A's {}",
        rpcs_after_b - rpcs_after_a,
        rpcs_after_a
    );
}

#[test]
fn user_data_sessions_are_isolated_per_user() {
    // Data server D with homes for users A and B; each VM mounts it
    // through its own proxy (the in-guest proxies of Figure 2).
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let t0 = SimTime::ZERO;
    let home = server.fs_mut().mkdir(root, "home", t0).expect("fresh");
    let a_dir = server.fs_mut().mkdir(home, "userA", t0).expect("fresh");
    let b_dir = server.fs_mut().mkdir(home, "userB", t0).expect("fresh");
    let a_file = server.fs_mut().create(a_dir, "data", t0).expect("fresh");
    let b_file = server.fs_mut().create(b_dir, "data", t0).expect("fresh");
    server
        .fs_mut()
        .write(a_file, 0, b"belongs to A", t0)
        .expect("writable");
    server
        .fs_mut()
        .write(b_file, 0, b"belongs to B", t0)
        .expect("writable");

    // One mount (VM A's session) writes through its proxy; the
    // canonical server state changes; a second session sees it.
    let mut session_a = Mount::new(
        Transport::lan(),
        server,
        Some(VfsProxy::new(ProxyConfig::default())),
    );
    let (t, r) = session_a.write_range(t0, a_file, 0, b"belongs 2 A!");
    r.expect("A can write A's file");
    // A's view of its own write is immediate (write-back cache).
    let (_, n) = session_a.read_range(t, a_file, 0, 64);
    assert_eq!(n.unwrap(), 12);
    // B's file is untouched by A's session.
    assert_eq!(
        &session_a.server().fs().read(b_file, 0, 64).unwrap()[..],
        b"belongs to B"
    );
    // And the server's canonical state carries A's update.
    assert_eq!(
        &session_a.server().fs().read(a_file, 0, 64).unwrap()[..],
        b"belongs 2 A!"
    );
}

#[test]
fn image_and_data_planes_do_not_interfere() {
    // The host's image proxy and a guest's data proxy cache the same
    // block numbers of *different files* — file-scoped keys must keep
    // them apart even within one shared mount.
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let t0 = SimTime::ZERO;
    let img = server
        .fs_mut()
        .create_synthetic(root, "img", ByteSize::from_mib(4), 1, t0)
        .expect("fresh");
    let data = server
        .fs_mut()
        .create_synthetic(root, "data", ByteSize::from_mib(4), 2, t0)
        .expect("fresh");
    let mut mount = Mount::new(
        Transport::lan(),
        server,
        Some(VfsProxy::new(ProxyConfig::default())),
    );
    // Warm block 0 of the image file only.
    let (t, r) = mount.read_range(t0, img, 0, 8192);
    r.expect("image readable");
    let rpcs = mount.rpcs_sent();
    // Reading block 0 of the data file must be a *miss* (no aliasing).
    let (t2, r) = mount.read_range(t, data, 0, 8192);
    r.expect("data readable");
    assert!(mount.rpcs_sent() > rpcs, "different file, real fetch");
    // Re-reading the image block stays a hit.
    let before = mount.rpcs_sent();
    let (_, r) = mount.read_range(t2, img, 0, 8192);
    r.expect("image still readable");
    assert_eq!(mount.rpcs_sent(), before, "image block still cached");
}
