//! Golden-trace regression anchor: one fixed seed and fault plan
//! must keep producing exactly this causal history. Any change to the
//! fault model, retry schedule, recovery timeline or trace wording
//! shows up here first — if a change is intentional, re-pin the
//! constants from the test's failure output.

use gridvm::core::recovery::{run_resilient_session, ChaosReport, Cluster, RecoveryConfig};
use gridvm::core::session::SessionRequest;
use gridvm::core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm::simcore::fault::{FaultKind, FaultPlan};
use gridvm::simcore::metrics;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::trace::TraceLog;
use gridvm::simcore::units::CpuWork;
use gridvm::vmm::machine::DiskMode;
use gridvm::workloads::AppProfile;

/// The paper's submission date, the workspace's canonical seed.
const SEED: u64 = 20030517;

fn scenario() -> (SessionRequest, FaultPlan) {
    let req = SessionRequest {
        user: "userX".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        app: AppProfile::new("golden-app", CpuWork::from_cycles(96_000_000_000)),
    };
    // A deterministic script: an early NFS timeout (one retry), a
    // mid-run crash of the first host, packet loss on the recovery
    // path, and a latency spike on the reconnect.
    let plan = FaultPlan::new()
        .with(
            "nfs",
            SimTime::from_nanos(50_000_000),
            FaultKind::NfsTimeout,
        )
        .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
        .with("node1", SimTime::from_secs(81), FaultKind::LinkLoss)
        .with(
            "node1",
            SimTime::from_secs(82),
            FaultKind::LatencySpike {
                extra: SimDuration::from_millis(25),
            },
        );
    (req, plan)
}

fn run_golden() -> (ChaosReport, TraceLog) {
    let (req, plan) = scenario();
    let mut cluster = Cluster::paper_lan(3, "rh72", "userX");
    let mut rng = SimRng::seed_from(SEED);
    let mut trace = TraceLog::default();
    let report = run_resilient_session(
        &mut cluster,
        &req,
        &RecoveryConfig::default(),
        &plan,
        &mut rng,
        &mut trace,
    )
    .expect("the golden scenario completes");
    (report, trace)
}

#[test]
fn golden_scenario_digest_and_counters_are_pinned() {
    metrics::reset();
    let (report, trace) = run_golden();

    // The recovery actually happened as scripted.
    assert_eq!(report.migrations(), 1);
    assert_eq!(report.recoveries[0].from_host, 0);
    assert_eq!(report.recoveries[0].to_host, 1);
    assert_eq!(report.finished_on, 1);

    // Pinned values — re-derive from this output when a change to
    // the fault/recovery model is intentional.
    let m = metrics::take();
    let pinned_counters: &[(&str, u64)] = &[
        ("fault.nfs_timeout", 1),
        ("fault.host_crash", 1),
        ("fault.link_loss", 1),
        ("fault.latency_spike", 1),
        ("recovery.migrations", 1),
        ("recovery.checkpoints", 2),
        ("gridmw.rpc_retries", 2),
        ("chaos.sessions_completed", 1),
    ];
    for (name, want) in pinned_counters {
        assert_eq!(m.counter(name), *want, "counter {name}");
    }
    assert_eq!(
        report.total.as_nanos(),
        161_795_080_913,
        "end-to-end makespan drifted (trace digest {:#018x}, {} entries)",
        trace.digest(),
        trace.len()
    );
    assert_eq!(trace.len(), 9, "trace entry count");
    assert_eq!(trace.digest(), 0x8f42_c11e_d141_7e43, "trace digest");
}

#[test]
fn sharded_golden_vo_digest_is_pinned() {
    // The sharded counterpart of the golden anchor: the reference VO
    // world (4 sites, 8 sessions each, canonical seed) must keep
    // producing exactly this cross-site history at *every* shard
    // packing. Re-pin from the failure output only when a change to
    // the VO world or the synchronizer protocol is intentional.
    use gridvm::core::multisite::{build_vo, VoConfig};

    let run = |shards: usize| {
        let mut sim = build_vo(&VoConfig::paper_vo()).shards(shards);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        (
            sim.trace_digest(),
            sim.windows(),
            sim.messages(),
            sim.total_events(),
            m.counter("vo.sessions_completed"),
            m.counter("vo.hops"),
            m.counter("vo.recoveries"),
        )
    };
    let got = run(1);
    assert_eq!(got, run(4), "shard packing changed the golden history");
    let (digest, windows, messages, events, completed, hops, recoveries) = got;
    assert_eq!(completed, 32, "every session completes exactly once");
    assert_eq!(
        (digest, windows, messages, events, hops, recoveries),
        (0xf992_a241_1620_cf73, 10, 85, 1654, 85, 22),
        "sharded golden drifted"
    );
}

#[test]
fn sampled_golden_vo_scale_digest_is_pinned() {
    // The sampled-trace anchor: a small macro-scale VO (2 regions ×
    // 3 sites, 600 sessions, canonical seed) with per-site reservoir
    // rings and stratified sampling must keep producing exactly this
    // digest and this sampled/dropped split. Any change to the
    // sampling hash, seed-stream derivation, or the scale world's
    // event order shows up here first; re-pin from the failure output
    // only when that change is intentional.
    use gridvm::core::multisite::{build_vo_scale, VoScaleConfig};

    let cfg = VoScaleConfig {
        regions: 2,
        sites_per_region: 3,
        sessions: 600,
        steps_per_session: 8,
        trace_capacity: 64,
        trace_rate_per_mille: 100,
        ..VoScaleConfig::reference()
    };
    let run = |shards: usize| {
        let mut sim = build_vo_scale(&cfg).shards(shards);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        (
            sim.trace_digest(),
            sim.retained_trace_entries(),
            m.counter("trace.sampled"),
            m.counter("trace.dropped"),
            m.counter("vo.sessions_completed"),
            m.histogram("vo.slowdown_x1000").expect("histogram").p99(),
        )
    };
    let got = run(1);
    assert_eq!(got, run(4), "shard packing changed the sampled history");
    let (digest, retained, sampled, dropped, completed, p99) = got;
    assert_eq!(completed, 600, "every session completes exactly once");
    assert_eq!(
        sampled + dropped,
        600,
        "one sampling decision per completion"
    );
    assert_eq!(
        (digest, retained, sampled, dropped, p99),
        (0xd9be_3b1f_884d_fd45, 53, 53, 547, 43_007),
        "sampled golden drifted"
    );
}

#[test]
fn golden_scenario_reproduces_itself() {
    let (a, ta) = run_golden();
    let (b, tb) = run_golden();
    assert_eq!(a.total, b.total);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(ta.digest(), tb.digest());
}
