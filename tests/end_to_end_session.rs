//! End-to-end integration: a grid session established across every
//! subsystem, followed by a migration, with the information service,
//! DHCP, VPN and overlay all kept consistent.

use gridvm::core::migration::migrate;
use gridvm::core::server::{paper_data_server, paper_image_server, ComputeServer};
use gridvm::core::session::{GridSession, GridWorld, SessionRequest};
use gridvm::core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm::gridmw::info::{InfoService, Query, ResourceKind};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::server::Pipe;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::units::{Bandwidth, ByteSize, CpuWork};
use gridvm::storage::cow::CowOverlay;
use gridvm::storage::image::VmImage;
use gridvm::vmm::machine::{DiskMode, Vm, VmConfig, VmState};
use gridvm::vnet::addr::{Ipv4Addr, Subnet};
use gridvm::vnet::dhcp::DhcpServer;
use gridvm::vnet::overlay::Overlay;
use gridvm::workloads::{AppProfile, IoPattern};

fn demo_world() -> GridWorld {
    let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
    let host = info.register(
        SimTime::ZERO,
        "uf",
        ResourceKind::PhysicalHost {
            cores: 2,
            clock_hz: 800e6,
            memory_mib: 1024,
        },
    );
    info.register(
        SimTime::ZERO,
        "uf",
        ResourceKind::VmFuture {
            host,
            images: vec!["rh72".into()],
            available_slots: 2,
        },
    );
    info.register(
        SimTime::ZERO,
        "nw",
        ResourceKind::ImageServer {
            images: vec!["rh72".into()],
        },
    );
    GridWorld {
        info,
        compute: ComputeServer::paper_node("uf-host"),
        image_server: paper_image_server("rh72"),
        data_server: Some(paper_data_server("alice", ByteSize::from_mib(16))),
        dhcp: DhcpServer::new(
            Subnet::new(Ipv4Addr::from_octets(10, 1, 2, 0), 24),
            SimDuration::from_secs(3600),
        ),
    }
}

fn request(mode: StartupMode) -> SessionRequest {
    SessionRequest {
        user: "alice".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(mode, DiskMode::NonPersistent, StateAccess::DiskFs),
        app: AppProfile::new("e2e-app", CpuWork::from_cycles(6_400_000_000))
            .with_syscalls(8_000)
            .with_reads(ByteSize::from_mib(8), IoPattern::Sequential)
            .with_writes(ByteSize::from_mib(2)),
    }
}

#[test]
fn session_then_query_then_teardown() {
    let mut world = demo_world();
    let mut rng = SimRng::seed_from(77);
    let report =
        GridSession::establish(&mut world, &request(StartupMode::Restore), &mut rng).expect("ok");

    // The VM is queryable as a running instance.
    let vms = world.info.query(&Query::Kind("vm"), 10, &mut rng);
    assert_eq!(vms.len(), 1);
    assert_eq!(vms[0].id, report.vm_record);

    // Its address is on the compute site's subnet and leased.
    assert!(Subnet::new(Ipv4Addr::from_octets(10, 1, 2, 0), 24).contains(report.address));
    assert_eq!(world.dhcp.active_leases(SimTime::ZERO + report.total), 1);

    // Teardown: deregister; the directory forgets it.
    world.info.deregister(report.vm_record);
    assert!(world
        .info
        .query(&Query::Kind("vm"), 10, &mut rng)
        .is_empty());
}

#[test]
fn restore_session_beats_reboot_session() {
    let run = |mode| {
        let mut world = demo_world();
        let mut rng = SimRng::seed_from(78);
        GridSession::establish(&mut world, &request(mode), &mut rng)
            .expect("ok")
            .startup
            .total
    };
    let restore = run(StartupMode::Restore);
    let reboot = run(StartupMode::Reboot);
    assert!(
        restore.as_secs_f64() * 2.0 < reboot.as_secs_f64(),
        "restore {restore} vs reboot {reboot}"
    );
}

#[test]
fn session_app_io_crosses_the_wan_with_proxy_wins() {
    let mut world = demo_world();
    let mut rng = SimRng::seed_from(79);
    let report =
        GridSession::establish(&mut world, &request(StartupMode::Restore), &mut rng).expect("ok");
    // The app is compute-dominated: I/O is overlapped, so wall ≈
    // user + sys even though the data lives across a WAN.
    assert_eq!(report.app.wall, report.app.user + report.app.sys);
}

#[test]
fn migration_after_session_keeps_environment() {
    // Boot a VM the long way, then migrate it and verify state.
    let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
    vm.attach_disk(CowOverlay::new(VmImage::redhat_guest("rh72").base_store()));
    vm.begin_staging(SimTime::ZERO).expect("fresh");
    vm.begin_boot(SimTime::from_secs(1)).expect("staged");
    vm.mark_running(SimTime::from_secs(60)).expect("booted");

    let mut src = ComputeServer::paper_node("src");
    let mut dst = ComputeServer::paper_node("dst");
    let mut wire = Pipe::new(
        SimDuration::from_millis(5),
        Bandwidth::from_mbit_per_sec(100.0),
    );
    let mut overlay = Overlay::new();
    let user = overlay.add_node();
    let a = overlay.add_node();
    let b = overlay.add_node();
    overlay.update_measurement(user, a, SimDuration::from_millis(40));
    overlay.update_measurement(user, b, SimDuration::from_millis(10));
    overlay.update_measurement(a, b, SimDuration::from_millis(35));

    let report = migrate(
        &mut vm,
        &mut src,
        &mut dst,
        &mut wire,
        SimTime::from_secs(120),
        &mut SimRng::seed_from(80),
    )
    .expect("migrates");
    assert_eq!(vm.state(), VmState::Running);
    assert!(report.downtime() > SimDuration::from_secs(1));

    // After migration the overlay route to the VM's new site is the
    // cheaper one.
    let route = overlay.route(user, b).expect("connected");
    assert_eq!(route.latency, SimDuration::from_millis(10));

    // History records the full life cycle order.
    let states: Vec<VmState> = vm.history().iter().map(|(_, s)| *s).collect();
    assert_eq!(
        states,
        vec![
            VmState::Staging,
            VmState::Booting,
            VmState::Running,
            VmState::Migrating,
            VmState::Running
        ]
    );
}
