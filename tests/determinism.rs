//! Whole-suite determinism: the same seed must reproduce identical
//! results across every experiment surface, and different seeds must
//! actually vary. This is what makes the reproduction binaries'
//! numbers citable.

use gridvm::core::server::ComputeServer;
use gridvm::core::session::{GridSession, GridWorld, SessionRequest};
use gridvm::core::startup::{run_startup, StartupConfig, StartupMode, StateAccess};
use gridvm::gridmw::info::{InfoService, ResourceKind};
use gridvm::host::{HostConfig, HostSim, TaskSpec};
use gridvm::hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm::sched::SchedulerKind;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::units::{ByteSize, CpuWork};
use gridvm::vmm::machine::DiskMode;
use gridvm::workloads::AppProfile;

#[test]
fn startup_samples_reproduce_per_seed() {
    let run = |seed| {
        let mut server = ComputeServer::paper_node("d");
        let cfg = StartupConfig::table2(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
        );
        run_startup(&mut server, &cfg, &mut SimRng::seed_from(seed))
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1).total, run(2).total);
}

#[test]
fn host_simulation_reproduces_per_seed() {
    let run = |seed| {
        let rng = SimRng::seed_from(seed);
        let mut host = HostSim::new(
            HostConfig::default(),
            SchedulerKind::Lottery.build(),
            rng.split("sched"),
        );
        let trace = TraceGenerator::preset(LoadLevel::Heavy).generate(300, &mut rng.split("t"));
        host.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let id = host.spawn(TaskSpec::compute(CpuWork::from_cycles(2_400_000_000)));
        host.run_until_complete(id, SimDuration::from_secs(120))
            .expect("finishes")
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).completed_at, run(10).completed_at);
}

#[test]
fn full_sessions_reproduce_per_seed() {
    let build_world = || {
        let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
        let host = info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::PhysicalHost {
                cores: 2,
                clock_hz: 800e6,
                memory_mib: 1024,
            },
        );
        info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::VmFuture {
                host,
                images: vec!["rh72".into()],
                available_slots: 1,
            },
        );
        info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::ImageServer {
                images: vec!["rh72".into()],
            },
        );
        GridWorld {
            info,
            compute: ComputeServer::paper_node("c"),
            image_server: gridvm::core::server::paper_image_server("rh72"),
            data_server: Some(gridvm::core::server::paper_data_server(
                "u",
                ByteSize::from_mib(4),
            )),
            dhcp: gridvm::vnet::dhcp::DhcpServer::new(
                gridvm::vnet::addr::Subnet::new(
                    gridvm::vnet::addr::Ipv4Addr::from_octets(10, 0, 0, 0),
                    24,
                ),
                SimDuration::from_secs(600),
            ),
        }
    };
    let req = SessionRequest {
        user: "u".into(),
        image: "rh72".into(),
        min_cores: 1,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        app: AppProfile::new("a", CpuWork::from_cycles(400_000_000)).with_syscalls(100),
    };
    let run = |seed| {
        let mut world = build_world();
        let report = GridSession::establish(&mut world, &req, &mut SimRng::seed_from(seed))
            .expect("session establishes");
        (report.total, report.address, report.app)
    };
    assert_eq!(run(4), run(4));
    assert_ne!(run(4).0, run(5).0);
}

#[test]
fn replication_runner_is_thread_count_invariant_for_fig1_work() {
    // Figure-1-shaped replication: a compute-bound test task on a
    // loaded host, measured against its dedicated-machine baseline.
    // Whatever --threads value fans these out, every per-replication
    // result and the merged metrics must be bit-identical.
    use gridvm::simcore::metrics;
    use gridvm::simcore::replication::{ReplicationCtx, ReplicationRunner};

    let sample = |ctx: &ReplicationCtx| {
        let rng = ctx.rng();
        let config = HostConfig::default();
        let mut host = HostSim::new(config, SchedulerKind::TimeShare.build(), rng.split("sched"));
        let trace = TraceGenerator::preset(LoadLevel::Heavy).generate(120, &mut rng.split("trace"));
        host.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let work = CpuWork::from_duration(SimDuration::from_secs(1), config.clock_hz);
        let id = host.spawn(TaskSpec::compute(work));
        let outcome = host
            .run_until_complete(id, SimDuration::from_secs(600))
            .expect("finishes");
        metrics::counter_add("fig1.samples", 1);
        outcome.completed_at
    };

    let serial = ReplicationRunner::new(1).run(20030517, 24, sample);
    let parallel = ReplicationRunner::new(8).run(20030517, 24, sample);
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.replication_metrics, parallel.replication_metrics);
    assert_eq!(serial.merged_metrics, parallel.merged_metrics);
    assert_eq!(serial.merged_metrics.counter("fig1.samples"), 24);
    // The host layer's own hooks must be identical too, not just the
    // test's counter.
    assert!(serial.merged_metrics.counter("host.world_switches") > 0);
}

#[test]
fn experiment_reports_are_thread_count_invariant() {
    use gridvm_bench::harness::{
        m, run_experiment, Experiment, Measurement, Options, SampleCtx, Scenario,
    };

    struct MiniFig1;

    impl Experiment for MiniFig1 {
        fn title(&self) -> &str {
            "mini fig1"
        }

        fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
            [LoadLevel::None, LoadLevel::Heavy]
                .iter()
                .enumerate()
                .map(|(i, level)| Scenario::new(i, format!("{level} load"), 6))
                .collect()
        }

        fn run_sample(
            &self,
            scenario: &Scenario,
            ctx: &SampleCtx,
            _opts: &Options,
        ) -> Vec<Measurement> {
            let rng = ctx.rng();
            let config = HostConfig::default();
            let mut host =
                HostSim::new(config, SchedulerKind::TimeShare.build(), rng.split("sched"));
            if scenario.index == 1 {
                let trace =
                    TraceGenerator::preset(LoadLevel::Heavy).generate(120, &mut rng.split("trace"));
                host.set_background(
                    TracePlayback::new(trace),
                    4,
                    TaskSpec::compute(CpuWork::ZERO),
                );
            }
            let work = CpuWork::from_duration(SimDuration::from_secs(1), config.clock_hz);
            let id = host.spawn(TaskSpec::compute(work));
            let outcome = host
                .run_until_complete(id, SimDuration::from_secs(600))
                .expect("finishes");
            vec![m("completed_s", outcome.completed_at.as_secs_f64())]
        }
    }

    let run = |threads: usize| {
        run_experiment(
            &MiniFig1,
            &Options {
                threads,
                ..Options::default()
            },
        )
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.scenarios.len(), parallel.scenarios.len());
    for (a, b) in serial.scenarios.iter().zip(&parallel.scenarios) {
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(a.metrics, b.metrics);
    }
    assert_eq!(serial.metrics, parallel.metrics);
    assert!(serial.metrics.counter("host.world_switches") > 0);
}

mod session_replication_proptest {
    use super::*;
    use gridvm::simcore::replication::{ReplicationCtx, ReplicationRunner};
    use gridvm::simcore::trace::TraceLog;
    use proptest::prelude::*;

    /// Order-sensitive FNV-1a fold over every retained trace entry, so
    /// two runs agree iff they produced the same causal history in the
    /// same order.
    fn trace_digest(log: &TraceLog) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in log.entries() {
            mix(&e.time.as_nanos().to_le_bytes());
            mix(e.category.as_bytes());
            mix(e.message.as_bytes());
        }
        h
    }

    fn grid_world() -> GridWorld {
        let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
        let host = info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::PhysicalHost {
                cores: 2,
                clock_hz: 800e6,
                memory_mib: 1024,
            },
        );
        info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::VmFuture {
                host,
                images: vec!["rh72".into()],
                available_slots: 1,
            },
        );
        info.register(
            SimTime::ZERO,
            "s",
            ResourceKind::ImageServer {
                images: vec!["rh72".into()],
            },
        );
        GridWorld {
            info,
            compute: ComputeServer::paper_node("c"),
            image_server: gridvm::core::server::paper_image_server("rh72"),
            data_server: Some(gridvm::core::server::paper_data_server(
                "u",
                ByteSize::from_mib(1),
            )),
            dhcp: gridvm::vnet::dhcp::DhcpServer::new(
                gridvm::vnet::addr::Subnet::new(
                    gridvm::vnet::addr::Ipv4Addr::from_octets(10, 0, 0, 0),
                    24,
                ),
                SimDuration::from_secs(600),
            ),
        }
    }

    /// One replication: a full gridmw session (discover → lease → DHCP
    /// → stage → boot → run app), its milestones recorded as a trace.
    /// Returns everything downstream assertions compare bit-for-bit.
    fn session_sample(ctx: &ReplicationCtx) -> (u64, u64) {
        let req = SessionRequest {
            user: "u".into(),
            image: "rh72".into(),
            min_cores: 1,
            startup: StartupConfig::table2(
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
            ),
            app: AppProfile::new("a", CpuWork::from_cycles(200_000_000)).with_syscalls(50),
        };
        let mut world = grid_world();
        let mut rng = ctx.rng().split("session");
        let report =
            GridSession::establish(&mut world, &req, &mut rng).expect("session establishes");
        let mut log = TraceLog::with_capacity(64);
        log.record(
            SimTime::ZERO,
            "session",
            format!("lease {}", report.address),
        );
        log.record(
            SimTime::ZERO + report.startup.total,
            "session",
            "vm ready".to_owned(),
        );
        log.record(
            SimTime::ZERO + report.total,
            "session",
            format!("app done after {:?}", report.app),
        );
        (report.total.as_nanos(), trace_digest(&log))
    }

    proptest! {
        /// A small gridmw session replicated under different thread
        /// counts produces identical per-replication results, identical
        /// metrics, and identical trace digests for every random seed.
        /// This is the end-to-end guarantee the container migrations
        /// and the audit layer protect.
        #[test]
        fn session_metrics_and_traces_are_thread_count_invariant(
            seed in 1u64..u64::MAX / 2,
            threads in 2usize..9,
        ) {
            let serial = ReplicationRunner::new(1).run(seed, 6, session_sample);
            let parallel = ReplicationRunner::new(threads).run(seed, 6, session_sample);
            prop_assert_eq!(&serial.results, &parallel.results);
            prop_assert_eq!(&serial.replication_metrics, &parallel.replication_metrics);
            prop_assert_eq!(&serial.merged_metrics, &parallel.merged_metrics);
            // Different replications see different seeds: the digests
            // must not be trivially constant.
            let digests: std::collections::BTreeSet<u64> =
                serial.results.iter().map(|(_, d)| *d).collect();
            prop_assert!(digests.len() > 1, "replication digests all identical");
        }
    }
}

#[test]
fn sharded_simulation_is_shard_and_thread_count_invariant() {
    // The conservative synchronizer's whole contract: the multi-site
    // VO world must produce bit-identical trace digests, metrics and
    // coordinator tallies at every shard/thread packing. CI adds an
    // extra leg via GRIDVM_SHARDS to sweep the same body under
    // different ambient counts.
    use gridvm::core::multisite::{build_vo, VoConfig};
    use gridvm::simcore::metrics;

    let cfg = VoConfig {
        sites: 6,
        sessions_per_site: 6,
        steps_per_session: 40,
        ..VoConfig::paper_vo()
    };
    let run = |shards: usize, threads: usize| {
        let mut sim = build_vo(&cfg).shards(shards).threads(threads);
        metrics::reset();
        sim.run();
        metrics::reset();
        (
            sim.trace_digest(),
            sim.merged_metrics(),
            sim.windows(),
            sim.messages(),
            sim.total_events(),
        )
    };
    let want = run(1, 1);
    assert!(want.3 > 0, "the sweep must actually cross shard boundaries");
    let mut sweep = vec![2usize, 4, 8];
    if let Some(extra) = std::env::var("GRIDVM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        sweep.push(extra);
    }
    for shards in sweep {
        for threads in [1usize, 8] {
            assert_eq!(
                run(shards, threads),
                want,
                "divergence at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn trace_generation_streams_are_label_isolated() {
    // Drawing from one component's stream must not perturb another's.
    let root = SimRng::seed_from(6);
    let t1 = TraceGenerator::preset(LoadLevel::Heavy).generate(100, &mut root.split("a"));
    // interleave unrelated draws
    let mut other = root.split("b");
    for _ in 0..1000 {
        other.next_u64();
    }
    let t2 = TraceGenerator::preset(LoadLevel::Heavy).generate(100, &mut root.split("a"));
    assert_eq!(t1, t2);
}
