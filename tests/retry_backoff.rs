//! Property battery for the middleware retry/backoff schedule
//! (`gridvm_gridmw::retry`): across the whole policy space, delays
//! are monotonically non-decreasing and capped, the attempt budget
//! is exact, and jitter is a pure function of the seed.

use gridvm::gridmw::retry::{retry_rpc, RetryError, RetryPolicy};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn policy(
    base_ms: u64,
    cap_ms: u64,
    multiplier_percent: u32,
    max_attempts: u32,
    jitter_percent: u32,
) -> RetryPolicy {
    RetryPolicy {
        base: SimDuration::from_nanos(base_ms * 1_000_000),
        cap: SimDuration::from_nanos(cap_ms * 1_000_000),
        multiplier_percent,
        max_attempts,
        jitter_percent,
    }
    .validated()
}

proptest! {
    /// Delays never shrink and never exceed the cap, for any policy
    /// and any jitter seed.
    #[test]
    fn delays_are_monotone_and_capped(
        seed in 0u64..u64::MAX / 2,
        base_ms in 1u64..2_000,
        cap_ms in 1u64..60_000,
        multiplier_percent in 100u32..500,
        max_attempts in 1u32..16,
        jitter_percent in 0u32..200,
    ) {
        let p = policy(base_ms, cap_ms, multiplier_percent, max_attempts, jitter_percent);
        let delays: Vec<SimDuration> = p.backoff(SimRng::seed_from(seed)).collect();
        prop_assert_eq!(delays.len() as u32, max_attempts - 1, "one delay between attempts");
        prop_assert!(
            delays.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone: {:?}", delays
        );
        prop_assert!(
            delays.iter().all(|d| *d <= p.cap),
            "cap exceeded: {:?} > {}", delays, p.cap
        );
    }

    /// A failing operation is attempted exactly `max_attempts` times,
    /// never more, and the exhaustion error reports that count.
    #[test]
    fn attempts_never_exceed_the_budget(
        seed in 0u64..u64::MAX / 2,
        max_attempts in 1u32..12,
    ) {
        let p = RetryPolicy { max_attempts, ..RetryPolicy::default() };
        let mut rng = SimRng::seed_from(seed);
        let mut calls = 0u32;
        let (_, result): (_, Result<(), _>) =
            retry_rpc(&p, SimTime::ZERO, &mut rng, |t, _| {
                calls += 1;
                (t + SimDuration::from_nanos(1_000_000), Err("down"))
            });
        prop_assert_eq!(calls, max_attempts);
        match result {
            Err(RetryError::BudgetExhausted { attempts, .. }) => {
                prop_assert_eq!(attempts, max_attempts);
            }
            other => prop_assert!(false, "expected exhaustion, got {:?}", other),
        }
    }

    /// Jitter is a pure function of the seed: identical seeds give
    /// identical schedules; the finish time of a retried call is
    /// reproducible.
    #[test]
    fn identical_seeds_yield_identical_jitter(
        seed in 0u64..u64::MAX / 2,
        jitter_percent in 1u32..100,
        fail_count in 0u32..5,
    ) {
        let p = RetryPolicy { jitter_percent, ..RetryPolicy::default() };
        let a: Vec<SimDuration> = p.backoff(SimRng::seed_from(seed)).collect();
        let b: Vec<SimDuration> = p.backoff(SimRng::seed_from(seed)).collect();
        prop_assert_eq!(a, b);
        let run = || {
            let mut rng = SimRng::seed_from(seed);
            retry_rpc(&p, SimTime::ZERO, &mut rng, |t, attempt| {
                let done = t + SimDuration::from_nanos(5_000_000);
                if attempt < fail_count { (done, Err(())) } else { (done, Ok(attempt)) }
            })
        };
        let (fa, ra) = run();
        let (fb, rb) = run();
        prop_assert_eq!(fa, fb, "finish times diverged");
        prop_assert_eq!(ra.is_ok(), rb.is_ok());
    }

    /// Progress through simulated time: each failed attempt pushes the
    /// next attempt strictly later (the schedule cannot stall).
    #[test]
    fn retries_advance_simulated_time(
        seed in 0u64..u64::MAX / 2,
        fail_count in 1u32..5,
    ) {
        let p = RetryPolicy::default();
        let mut rng = SimRng::seed_from(seed);
        let mut starts: Vec<SimTime> = Vec::new();
        let _ = retry_rpc(&p, SimTime::ZERO, &mut rng, |t, attempt| {
            starts.push(t);
            let done = t + SimDuration::from_nanos(1_000_000);
            if attempt < fail_count { (done, Err(())) } else { (done, Ok(())) }
        });
        prop_assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "attempt starts must strictly increase: {:?}", starts
        );
    }
}
