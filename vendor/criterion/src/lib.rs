//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal bench runner exposing the subset of
//! criterion's surface the `gridvm-bench` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures median wall-clock time over a fixed number of
//! iterations — enough to spot order-of-magnitude regressions by eye;
//! it does not attempt criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::time::Instant;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs of a caller-chosen size.
    NumIterations(u64),
}

/// An opaque identity function that defeats constant folding well
/// enough for these benches (no `unsafe`, no inline assembly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..Criterion::SAMPLES {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..Criterion::SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// The bench context handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    const SAMPLES: u32 = 15;

    /// Registers and immediately runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0.0);
        let best = b.samples.first().copied().unwrap_or(0.0);
        println!(
            "bench {name:<50} median {:>12} best {:>12}",
            fmt(median),
            fmt(best)
        );
        self
    }
}

fn fmt(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// Declares a bench group: a named function list runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_runs() {
        benches();
    }
}
