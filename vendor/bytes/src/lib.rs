//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `bytes` API it actually
//! uses: an immutable, cheaply cloneable byte container backed by an
//! `Arc<[u8]>`. Clones share the allocation, which is the property the
//! storage and VFS crates rely on when fanning a block payload out to
//! caches and RPC messages.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// callers need to care about (this stand-in copies once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a fresh `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the subrange `[begin, end)` of the buffer.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_and_to_vec() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![1, 2]));
        assert_eq!(a.to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"ab").len(), 2);
    }
}
