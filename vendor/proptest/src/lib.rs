//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a deterministic random-input test harness that
//! covers the subset of proptest's API the suite uses: the
//! [`proptest!`] macro over `pat in strategy` arguments, range and
//! tuple strategies, [`collection::vec`], [`bool::ANY`] /
//! [`bool::weighted`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the values that produced it (every strategy value is `Debug`),
//! which is enough to reproduce because the input stream is a pure
//! function of the test's name.

#![forbid(unsafe_code)]

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// Deterministic generator feeding the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `label`
    /// (typically the property's name), so failures reproduce.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: zero bound");
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

/// How test inputs are drawn. Mirrors proptest's `Strategy` in name
/// and role; sampling replaces proptest's value trees (no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// A strategy producing a fixed value (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy value (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.0
        }
    }

    /// A boolean strategy that is `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p={p} out of [0,1]");
        Weighted(p)
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::bool::ANY;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over [`CASES`] deterministic
/// random inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Skips the current random case when its inputs don't satisfy a
/// precondition. Expands to `continue` on the case loop, so it must be
/// used at the top level of the property body (which is how the suite
/// uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u8..=255, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u64..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..7, crate::bool::weighted(1.0)), b in ANY) {
            prop_assert!(pair.0 < 7);
            prop_assert!(pair.1);
            let _ = b;
        }
    }

    #[test]
    fn exact_vec_size() {
        let mut rng = TestRng::deterministic("exact");
        let v = collection::vec(0u64..10, 15).sample(&mut rng);
        assert_eq!(v.len(), 15);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
