//! # gridvm
//!
//! Facade crate for the **gridvm** workspace — a from-scratch,
//! deterministic-simulation reproduction of
//! *"A Case For Grid Computing On Virtual Machines"*
//! (Figueiredo, Dinda, Fortes — ICDCS 2003).
//!
//! Each subsystem the paper describes or depends on is its own crate,
//! re-exported here under a stable module name:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`simcore`] | `gridvm-simcore` | discrete-event kernel, RNG, stats |
//! | [`hostload`] | `gridvm-hostload` | load-trace generation & playback |
//! | [`sched`] | `gridvm-sched` | host schedulers + constraint language |
//! | [`host`] | `gridvm-host` | multicore host simulator |
//! | [`vmm`] | `gridvm-vmm` | classic VMM cost model & lifecycle |
//! | [`storage`] | `gridvm-storage` | block stores, COW, images, staging |
//! | [`vfs`] | `gridvm-vfs` | grid virtual file system (PVFS) |
//! | [`vnet`] | `gridvm-vnet` | DHCP, tunnels, VPN, overlays |
//! | [`gridmw`] | `gridvm-gridmw` | information service, GRAM, GridFTP, RPS |
//! | [`workloads`] | `gridvm-workloads` | SPEChpc profiles & synthetic tasks |
//! | [`core`] | `gridvm-core` | the VM-grid architecture itself |
//!
//! ## Quickstart
//!
//! ```
//! use gridvm::core::server::ComputeServer;
//! use gridvm::core::startup::{run_startup, StartupConfig, StartupMode, StateAccess};
//! use gridvm::simcore::rng::SimRng;
//! use gridvm::vmm::machine::DiskMode;
//!
//! // Instantiate the paper's Red Hat guest by restoring warm state
//! // from the local file system (Table 2's fastest row).
//! let mut server = ComputeServer::paper_node("demo");
//! let cfg = StartupConfig::table2(StartupMode::Restore,
//!                                 DiskMode::NonPersistent,
//!                                 StateAccess::DiskFs);
//! let breakdown = run_startup(&mut server, &cfg, &mut SimRng::seed_from(42));
//! assert!(breakdown.total_secs() < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gridvm_core as core;
pub use gridvm_gridmw as gridmw;
pub use gridvm_host as host;
pub use gridvm_hostload as hostload;
pub use gridvm_sched as sched;
pub use gridvm_simcore as simcore;
pub use gridvm_storage as storage;
pub use gridvm_vfs as vfs;
pub use gridvm_vmm as vmm;
pub use gridvm_vnet as vnet;
pub use gridvm_workloads as workloads;
