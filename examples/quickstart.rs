//! Quickstart: stand up a one-site grid — information service, image
//! server, data server, a virtualized compute server — and establish
//! a full six-step VM session for a user, exactly as Figure 3 of the
//! paper describes.
//!
//! Run with: `cargo run --example quickstart`

use gridvm::core::server::{paper_data_server, paper_image_server, ComputeServer};
use gridvm::core::session::{GridSession, GridWorld, SessionRequest};
use gridvm::core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm::gridmw::info::{InfoService, ResourceKind};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::units::{ByteSize, CpuWork};
use gridvm::vmm::machine::DiskMode;
use gridvm::vnet::addr::{Ipv4Addr, Subnet};
use gridvm::vnet::dhcp::DhcpServer;
use gridvm::workloads::{AppProfile, IoPattern};

fn main() {
    // --- deploy the grid (Figure 3's entities) --------------------------
    let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
    let host = info.register(
        SimTime::ZERO,
        "uf",
        ResourceKind::PhysicalHost {
            cores: 2,
            clock_hz: 800e6,
            memory_mib: 1024,
        },
    );
    info.register(
        SimTime::ZERO,
        "uf",
        ResourceKind::VmFuture {
            host,
            images: vec!["rh72".into()],
            available_slots: 4,
        },
    );
    info.register(
        SimTime::ZERO,
        "uf",
        ResourceKind::ImageServer {
            images: vec!["rh72".into()],
        },
    );
    let mut world = GridWorld {
        info,
        compute: ComputeServer::paper_node("uf-vmhost-01"),
        image_server: paper_image_server("rh72"),
        data_server: Some(paper_data_server("userX", ByteSize::from_mib(32))),
        dhcp: DhcpServer::new(
            Subnet::new(Ipv4Addr::from_octets(10, 8, 0, 0), 24),
            SimDuration::from_secs(3600),
        ),
    };

    // --- the user's request ------------------------------------------------
    let request = SessionRequest {
        user: "userX".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        app: AppProfile::new("hello-grid", CpuWork::from_cycles(8_000_000_000))
            .with_syscalls(20_000)
            .with_reads(ByteSize::from_mib(16), IoPattern::Sequential)
            .with_writes(ByteSize::from_mib(4)),
    };

    // --- establish and report ------------------------------------------------
    let mut rng = SimRng::seed_from(42);
    let report = GridSession::establish(&mut world, &request, &mut rng)
        .expect("the demo grid satisfies the request");

    println!("six-step session established for {}", request.user);
    println!("  1. VM future discovery    {}", report.discover_future);
    println!("  2. image discovery        {}", report.discover_image);
    println!("  3. image data session     {}", report.image_session_setup);
    println!(
        "  4. VM startup ({})  {} -> address {}",
        request.startup.label(),
        report.startup.total,
        report.address
    );
    println!("  5. user data session      {}", report.data_session_setup);
    println!(
        "  6. application run        {} (user {}, sys {})",
        report.app.wall, report.app.user, report.app.sys
    );
    println!("  total                     {}", report.total);
    println!();
    println!(
        "the running VM is registered with the information service as {}",
        report.vm_record
    );
}
