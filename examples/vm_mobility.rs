//! VM mobility: the full "computation decoupled from resources"
//! story. A VM boots at site A, joins the user's home network
//! through an Ethernet-over-SSH VPN, dirties its copy-on-write disk,
//! then migrates — whole environment, memory and diff — to site B,
//! where it resumes and the overlay re-optimizes routing to it
//! (Sections 3.1, 3.3).
//!
//! Run with: `cargo run --example vm_mobility`

use gridvm::core::migration::migrate;
use gridvm::core::server::ComputeServer;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::server::Pipe;
use gridvm::simcore::time::{SimDuration, SimTime};
use gridvm::simcore::units::Bandwidth;
use gridvm::storage::block::{BlockAddr, BlockStore};
use gridvm::storage::cow::CowOverlay;
use gridvm::storage::image::VmImage;
use gridvm::vmm::machine::{Vm, VmConfig};
use gridvm::vnet::addr::{Ipv4Addr, MacAddr, Subnet};
use gridvm::vnet::dhcp::DhcpServer;
use gridvm::vnet::link::NetLink;
use gridvm::vnet::overlay::Overlay;
use gridvm::vnet::tunnel::{EthernetTunnel, Vpn};

fn main() {
    // --- boot at site A ---------------------------------------------------
    let image = VmImage::redhat_guest("rh72");
    let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
    vm.attach_disk(CowOverlay::new(image.base_store()));
    vm.begin_staging(SimTime::ZERO).expect("fresh VM");
    vm.begin_boot(SimTime::from_secs(1)).expect("staged");
    vm.mark_running(SimTime::from_secs(65)).expect("booted");
    println!("VM running at site A (state: {})", vm.state());

    // --- VPN back to the user's home network -------------------------------
    let home_dhcp = DhcpServer::new(
        Subnet::new(Ipv4Addr::from_octets(192, 168, 1, 0), 24),
        SimDuration::from_secs(3600),
    );
    let tunnel = EthernetTunnel::new(NetLink::new(
        SimDuration::from_millis(25),
        Bandwidth::from_mbit_per_sec(10.0),
    ));
    let mut vpn = Vpn::new(tunnel, home_dhcp);
    let mac = MacAddr::local(1);
    let (home_addr, joined_at) = vpn.join(SimTime::from_secs(65), mac).expect("tunnel is up");
    println!(
        "VM joined the user's home LAN as {home_addr} (DHCP over SSH tunnel, done at {joined_at})"
    );

    // --- the overlay knows about the VM -------------------------------------
    let mut overlay = Overlay::new();
    let user_site = overlay.add_node();
    let site_a = overlay.add_node();
    let site_b = overlay.add_node();
    overlay.update_measurement(user_site, site_a, SimDuration::from_millis(25));
    overlay.update_measurement(user_site, site_b, SimDuration::from_millis(12));
    overlay.update_measurement(site_a, site_b, SimDuration::from_millis(30));
    let before = overlay.route(user_site, site_a).expect("connected");
    println!(
        "user -> VM route before migration: {} hops, {}",
        before.hops.len() - 1,
        before.latency
    );

    // --- dirty some state, then migrate to site B ---------------------------
    {
        let disk = vm.disk_mut().expect("disk attached");
        for i in 0..25_000u64 {
            disk.write(BlockAddr(i), bytes_of(0xAB)).expect("in range");
        }
        println!(
            "guest dirtied {} of its non-persistent disk",
            disk.diff_size()
        );
    }
    let mut site_a_srv = ComputeServer::paper_node("site-a");
    let mut site_b_srv = ComputeServer::paper_node("site-b");
    let mut wire = Pipe::new(
        SimDuration::from_millis(12),
        Bandwidth::from_mbit_per_sec(100.0),
    );
    let mut rng = SimRng::seed_from(11);
    let report = migrate(
        &mut vm,
        &mut site_a_srv,
        &mut site_b_srv,
        &mut wire,
        SimTime::from_secs(600),
        &mut rng,
    )
    .expect("running VM migrates");
    println!(
        "migrated to site B: suspend {}, transfer {} ({}), resume {}, reconnect {}",
        report.suspend, report.transfer, report.bytes_moved, report.resume, report.reconnect
    );
    println!("total downtime: {}", report.downtime());

    // --- overlay re-optimizes -------------------------------------------------
    let after = overlay.route(user_site, site_b).expect("connected");
    println!(
        "user -> VM route after migration: {} ({} faster than before)",
        after.latency,
        SimDuration::from_nanos(
            before
                .latency
                .as_nanos()
                .saturating_sub(after.latency.as_nanos())
        )
    );
    println!("VM state: {} — same environment, new resource", vm.state());
}

fn bytes_of(b: u8) -> bytes::Bytes {
    bytes::Bytes::from(vec![b; 4096])
}
