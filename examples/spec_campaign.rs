//! A SPEChpc campaign, the workload the paper's introduction
//! motivates: computer-architecture/solid-state-style long-running
//! simulations submitted to grid VMs. Runs SPECseis and SPECclimate
//! on the physical machine, in a VM with local state, and in a VM
//! with state over the PVFS wide-area virtual file system — the
//! Table 1 comparison, at 1% scale so it finishes instantly.
//!
//! Run with: `cargo run --example spec_campaign`

use gridvm::core::NfsGuestStorage;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::SimTime;
use gridvm::simcore::units::ByteSize;
use gridvm::storage::disk::{DiskModel, DiskProfile};
use gridvm::vfs::mount::{Mount, Transport};
use gridvm::vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm::vfs::server::NfsServer;
use gridvm::vmm::exec::{run_app, ExecMode, LocalDiskStorage};
use gridvm::vmm::VirtCostModel;
use gridvm::workloads::{spec, AppProfile};

/// Shrink a profile 100× (ratios are preserved).
fn mini(app: &AppProfile) -> AppProfile {
    AppProfile::new(app.name(), app.user_work().mul_f64(0.01))
        .with_syscalls(app.syscalls() / 100)
        .with_reads(
            ByteSize::from_bytes(app.read_bytes().as_u64() / 100),
            app.io_pattern(),
        )
        .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / 100))
        .with_memory_pressure(app.memory_pressure())
}

fn main() {
    let model = VirtCostModel::default();
    println!("SPEChpc campaign at 1% scale (overheads are scale-free)");
    println!();

    for app in [mini(&spec::specseis()), mini(&spec::specclimate())] {
        // Physical machine.
        let mut disk = DiskModel::new(DiskProfile::ide_2003());
        let native = run_app(
            &app,
            ExecMode::Native,
            &model,
            &mut LocalDiskStorage::new(&mut disk),
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
        );

        // VM, local virtual disk.
        let mut disk2 = DiskModel::new(DiskProfile::ide_2003());
        let vm = run_app(
            &app,
            ExecMode::Virtualized,
            &model,
            &mut LocalDiskStorage::new(&mut disk2),
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
        );

        // VM, PVFS over the wide area (UF <-> Northwestern).
        let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
        let root = server.fs().root();
        let f = server
            .fs_mut()
            .create(root, "state", SimTime::ZERO)
            .expect("fresh export");
        server
            .fs_mut()
            .write(
                f,
                (app.io_bytes() + ByteSize::from_mib(1)).as_u64(),
                &[0],
                SimTime::ZERO,
            )
            .expect("presize");
        let mount = Mount::new(
            Transport::wan(),
            server,
            Some(VfsProxy::new(ProxyConfig::default())),
        );
        let mut pvfs = NfsGuestStorage::new(mount, f, model.pvfs_client_per_block, "PVFS");
        let vm_pvfs = run_app(
            &app,
            ExecMode::Virtualized,
            &model,
            &mut pvfs,
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
        );

        println!("{}:", app.name());
        println!(
            "  physical       user+sys {:>9}  (baseline)",
            native.cpu_total()
        );
        println!(
            "  VM, local disk user+sys {:>9}  (+{:.1}%)",
            vm.cpu_total(),
            vm.overhead_vs(&native) * 100.0
        );
        println!(
            "  VM, PVFS       user+sys {:>9}  (+{:.1}%)",
            vm_pvfs.cpu_total(),
            vm_pvfs.overhead_vs(&native) * 100.0
        );
        println!();
    }
    println!("paper (Table 1): seis +1.2% / +2.0%; climate +4.0% / +4.2%");
}
