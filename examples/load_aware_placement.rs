//! Load-aware VM placement: the application-perspective machinery of
//! Section 3.2. Hosts stream load measurements into RPS-style AR
//! predictors; a front-end queries the information service for VM
//! futures, asks each candidate's predictor for its near-term load,
//! and places the VM on the host expected to be least loaded.
//!
//! Run with: `cargo run --example load_aware_placement`

use gridvm::gridmw::info::{InfoService, Query, ResourceKind};
use gridvm::gridmw::rps::ArPredictor;
use gridvm::hostload::{LoadLevel, TraceGenerator};
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::{SimDuration, SimTime};

fn main() {
    let mut rng = SimRng::seed_from(2003);
    let mut info = InfoService::new().with_propagation(SimDuration::ZERO);

    // Three candidate hosts with different load climates.
    let profiles = [
        ("uf-busy", LoadLevel::Heavy),
        ("nw-light", LoadLevel::Light),
        ("uf-idle", LoadLevel::None),
    ];
    let mut sensors = Vec::new();
    for (name, level) in profiles {
        let host = info.register(
            SimTime::ZERO,
            name,
            ResourceKind::PhysicalHost {
                cores: 2,
                clock_hz: 800e6,
                memory_mib: 1024,
            },
        );
        info.register(
            SimTime::ZERO,
            name,
            ResourceKind::VmFuture {
                host,
                images: vec!["rh72".into()],
                available_slots: 2,
            },
        );
        // Each host streams an hour of load samples into its RPS
        // predictor.
        let trace = TraceGenerator::preset(level).generate(3600, &mut rng.split(name));
        let mut predictor = ArPredictor::new(2, 1024);
        for s in trace.samples() {
            predictor.observe(*s);
        }
        sensors.push((name, host, predictor));
    }

    // The front-end: query futures, predict, place.
    let futures = info.query(&Query::CanInstantiate("rh72".into()), 10, &mut rng);
    println!("candidate VM futures: {}", futures.len());
    println!();
    let mut best: Option<(&str, f64)> = None;
    for (name, _host, predictor) in &sensors {
        let line = match predictor.fit() {
            Ok(model) => {
                let ahead = predictor.predict(&model, 30);
                let avg: f64 = ahead.iter().map(|p| p.mean).sum::<f64>() / ahead.len() as f64;
                let last = &ahead[29];
                if best.is_none() || avg < best.expect("set").1 {
                    best = Some((name, avg));
                }
                format!(
                    "predicted 30s-ahead load {:.2} (±{:.2} at horizon)",
                    avg, last.ci95
                )
            }
            Err(e) => {
                // A constant (idle) series is singular — which itself
                // tells the placer the host is idle.
                if best.is_none() || 0.0 < best.expect("set").1 {
                    best = Some((name, 0.0));
                }
                format!("predictor: {e} -> treating as constant/idle")
            }
        };
        println!("  {name:<9} {line}");
    }
    let (winner, load) = best.expect("there are candidates");
    println!();
    println!("placement decision: instantiate on {winner} (expected load {load:.2})");
    println!("(the paper: 'applications can best discover a collection of appropriate");
    println!(" resources by posing a relational query' + RPS predictions for adaptation)");
}
