//! Figure 3's second scenario: a service provider `S` instantiates
//! service VMs V1 and V2 on a physical server and multiplexes users
//! A, B and C across them through logical user accounts — "the
//! logical user account abstraction decouples access to physical
//! resources (middleware) from access to virtual resources
//! (end-users and services)."
//!
//! Run with: `cargo run --example service_provider`

use gridvm::core::frontend::ServiceProvider;
use gridvm::gridmw::accounts::AccountPool;
use gridvm::gridmw::batch::{schedule, BatchJob, QueuePolicy};
use gridvm::simcore::time::{SimDuration, SimTime};

fn main() {
    // The provider stands up two service VMs, each able to serve two
    // concurrent users, over a pool of four logical accounts.
    let accounts = AccountPool::new(
        &["svc01", "svc02", "svc03", "svc04"],
        SimDuration::from_secs(3600),
    );
    let mut provider = ServiceProvider::new("S", &["V1", "V2"], 2, accounts);

    for user in ["/CN=A", "/CN=B", "/CN=C"] {
        let at = provider
            .attach(SimTime::ZERO, user)
            .expect("capacity for three users");
        println!(
            "{user:<7} -> service VM {:<3} as logical account {}",
            at.vm, at.account.0
        );
    }
    println!(
        "sessions: V1={} V2={} (total {})",
        provider.sessions_on("V1").expect("exists"),
        provider.sessions_on("V2").expect("exists"),
        provider.active_sessions()
    );

    // User A leaves; a new user D lands on the freed slot.
    provider.detach("/CN=A");
    let d = provider
        .attach(SimTime::from_secs(60), "/CN=D")
        .expect("slot freed");
    println!("/CN=A detached; /CN=D -> {} as {}", d.vm, d.account.0);
    println!();

    // Meanwhile, the provider's applications run through its batch
    // queue on the backing cluster.
    let jobs = vec![
        (
            SimTime::ZERO,
            BatchJob::new("render-A", 2, SimDuration::from_secs(600)),
        ),
        (
            SimTime::ZERO,
            BatchJob::new("render-B", 2, SimDuration::from_secs(600)),
        ),
        (
            SimTime::from_secs(30),
            BatchJob::new("index-S", 4, SimDuration::from_secs(300)),
        ),
        (
            SimTime::from_secs(40),
            BatchJob::new("thumb-C", 1, SimDuration::from_secs(120)),
        ),
    ];
    let out = schedule(&jobs, 4, QueuePolicy::EasyBackfill).expect("jobs fit");
    println!("provider batch queue (4 nodes, EASY backfill):");
    for o in &out {
        println!(
            "  {:<9} start {:>6} finish {:>7} (waited {})",
            o.job.name,
            o.started.to_string(),
            o.finished.to_string(),
            o.wait()
        );
    }
}
