//! Resource-owner protection (Section 3.2): an owner writes a
//! constraint policy in the paper's specialized language; the
//! toolchain compiles it to a scheduler configuration; grid VMs then
//! share the host without hurting the owner's interactive work — and
//! the provider can also throttle a VM coarsely with
//! SIGSTOP/SIGCONT duty cycling.
//!
//! Run with: `cargo run --example owner_policy`

use gridvm::host::{HostConfig, HostSim, TaskSpec};
use gridvm::sched::constraint::compile;
use gridvm::sched::duty::DutyCycle;
use gridvm::simcore::rng::SimRng;
use gridvm::simcore::time::SimDuration;
use gridvm::simcore::units::CpuWork;

fn main() {
    // --- the owner's policy, in the constraint language -----------------
    let policy_text = r#"
        # Dual-core desktop; the owner keeps half the machine for
        # interactive work; two grid VMs share the rest.
        host cores 2;
        owner reserve 0.5;
        vm "grid-a" tickets 300;
        vm "grid-b" realtime period 100ms slice 20ms;
    "#;
    let policy = compile(policy_text).expect("the policy is well formed");
    println!("compiled policy: scheduler = {}", policy.scheduler_kind());
    for (name, params) in policy.vm_params() {
        println!("  vm {name:<8} -> {params:?}");
    }
    let owner_params = policy.owner_params().expect("owner reserved capacity");
    println!("  owner      -> {owner_params:?}");
    println!();

    // --- enforce it on a host -------------------------------------------
    let hz = 800e6;
    let mut host = HostSim::new(
        HostConfig {
            cores: policy.cores,
            clock_hz: hz,
            ..HostConfig::default()
        },
        policy.scheduler_kind().build(),
        SimRng::seed_from(7),
    );
    let owner_work = CpuWork::from_duration(SimDuration::from_secs(5), hz);
    let owner = host.spawn(TaskSpec::compute(owner_work).with_params(owner_params));
    let vm_params = policy.vm_params();
    let vm_a = host.spawn(TaskSpec::compute(owner_work.mul_f64(6.0)).with_params(vm_params[0].1));
    let vm_b = host.spawn(TaskSpec::compute(owner_work.mul_f64(2.0)).with_params(vm_params[1].1));

    let owner_done = host
        .run_until_complete(owner, SimDuration::from_secs(300))
        .expect("owner finishes");
    println!(
        "owner's 5s interactive batch finished in {} ({}x slowdown — reserve honoured)",
        owner_done.wall_time(),
        (owner_done.wall_time().as_secs_f64() / 5.0 * 100.0).round() / 100.0
    );
    let a_done = host
        .run_until_complete(vm_a, SimDuration::from_secs(300))
        .expect("vm-a finishes");
    let b_done = host
        .run_until_complete(vm_b, SimDuration::from_secs(300))
        .expect("vm-b finishes");
    println!("grid-a (30s of work) finished at {}", a_done.completed_at);
    println!(
        "grid-b (10s of work, 20% reservation) finished at {}",
        b_done.completed_at
    );
    println!();

    // --- coarse-grain control: SIGSTOP/SIGCONT duty cycling --------------
    let mut throttled_host = HostSim::new(
        HostConfig {
            cores: 1,
            clock_hz: hz,
            ..HostConfig::default()
        },
        gridvm::sched::SchedulerKind::TimeShare.build(),
        SimRng::seed_from(8),
    );
    let duty = DutyCycle::new(SimDuration::from_secs(1), 0.25);
    let throttled = throttled_host.spawn(
        TaskSpec::compute(CpuWork::from_duration(SimDuration::from_secs(2), hz)).with_duty(duty),
    );
    let t_done = throttled_host
        .run_until_complete(throttled, SimDuration::from_secs(60))
        .expect("throttled VM finishes");
    println!(
        "SIGSTOP/SIGCONT at 25% duty: a 2s VM workload took {} (~4x, as expected)",
        t_done.wall_time()
    );
}
