//! Synthetic tasks: the Figure 1 microbenchmark and parameterized
//! CPU/I-O mixes for ablation benches.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::{ByteSize, CpuWork};

use crate::profile::{AppProfile, IoPattern};

/// The Figure 1 *test task*: a pure compute-bound task of roughly
/// `seconds` of dedicated CPU at `hz` (no syscalls, no I/O — its
/// slowdown under load isolates scheduling and world-switch effects).
pub fn micro_test_task(seconds: f64, hz: f64) -> AppProfile {
    AppProfile::new(
        "micro-test",
        CpuWork::from_duration(SimDuration::from_secs_f64(seconds), hz),
    )
}

/// A parameterized mix for ablations: `compute_seconds` of user work
/// with `io_mib` of file I/O in the given pattern and a syscall per
/// 64 KiB of I/O plus a base rate.
pub fn mixed_task(compute_seconds: f64, io_mib: u64, pattern: IoPattern, hz: f64) -> AppProfile {
    let io = ByteSize::from_mib(io_mib);
    AppProfile::new(
        format!("mixed-{compute_seconds}s-{io_mib}MiB"),
        CpuWork::from_duration(SimDuration::from_secs_f64(compute_seconds), hz),
    )
    .with_syscalls(1000 + io.as_u64() / (64 * 1024))
    .with_reads(ByteSize::from_bytes(io.as_u64() / 2), pattern)
    .with_writes(ByteSize::from_bytes(io.as_u64() / 2))
}

/// A jittered batch of micro test tasks, as an experiment would
/// submit across samples: durations vary ±`jitter` fraction around
/// `seconds`.
///
/// # Panics
///
/// Panics if `jitter` is not in `[0, 1)` or `count` is zero.
pub fn micro_batch(
    count: usize,
    seconds: f64,
    jitter: f64,
    hz: f64,
    rng: &mut SimRng,
) -> Vec<AppProfile> {
    assert!(count > 0, "empty batch");
    assert!((0.0..1.0).contains(&jitter), "jitter outside [0,1)");
    (0..count)
        .map(|i| {
            let f = 1.0 + jitter * (rng.next_f64() * 2.0 - 1.0);
            AppProfile::new(
                format!("micro-{i}"),
                CpuWork::from_duration(SimDuration::from_secs_f64(seconds * f), hz),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_task_is_pure_cpu() {
        let t = micro_test_task(3.0, 800e6);
        assert_eq!(t.syscalls(), 0);
        assert!(t.io_bytes().is_zero());
        assert!((t.native_user_time_at(800e6).as_secs_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_task_scales_syscalls_with_io() {
        let small = mixed_task(1.0, 1, IoPattern::Random, 1e9);
        let big = mixed_task(1.0, 1024, IoPattern::Random, 1e9);
        assert!(big.syscalls() > small.syscalls());
        assert_eq!(big.io_bytes(), ByteSize::from_gib(1));
        assert_eq!(big.io_pattern(), IoPattern::Random);
    }

    #[test]
    fn micro_batch_jitters_deterministically() {
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        let a = micro_batch(10, 3.0, 0.1, 800e6, &mut r1);
        let b = micro_batch(10, 3.0, 0.1, 800e6, &mut r2);
        assert_eq!(a, b);
        let base = CpuWork::from_duration(SimDuration::from_secs_f64(3.0), 800e6);
        for t in &a {
            let ratio = t.user_work().as_cycles() as f64 / base.as_cycles() as f64;
            assert!((0.9..=1.1).contains(&ratio), "jitter ratio {ratio}");
        }
        // Not all identical.
        assert!(a.iter().any(|t| t.user_work() != base));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = micro_batch(0, 1.0, 0.0, 1e9, &mut SimRng::seed_from(1));
    }
}
