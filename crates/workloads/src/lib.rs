//! # gridvm-workloads
//!
//! Application models for the paper's experiments.
//!
//! The paper evaluates VM overhead with (a) a synthetic CPU-bound
//! *test task* under background load (Figure 1) and (b) the SPEChpc
//! macro-benchmarks SPECseis and SPECclimate run sequentially
//! (Table 1). The binaries themselves are not available, so this
//! crate models an application as a [`profile::AppProfile`]: total
//! user-mode CPU work plus the kernel-visible activity (system calls
//! and file I/O) that virtualization taxes.
//!
//! Calibration targets come straight from Table 1 (user and system
//! seconds on the paper's 933 MHz Pentium III) — see
//! [`spec::specseis`] and [`spec::specclimate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod spec;
pub mod synthetic;

pub use profile::{AppProfile, IoPattern};
pub use synthetic::micro_test_task;
