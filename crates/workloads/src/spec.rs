//! SPEChpc calibrations for Table 1.
//!
//! Targets (paper, dual Pentium III/933 MHz, sequential runs):
//!
//! | app         | native user | native sys | VM user  | VM sys |
//! |-------------|-------------|------------|----------|--------|
//! | SPECseis    | 16 395 s    | 19 s       | 16 557 s | 60 s   |
//! | SPECclimate | 9 304 s     | 3 s        | 9 679 s  | 5 s    |
//!
//! Decomposition used here (reproduced by the `table1_macro` bench
//! together with the VMM cost model):
//!
//! * **User work** = native user seconds × 933 MHz cycles.
//! * **System time** = syscall handling + per-block file-I/O kernel
//!   work. SPECseis is I/O-heavy (≈ 7.3 GiB through the fs), which
//!   is why its native sys (19 s) and PVFS overhead dominate;
//!   SPECclimate is compute-bound with light I/O.
//! * **Memory pressure** differentiates the VM *user* overhead:
//!   SPECclimate's ≈ 4% versus SPECseis's ≈ 1% comes from
//!   shadow-paging costs, modeled as pressure 0.80 vs 0.11.

use gridvm_simcore::units::{ByteSize, CpuWork};

use crate::profile::{AppProfile, IoPattern};

/// The paper's macro-benchmark host clock (Pentium III/933).
pub const MACRO_CLOCK_HZ: f64 = 933e6;

/// SPECseis (seismic processing): 16 395 s of user work, ~1.9 M
/// syscalls, ≈ 7.3 GiB of sequential file I/O, modest memory
/// pressure.
pub fn specseis() -> AppProfile {
    AppProfile::new(
        "SPECseis",
        CpuWork::from_duration(
            gridvm_simcore::time::SimDuration::from_secs(16_395),
            MACRO_CLOCK_HZ,
        ),
    )
    .with_syscalls(1_900_000)
    .with_reads(ByteSize::from_gib(3), IoPattern::Sequential)
    .with_writes(ByteSize::from_mib(4400))
    .with_memory_pressure(0.11)
}

/// SPECclimate (climate modeling): 9 304 s of user work, ~0.56 M
/// syscalls, ≈ 160 MiB of file I/O, high memory pressure.
pub fn specclimate() -> AppProfile {
    AppProfile::new(
        "SPECclimate",
        CpuWork::from_duration(
            gridvm_simcore::time::SimDuration::from_secs(9_304),
            MACRO_CLOCK_HZ,
        ),
    )
    .with_syscalls(560_000)
    .with_reads(ByteSize::from_mib(120), IoPattern::Sequential)
    .with_writes(ByteSize::from_mib(40))
    .with_memory_pressure(0.80)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seis_user_time_matches_table1() {
        let p = specseis();
        let t = p.native_user_time_at(MACRO_CLOCK_HZ).as_secs_f64();
        assert!((t - 16_395.0).abs() < 1.0, "seis user {t}");
    }

    #[test]
    fn climate_user_time_matches_table1() {
        let p = specclimate();
        let t = p.native_user_time_at(MACRO_CLOCK_HZ).as_secs_f64();
        assert!((t - 9_304.0).abs() < 1.0, "climate user {t}");
    }

    #[test]
    fn seis_is_io_heavy_climate_is_not() {
        let seis = specseis();
        let climate = specclimate();
        assert!(seis.io_bytes() > ByteSize::from_gib(7));
        assert!(climate.io_bytes() < ByteSize::from_mib(200));
        assert!(seis.io_bytes().as_u64() > 40 * climate.io_bytes().as_u64());
    }

    #[test]
    fn climate_has_higher_memory_pressure() {
        assert!(specclimate().memory_pressure() > 5.0 * specseis().memory_pressure());
    }
}
