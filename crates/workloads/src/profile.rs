//! Application profiles: the workload description consumed by the
//! VMM execution model.

use gridvm_simcore::units::{ByteSize, CpuWork};

/// How an application walks its files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IoPattern {
    /// Mostly sequential scans (scientific codes reading/writing
    /// large arrays).
    #[default]
    Sequential,
    /// Scattered accesses (databases, small-file workloads).
    Random,
}

/// A phase-free summary of an application's resource demands.
///
/// `user_work` executes unprivileged (native speed under a classic
/// VMM); `syscalls` and file I/O exercise the guest kernel and are
/// what trap-and-emulate inflates.
///
/// ```
/// use gridvm_workloads::{AppProfile, IoPattern};
/// use gridvm_simcore::units::{ByteSize, CpuWork};
///
/// let app = AppProfile::new("demo", CpuWork::from_cycles(1_000_000_000))
///     .with_syscalls(50_000)
///     .with_reads(ByteSize::from_mib(100), IoPattern::Sequential)
///     .with_writes(ByteSize::from_mib(10));
/// assert_eq!(app.name(), "demo");
/// assert_eq!(app.syscalls(), 50_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AppProfile {
    name: String,
    user_work: CpuWork,
    syscalls: u64,
    read_bytes: ByteSize,
    write_bytes: ByteSize,
    io_pattern: IoPattern,
    memory_pressure: f64,
}

impl AppProfile {
    /// Creates a profile with only user-mode work.
    pub fn new(name: impl Into<String>, user_work: CpuWork) -> Self {
        AppProfile {
            name: name.into(),
            user_work,
            syscalls: 0,
            read_bytes: ByteSize::ZERO,
            write_bytes: ByteSize::ZERO,
            io_pattern: IoPattern::Sequential,
            memory_pressure: 0.0,
        }
    }

    /// Sets the virtual-memory pressure of the application in
    /// `[0, 1]`: how hard it exercises TLB/page-table machinery.
    /// Under a classic VMM, shadow-paging costs inflate *user* time
    /// in proportion (the effect behind SPECclimate's ~4% user
    /// overhead versus SPECseis's ~1% in Table 1).
    ///
    /// # Panics
    ///
    /// Panics outside `[0, 1]`.
    pub fn with_memory_pressure(mut self, pressure: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pressure),
            "memory pressure {pressure} outside [0,1]"
        );
        self.memory_pressure = pressure;
        self
    }

    /// Sets the system-call count.
    pub fn with_syscalls(mut self, syscalls: u64) -> Self {
        self.syscalls = syscalls;
        self
    }

    /// Sets the file bytes read and the access pattern.
    pub fn with_reads(mut self, bytes: ByteSize, pattern: IoPattern) -> Self {
        self.read_bytes = bytes;
        self.io_pattern = pattern;
        self
    }

    /// Sets the file bytes written.
    pub fn with_writes(mut self, bytes: ByteSize) -> Self {
        self.write_bytes = bytes;
        self
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total unprivileged CPU work.
    pub fn user_work(&self) -> CpuWork {
        self.user_work
    }

    /// Total system calls issued.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Total file bytes read.
    pub fn read_bytes(&self) -> ByteSize {
        self.read_bytes
    }

    /// Total file bytes written.
    pub fn write_bytes(&self) -> ByteSize {
        self.write_bytes
    }

    /// The file access pattern.
    pub fn io_pattern(&self) -> IoPattern {
        self.io_pattern
    }

    /// Virtual-memory pressure in `[0, 1]`.
    pub fn memory_pressure(&self) -> f64 {
        self.memory_pressure
    }

    /// Total I/O volume.
    pub fn io_bytes(&self) -> ByteSize {
        self.read_bytes + self.write_bytes
    }

    /// The user time on a dedicated core at `hz` (no virtualization).
    pub fn native_user_time_at(&self, hz: f64) -> gridvm_simcore::time::SimDuration {
        self.user_work.at_rate(hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_fields() {
        let p = AppProfile::new("x", CpuWork::from_cycles(100))
            .with_syscalls(5)
            .with_reads(ByteSize::from_kib(1), IoPattern::Random)
            .with_writes(ByteSize::from_kib(2));
        assert_eq!(p.io_pattern(), IoPattern::Random);
        assert_eq!(p.io_bytes(), ByteSize::from_kib(3));
        assert_eq!(p.read_bytes(), ByteSize::from_kib(1));
        assert_eq!(p.write_bytes(), ByteSize::from_kib(2));
    }

    #[test]
    fn native_time_divides_by_clock() {
        let p = AppProfile::new("x", CpuWork::from_cycles(933_000_000));
        assert!((p.native_user_time_at(933e6).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_pattern_is_sequential() {
        let p = AppProfile::new("x", CpuWork::ZERO);
        assert_eq!(p.io_pattern(), IoPattern::Sequential);
        assert_eq!(p.syscalls(), 0);
    }
}
