//! # gridvm-host
//!
//! A multicore physical-host simulator: tasks with finite CPU work
//! execute under a pluggable [`gridvm_sched::Scheduler`] in fixed
//! quanta, optionally against background load played back from a
//! [`gridvm_hostload::TracePlayback`].
//!
//! This is the measurement substrate for the paper's Figure 1
//! microbenchmark: a compute-bound *test task* runs on a dual-CPU
//! host while *load tasks* (driven by trace playback) compete with
//! it, and we observe the test task's wall-clock slowdown. The VMM
//! crate composes with this one by presenting a VM as a single host
//! task whose work and per-switch overheads are inflated by the
//! virtualization cost model.
//!
//! * [`task`] — task specifications and per-task outcome accounting.
//! * [`sim`] — the quantum-stepped execution loop.
//! * [`background`] — trace-driven background load as a set of
//!   duty-modulated infinite tasks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod sim;
pub mod task;

pub use sim::{HostConfig, HostSim};
pub use task::{TaskOutcome, TaskSpec};
