//! The quantum-stepped multicore execution loop.

use std::collections::{BTreeMap, BTreeSet};

use gridvm_hostload::TracePlayback;
use gridvm_sched::{Scheduler, TaskId};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::background::BackgroundLoad;
use crate::task::{TaskOutcome, TaskSpec};

use gridvm_simcore::metrics::Counter;

/// World switches charged to completed tasks (hot: once per task,
/// thousands of tasks per replication).
static WORLD_SWITCHES: Counter = Counter::new("host.world_switches");
/// Tasks run to completion.
static TASKS_COMPLETED: Counter = Counter::new("host.tasks_completed");

/// Static configuration of a simulated physical host.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Number of CPUs.
    pub cores: usize,
    /// Clock rate in cycles per second.
    pub clock_hz: f64,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// Base context-switch cost charged when a task is switched onto
    /// a core (on top of any per-task overhead).
    pub switch_cost: SimDuration,
}

impl Default for HostConfig {
    /// The paper's Figure 1 compute node: a dual Pentium III/800 MHz
    /// with a 10 ms scheduling quantum and a ~5 µs context switch.
    fn default() -> Self {
        HostConfig {
            cores: 2,
            clock_hz: 800e6,
            quantum: SimDuration::from_millis(10),
            switch_cost: SimDuration::from_micros(5),
        }
    }
}

impl HostConfig {
    /// Validates and returns the config.
    ///
    /// # Panics
    ///
    /// Panics on zero cores, non-positive clock, or zero quantum.
    pub fn validated(self) -> Self {
        assert!(self.cores > 0, "host needs at least one core");
        assert!(self.clock_hz > 0.0, "non-positive clock rate");
        assert!(!self.quantum.is_zero(), "zero scheduling quantum");
        self
    }
}

#[derive(Debug)]
struct RunningTask {
    spec: TaskSpec,
    /// Dedicated-CPU time still needed (already inflated by the work
    /// multiplier); `None` for infinite background tasks.
    remaining: Option<SimDuration>,
    cpu_time: SimDuration,
    overhead_time: SimDuration,
    switches: u64,
    submitted_at: SimTime,
}

/// Errors from driving a [`HostSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostError {
    /// The awaited task did not finish within the time cap.
    Timeout {
        /// The task that was being awaited.
        task: TaskId,
        /// The cap that elapsed.
        cap: SimDuration,
    },
    /// The task id is unknown.
    UnknownTask(
        /// The offending id.
        TaskId,
    ),
    /// The host crashed (injected fault) while the task was running.
    Crashed {
        /// The task that was being awaited.
        task: TaskId,
        /// When the crash took effect.
        at: SimTime,
    },
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Timeout { task, cap } => {
                write!(f, "{task} did not complete within {cap}")
            }
            HostError::UnknownTask(id) => write!(f, "unknown task {id}"),
            HostError::Crashed { task, at } => {
                write!(f, "host crashed at {at} while running {task}")
            }
        }
    }
}

impl std::error::Error for HostError {}

/// A simulated multicore host. See the [crate docs](crate).
///
/// ```
/// use gridvm_host::{HostConfig, HostSim, TaskSpec};
/// use gridvm_sched::SchedulerKind;
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::SimDuration;
/// use gridvm_simcore::units::CpuWork;
///
/// let mut host = HostSim::new(HostConfig::default(),
///                             SchedulerKind::TimeShare.build(),
///                             SimRng::seed_from(1));
/// // 0.8 Gcycles at 800 MHz = 1 s of dedicated CPU.
/// let tid = host.spawn(TaskSpec::compute(CpuWork::from_cycles(800_000_000)));
/// let outcome = host.run_until_complete(tid, SimDuration::from_secs(10))?;
/// assert!((outcome.wall_time().as_secs_f64() - 1.0).abs() < 0.02);
/// # Ok::<(), gridvm_host::sim::HostError>(())
/// ```
pub struct HostSim {
    config: HostConfig,
    scheduler: Box<dyn Scheduler>,
    rng: SimRng,
    now: SimTime,
    next_id: u64,
    tasks: BTreeMap<TaskId, RunningTask>,
    finished: BTreeMap<TaskId, TaskOutcome>,
    background: Option<BackgroundLoad>,
    ran_last: BTreeSet<TaskId>,
    busy: SimDuration,
    crash_at: Option<SimTime>,
    /// Scratch buffer handed to `Scheduler::select_into` each quantum
    /// so the hot loop does not allocate.
    picked_buf: Vec<TaskId>,
}

impl std::fmt::Debug for HostSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostSim")
            .field("now", &self.now)
            .field("scheduler", &self.scheduler.name())
            .field("live_tasks", &self.tasks.len())
            .field("finished", &self.finished.len())
            .finish()
    }
}

impl HostSim {
    /// Creates a host with the given scheduler and RNG stream.
    pub fn new(config: HostConfig, scheduler: Box<dyn Scheduler>, rng: SimRng) -> Self {
        HostSim {
            config: config.validated(),
            scheduler,
            rng,
            now: SimTime::ZERO,
            next_id: 0,
            tasks: BTreeMap::new(),
            finished: BTreeMap::new(),
            background: None,
            ran_last: BTreeSet::new(),
            busy: SimDuration::ZERO,
            crash_at: None,
            picked_buf: Vec::new(),
        }
    }

    /// Schedules a crash (fault injection): once simulated time
    /// reaches `at`, [`run_until_complete`](HostSim::run_until_complete)
    /// reports [`HostError::Crashed`] instead of making progress. A
    /// later call replaces the pending crash.
    pub fn schedule_crash(&mut self, at: SimTime) {
        self.crash_at = Some(at);
    }

    /// The pending crash time, if one is scheduled.
    pub fn crash_at(&self) -> Option<SimTime> {
        self.crash_at
    }

    /// Clears a pending crash (the host was repaired / rebooted into
    /// a fresh simulation segment).
    pub fn clear_crash(&mut self) {
        self.crash_at = None;
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Current simulated time on this host.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total core-busy time accumulated (for utilization assertions).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Submits a finite task; it becomes runnable immediately.
    pub fn spawn(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.scheduler.add_task(id, spec.params);
        let remaining = spec
            .work
            .at_rate(self.config.clock_hz)
            .mul_f64(spec.work_multiplier);
        self.tasks.insert(
            id,
            RunningTask {
                spec,
                remaining: Some(remaining),
                cpu_time: SimDuration::ZERO,
                overhead_time: SimDuration::ZERO,
                switches: 0,
                submitted_at: self.now,
            },
        );
        id
    }

    /// Installs trace-driven background load: a pool of `pool_size`
    /// infinite tasks whose instantaneous runnable count follows the
    /// trace. `per_task` configures how each load process is
    /// scheduled and what switch overhead it pays (load inside a VM
    /// pays VMM costs).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero or background load was already
    /// installed.
    pub fn set_background(
        &mut self,
        playback: TracePlayback,
        pool_size: usize,
        per_task: TaskSpec,
    ) {
        assert!(pool_size > 0, "background pool must not be empty");
        assert!(self.background.is_none(), "background already installed");
        let mut pool = Vec::with_capacity(pool_size);
        for _ in 0..pool_size {
            let id = TaskId(self.next_id);
            self.next_id += 1;
            self.scheduler.add_task(id, per_task.params);
            self.tasks.insert(
                id,
                RunningTask {
                    spec: per_task,
                    remaining: None,
                    cpu_time: SimDuration::ZERO,
                    overhead_time: SimDuration::ZERO,
                    switches: 0,
                    submitted_at: self.now,
                },
            );
            pool.push(id);
        }
        self.background = Some(BackgroundLoad::new(playback, pool));
    }

    /// The outcome of a finished task, if it has finished.
    pub fn outcome(&self, id: TaskId) -> Option<&TaskOutcome> {
        self.finished.get(&id)
    }

    /// The dedicated-host wall time of `spec` on an otherwise idle
    /// host: inflated work plus one scheduling switch. Used as the
    /// slowdown baseline.
    pub fn baseline(&self, spec: &TaskSpec) -> SimDuration {
        spec.work
            .at_rate(self.config.clock_hz)
            .mul_f64(spec.work_multiplier)
            + self.config.switch_cost
            + spec.switch_overhead
    }

    /// Runs one scheduling quantum.
    pub fn step(&mut self) {
        let quantum = self.config.quantum;
        let now = self.now;
        // Build the runnable set: unfinished finite tasks whose duty
        // mask is on, plus the background processes active right now.
        let mut runnable: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(id, t)| {
                let is_bg = self
                    .background
                    .as_ref()
                    .is_some_and(|bg| bg.pool().contains(id));
                if is_bg {
                    return false; // handled below
                }
                t.remaining.is_some() && t.spec.duty.is_none_or(|d| d.is_runnable(now))
            })
            .map(|(id, _)| *id)
            .collect();
        if let Some(bg) = &self.background {
            runnable.extend(bg.runnable_at(now));
        }
        runnable.sort_unstable();
        if runnable.is_empty() {
            self.now += quantum;
            self.ran_last.clear();
            return;
        }
        // Reuse the host-owned pick buffer: the scheduler writes into
        // it, so the steady-state quantum loop performs no allocation.
        let mut picked = std::mem::take(&mut self.picked_buf);
        self.scheduler.select_into(
            &runnable,
            self.config.cores,
            now,
            quantum,
            &mut self.rng,
            &mut picked,
        );
        debug_assert!(
            picked.len() <= self.config.cores,
            "scheduler oversubscribed"
        );
        let mut ran_now = BTreeSet::new();
        for &id in &picked {
            debug_assert!(runnable.contains(&id), "scheduler picked unrunnable {id}");
            let switched = !self.ran_last.contains(&id);
            let task = self.tasks.get_mut(&id).expect("picked task exists");
            let overhead = if switched {
                self.config.switch_cost + task.spec.switch_overhead
            } else {
                SimDuration::ZERO
            };
            if switched {
                task.switches += 1;
            }
            let avail = quantum.saturating_sub(overhead);
            match task.remaining {
                Some(rem) if rem <= avail => {
                    // Completes inside this quantum.
                    let used = overhead + rem;
                    task.cpu_time += rem;
                    task.overhead_time += overhead;
                    self.busy += used;
                    let outcome = TaskOutcome {
                        submitted_at: task.submitted_at,
                        completed_at: now + used,
                        cpu_time: task.cpu_time,
                        overhead_time: task.overhead_time,
                        switches: task.switches,
                    };
                    WORLD_SWITCHES.add(task.switches);
                    TASKS_COMPLETED.add(1);
                    self.scheduler.charge(id, used);
                    self.scheduler.remove_task(id);
                    self.tasks.remove(&id);
                    self.finished.insert(id, outcome);
                    // The core idles for the rest of the quantum; at
                    // 10 ms quanta this under-counts throughput by
                    // less than one quantum per completion.
                }
                Some(rem) => {
                    let task = self.tasks.get_mut(&id).expect("still present");
                    task.remaining = Some(rem - avail);
                    task.cpu_time += avail;
                    task.overhead_time += overhead;
                    self.busy += quantum;
                    self.scheduler.charge(id, quantum);
                    ran_now.insert(id);
                }
                None => {
                    // Infinite background task: consumes the quantum.
                    task.cpu_time += avail;
                    task.overhead_time += overhead;
                    self.busy += quantum;
                    self.scheduler.charge(id, quantum);
                    ran_now.insert(id);
                }
            }
        }
        self.picked_buf = picked;
        self.ran_last = ran_now;
        self.now += quantum;
    }

    /// Runs until `id` completes or `cap` of simulated time elapses
    /// from now.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTask`] if `id` was never spawned;
    /// [`HostError::Timeout`] if the cap elapses first;
    /// [`HostError::Crashed`] if a scheduled crash fires first.
    pub fn run_until_complete(
        &mut self,
        id: TaskId,
        cap: SimDuration,
    ) -> Result<TaskOutcome, HostError> {
        if !self.tasks.contains_key(&id) && !self.finished.contains_key(&id) {
            return Err(HostError::UnknownTask(id));
        }
        let deadline = self.now + cap;
        loop {
            if let Some(out) = self.finished.get(&id) {
                return Ok(*out);
            }
            match self.crash_at {
                Some(at) if self.now >= at => {
                    return Err(HostError::Crashed { task: id, at });
                }
                _ => {}
            }
            if self.now >= deadline {
                return Err(HostError::Timeout { task: id, cap });
            }
            self.step();
        }
    }

    /// Runs until every finite task has completed or `cap` elapses;
    /// returns the number still unfinished.
    pub fn run_all(&mut self, cap: SimDuration) -> usize {
        let deadline = self.now + cap;
        let bg: BTreeSet<TaskId> = self
            .background
            .as_ref()
            .map(|b| b.pool().iter().copied().collect())
            .unwrap_or_default();
        while self.now < deadline {
            let live = self.tasks.keys().filter(|id| !bg.contains(id)).count();
            if live == 0 {
                break;
            }
            self.step();
        }
        self.tasks.keys().filter(|id| !bg.contains(id)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_hostload::{LoadTrace, TracePlayback};
    use gridvm_sched::duty::DutyCycle;
    use gridvm_sched::{SchedulerKind, TaskParams};
    use gridvm_simcore::units::CpuWork;

    fn host(kind: SchedulerKind) -> HostSim {
        HostSim::new(HostConfig::default(), kind.build(), SimRng::seed_from(1))
    }

    /// 1 second of dedicated CPU at the default 800 MHz clock.
    fn one_sec_work() -> CpuWork {
        CpuWork::from_cycles(800_000_000)
    }

    #[test]
    fn lone_task_runs_at_native_speed() {
        let mut h = host(SchedulerKind::TimeShare);
        let id = h.spawn(TaskSpec::compute(one_sec_work()));
        let out = h
            .run_until_complete(id, SimDuration::from_secs(5))
            .expect("completes");
        let wall = out.wall_time().as_secs_f64();
        assert!((wall - 1.0).abs() < 0.02, "wall {wall}");
        assert_eq!(out.switches, 1, "scheduled once, never preempted");
    }

    #[test]
    fn two_tasks_one_core_each_take_twice_as_long() {
        let mut h = HostSim::new(
            HostConfig {
                cores: 1,
                ..HostConfig::default()
            },
            SchedulerKind::TimeShare.build(),
            SimRng::seed_from(2),
        );
        let a = h.spawn(TaskSpec::compute(one_sec_work()));
        let b = h.spawn(TaskSpec::compute(one_sec_work()));
        let oa = h.run_until_complete(a, SimDuration::from_secs(10)).unwrap();
        let ob = h.run_until_complete(b, SimDuration::from_secs(10)).unwrap();
        let last = oa.wall_time().max(ob.wall_time()).as_secs_f64();
        assert!((last - 2.0).abs() < 0.05, "last finisher at {last}");
    }

    #[test]
    fn two_tasks_two_cores_run_in_parallel() {
        let mut h = host(SchedulerKind::TimeShare);
        let a = h.spawn(TaskSpec::compute(one_sec_work()));
        let b = h.spawn(TaskSpec::compute(one_sec_work()));
        let oa = h.run_until_complete(a, SimDuration::from_secs(10)).unwrap();
        let ob = h.run_until_complete(b, SimDuration::from_secs(10)).unwrap();
        assert!(oa.wall_time().as_secs_f64() < 1.05);
        assert!(ob.wall_time().as_secs_f64() < 1.05);
    }

    #[test]
    fn work_multiplier_inflates_cpu_time() {
        let mut h = host(SchedulerKind::TimeShare);
        let id = h.spawn(TaskSpec::compute(one_sec_work()).with_work_multiplier(1.10));
        let out = h.run_until_complete(id, SimDuration::from_secs(5)).unwrap();
        let wall = out.wall_time().as_secs_f64();
        assert!((wall - 1.10).abs() < 0.02, "wall {wall}");
    }

    #[test]
    fn switch_overhead_accumulates_under_contention() {
        let mut h = HostSim::new(
            HostConfig {
                cores: 1,
                ..HostConfig::default()
            },
            SchedulerKind::TimeShare.build(),
            SimRng::seed_from(3),
        );
        let vm_like =
            TaskSpec::compute(one_sec_work()).with_switch_overhead(SimDuration::from_micros(500));
        let a = h.spawn(vm_like);
        let _b = h.spawn(TaskSpec::compute(one_sec_work()));
        let out = h.run_until_complete(a, SimDuration::from_secs(10)).unwrap();
        assert!(
            out.switches > 50,
            "expected many preemptions, got {}",
            out.switches
        );
        assert!(
            out.overhead_time > SimDuration::from_millis(25),
            "overhead {}",
            out.overhead_time
        );
    }

    #[test]
    fn background_load_slows_contending_task() {
        // Load 2.0 on a 2-core host with a test task: 3 runnable on 2
        // cores -> test task gets 2/3 of a CPU.
        let trace = LoadTrace::from_samples(SimDuration::from_secs(1), vec![2.0]).unwrap();
        let mut h = host(SchedulerKind::TimeShare);
        h.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let id = h.spawn(TaskSpec::compute(one_sec_work()));
        let out = h
            .run_until_complete(id, SimDuration::from_secs(20))
            .unwrap();
        let slow = out.slowdown_vs(h.baseline(&TaskSpec::compute(one_sec_work())));
        assert!((1.4..1.6).contains(&slow), "slowdown {slow}");
    }

    #[test]
    fn no_load_means_no_slowdown_on_spare_core() {
        let trace = LoadTrace::from_samples(SimDuration::from_secs(1), vec![1.0]).unwrap();
        let mut h = host(SchedulerKind::TimeShare);
        h.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let id = h.spawn(TaskSpec::compute(one_sec_work()));
        let out = h
            .run_until_complete(id, SimDuration::from_secs(20))
            .unwrap();
        let slow = out.slowdown_vs(h.baseline(&TaskSpec::compute(one_sec_work())));
        assert!(slow < 1.05, "one load proc + one test on two cores: {slow}");
    }

    #[test]
    fn duty_cycled_task_takes_proportionally_longer() {
        let mut h = host(SchedulerKind::TimeShare);
        let duty = DutyCycle::new(SimDuration::from_millis(100), 0.5);
        let id = h.spawn(TaskSpec::compute(one_sec_work()).with_duty(duty));
        let out = h
            .run_until_complete(id, SimDuration::from_secs(10))
            .unwrap();
        let wall = out.wall_time().as_secs_f64();
        assert!((1.9..2.2).contains(&wall), "50% duty wall {wall}");
    }

    #[test]
    fn timeout_is_reported() {
        let mut h = host(SchedulerKind::TimeShare);
        let id = h.spawn(TaskSpec::compute(one_sec_work()));
        let err = h
            .run_until_complete(id, SimDuration::from_millis(100))
            .unwrap_err();
        assert!(matches!(err, HostError::Timeout { .. }));
        assert!(err.to_string().contains("did not complete"));
    }

    #[test]
    fn scheduled_crash_interrupts_the_run() {
        let mut h = host(SchedulerKind::TimeShare);
        let id = h.spawn(TaskSpec::compute(one_sec_work()));
        h.schedule_crash(h.now() + SimDuration::from_millis(300));
        let err = h
            .run_until_complete(id, SimDuration::from_secs(5))
            .unwrap_err();
        match err {
            HostError::Crashed { task, at } => {
                assert_eq!(task, id);
                assert!(at <= h.now(), "crash observed once time reached it");
                assert!(h.now().as_secs_f64() < 0.5, "stopped promptly");
            }
            other => panic!("expected crash, got {other:?}"),
        }
        assert!(err.to_string().contains("crashed"));
        // Repair: a fresh host segment resumes service.
        h.clear_crash();
        assert_eq!(h.crash_at(), None);
        assert!(h.run_until_complete(id, SimDuration::from_secs(5)).is_ok());
    }

    #[test]
    fn unknown_task_is_reported() {
        let mut h = host(SchedulerKind::TimeShare);
        let err = h
            .run_until_complete(TaskId(999), SimDuration::from_secs(1))
            .unwrap_err();
        assert_eq!(err, HostError::UnknownTask(TaskId(999)));
    }

    #[test]
    fn run_all_finishes_everything() {
        let mut h = host(SchedulerKind::Stride);
        for _ in 0..5 {
            h.spawn(TaskSpec::compute(one_sec_work()));
        }
        let left = h.run_all(SimDuration::from_secs(60));
        assert_eq!(left, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut h = host(SchedulerKind::Lottery);
            let trace =
                LoadTrace::from_samples(SimDuration::from_secs(1), vec![1.0, 0.5, 2.0]).unwrap();
            h.set_background(
                TracePlayback::new(trace),
                4,
                TaskSpec::compute(CpuWork::ZERO),
            );
            let id = h.spawn(TaskSpec::compute(one_sec_work()));
            h.run_until_complete(id, SimDuration::from_secs(30))
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn edf_reservation_bounds_vm_impact_on_owner() {
        // Owner reserves 50% via reservation; a greedy background VM
        // must not push the owner task below its slice.
        let mut h = host(SchedulerKind::Edf);
        let owner = h.spawn(TaskSpec::compute(one_sec_work()).with_params(
            TaskParams::with_reservation(
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
            ),
        ));
        // Greedy best-effort VM on the other... same single core:
        let trace = LoadTrace::from_samples(SimDuration::from_secs(1), vec![4.0]).unwrap();
        let mut h1 = HostSim::new(
            HostConfig {
                cores: 1,
                ..HostConfig::default()
            },
            SchedulerKind::Edf.build(),
            SimRng::seed_from(4),
        );
        let owner1 = h1.spawn(TaskSpec::compute(one_sec_work()).with_params(
            TaskParams::with_reservation(
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
            ),
        ));
        h1.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let o1 = h1
            .run_until_complete(owner1, SimDuration::from_secs(30))
            .unwrap();
        // With a guaranteed 50% slice, 1s of work finishes in ~2s even
        // under a 4-deep background queue.
        let wall = o1.wall_time().as_secs_f64();
        assert!((1.9..2.3).contains(&wall), "reserved owner wall {wall}");
        // And on the 2-core host without contention it finishes ~1s.
        let o = h
            .run_until_complete(owner, SimDuration::from_secs(30))
            .unwrap();
        assert!(o.wall_time().as_secs_f64() < 2.1);
    }
}
