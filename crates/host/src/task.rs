//! Task specifications and outcomes.

use gridvm_sched::duty::DutyCycle;
use gridvm_sched::TaskParams;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::CpuWork;

/// Specification of one finite task submitted to a [`crate::HostSim`].
///
/// A plain process has `work_multiplier == 1.0` and zero
/// `switch_overhead`; the VMM layer models a virtualized task by
/// raising both (direct execution costs ≈ nothing, but world switches
/// and trapped instructions cost extra time whenever the task is
/// rescheduled).
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// Total useful CPU work the task must retire.
    pub work: CpuWork,
    /// Scheduler parameters (weight / reservation).
    pub params: TaskParams,
    /// Multiplier (>= 1) on the time needed to retire work — the
    /// virtualization slowdown of user-mode code.
    pub work_multiplier: f64,
    /// Extra CPU time burned every time the task is switched onto a
    /// core after not running in the previous quantum (context-switch
    /// plus, for VMs, world-switch and trap-and-emulate costs).
    pub switch_overhead: SimDuration,
    /// Optional SIGSTOP/SIGCONT duty-cycle mask.
    pub duty: Option<DutyCycle>,
}

impl TaskSpec {
    /// A plain compute task of the given work with default scheduler
    /// parameters.
    pub fn compute(work: CpuWork) -> Self {
        TaskSpec {
            work,
            params: TaskParams::default(),
            work_multiplier: 1.0,
            switch_overhead: SimDuration::ZERO,
            duty: None,
        }
    }

    /// Sets the scheduler parameters.
    pub fn with_params(mut self, params: TaskParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the work multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `m < 1.0` (virtualization never speeds work up).
    pub fn with_work_multiplier(mut self, m: f64) -> Self {
        assert!(m >= 1.0, "work multiplier {m} < 1");
        self.work_multiplier = m;
        self
    }

    /// Sets the per-switch overhead.
    pub fn with_switch_overhead(mut self, d: SimDuration) -> Self {
        self.switch_overhead = d;
        self
    }

    /// Applies a duty-cycle mask.
    pub fn with_duty(mut self, duty: DutyCycle) -> Self {
        self.duty = Some(duty);
        self
    }
}

/// What happened to one finite task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskOutcome {
    /// When the task was submitted.
    pub submitted_at: SimTime,
    /// When it completed.
    pub completed_at: SimTime,
    /// CPU time spent retiring useful work (inflated by the work
    /// multiplier — this is what `time(1)` would report as user time).
    pub cpu_time: SimDuration,
    /// CPU time burned in switch overheads (the system-time analogue).
    pub overhead_time: SimDuration,
    /// Number of times the task was switched onto a core.
    pub switches: u64,
}

impl TaskOutcome {
    /// Wall-clock duration from submission to completion.
    pub fn wall_time(&self) -> SimDuration {
        self.completed_at.duration_since(self.submitted_at)
    }

    /// Wall time divided by a baseline — the paper's *slowdown*
    /// metric.
    ///
    /// # Panics
    ///
    /// Panics on a zero baseline.
    pub fn slowdown_vs(&self, baseline: SimDuration) -> f64 {
        assert!(!baseline.is_zero(), "slowdown_vs: zero baseline");
        self.wall_time().as_secs_f64() / baseline.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let spec = TaskSpec::compute(CpuWork::from_cycles(1000))
            .with_work_multiplier(1.05)
            .with_switch_overhead(SimDuration::from_micros(50))
            .with_params(TaskParams::with_weight(7));
        assert_eq!(spec.work.as_cycles(), 1000);
        assert_eq!(spec.params.weight, 7);
        assert!((spec.work_multiplier - 1.05).abs() < 1e-12);
        assert_eq!(spec.switch_overhead, SimDuration::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "< 1")]
    fn speedup_multiplier_rejected() {
        let _ = TaskSpec::compute(CpuWork::from_cycles(1)).with_work_multiplier(0.9);
    }

    #[test]
    fn outcome_derives_wall_and_slowdown() {
        let o = TaskOutcome {
            submitted_at: SimTime::from_secs(10),
            completed_at: SimTime::from_secs(16),
            cpu_time: SimDuration::from_secs(3),
            overhead_time: SimDuration::from_millis(10),
            switches: 4,
        };
        assert_eq!(o.wall_time(), SimDuration::from_secs(6));
        assert!((o.slowdown_vs(SimDuration::from_secs(3)) - 2.0).abs() < 1e-12);
    }
}
