//! Background load as schedulable tasks.
//!
//! Dinda's playback tool spins up processes so that the instantaneous
//! number of runnable background processes tracks the recorded load
//! average. We model the same thing: a [`BackgroundLoad`] owns a pool
//! of *infinite* tasks; at any instant the first `ceil(load(t))` of
//! them are runnable (the last one duty-modulated by the fractional
//! part so that e.g. load 0.3 presents one process runnable 30% of
//! the time).

use gridvm_hostload::TracePlayback;
use gridvm_sched::TaskId;
use gridvm_simcore::time::SimTime;

/// Trace-driven background load bound to a pool of host task ids.
#[derive(Clone, Debug)]
pub struct BackgroundLoad {
    playback: TracePlayback,
    pool: Vec<TaskId>,
}

impl BackgroundLoad {
    /// Binds a playback to a pool of (already registered) task ids.
    /// The pool size caps the instantaneous process count.
    ///
    /// # Panics
    ///
    /// Panics on an empty pool.
    pub fn new(playback: TracePlayback, pool: Vec<TaskId>) -> Self {
        assert!(!pool.is_empty(), "background pool must not be empty");
        BackgroundLoad { playback, pool }
    }

    /// The task-id pool.
    pub fn pool(&self) -> &[TaskId] {
        &self.pool
    }

    /// The playback driving this load.
    pub fn playback(&self) -> &TracePlayback {
        &self.playback
    }

    /// The ids runnable at `now`: the first `n` pool members where
    /// `n` derives from the instantaneous load, with the fractional
    /// process made runnable in proportion to the fraction
    /// (deterministically, by comparing against the position within
    /// the trace sample — no randomness, so replications are exact).
    pub fn runnable_at(&self, now: SimTime) -> Vec<TaskId> {
        let load = self.playback.load_at(now);
        if load <= 0.0 {
            return Vec::new();
        }
        let whole = load.floor() as usize;
        let frac = load - load.floor();
        let mut n = whole.min(self.pool.len());
        if frac > 0.0 && n < self.pool.len() {
            // Duty-modulate the fractional process inside each trace
            // sample: runnable during the first `frac` of the sample.
            let interval = self.playback.trace().interval().as_nanos();
            let pos = now.as_nanos() % interval;
            if (pos as f64) < interval as f64 * frac {
                n += 1;
            }
        }
        self.pool[..n].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_hostload::LoadTrace;
    use gridvm_simcore::time::SimDuration;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn ids(n: u64) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    #[test]
    fn zero_load_runs_nothing() {
        let pb = TracePlayback::new(LoadTrace::silent(secs(1), 3));
        let bg = BackgroundLoad::new(pb, ids(4));
        assert!(bg.runnable_at(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn integer_load_runs_that_many() {
        let trace = LoadTrace::from_samples(secs(1), vec![2.0]).unwrap();
        let bg = BackgroundLoad::new(TracePlayback::new(trace), ids(4));
        assert_eq!(bg.runnable_at(SimTime::ZERO).len(), 2);
    }

    #[test]
    fn fractional_load_duty_cycles_last_process() {
        let trace = LoadTrace::from_samples(secs(1), vec![0.5]).unwrap();
        let bg = BackgroundLoad::new(TracePlayback::new(trace), ids(2));
        // First 0.5s of each sample: 1 runnable; second half: 0.
        assert_eq!(bg.runnable_at(SimTime::ZERO).len(), 1);
        assert_eq!(
            bg.runnable_at(SimTime::ZERO + SimDuration::from_millis(600))
                .len(),
            0
        );
        assert_eq!(bg.runnable_at(SimTime::from_secs(1)).len(), 1);
    }

    #[test]
    fn load_beyond_pool_is_capped() {
        let trace = LoadTrace::from_samples(secs(1), vec![10.0]).unwrap();
        let bg = BackgroundLoad::new(TracePlayback::new(trace), ids(3));
        assert_eq!(bg.runnable_at(SimTime::ZERO).len(), 3);
    }

    #[test]
    fn mixed_load_tracks_trace() {
        let trace = LoadTrace::from_samples(secs(1), vec![0.0, 1.0, 2.5]).unwrap();
        let bg = BackgroundLoad::new(TracePlayback::new(trace), ids(4));
        assert_eq!(bg.runnable_at(SimTime::from_secs(0)).len(), 0);
        assert_eq!(bg.runnable_at(SimTime::from_secs(1)).len(), 1);
        assert_eq!(
            bg.runnable_at(SimTime::from_secs(2)).len(),
            3,
            "2.5 early in sample"
        );
        assert_eq!(
            bg.runnable_at(SimTime::from_secs(2) + SimDuration::from_millis(700))
                .len(),
            2,
            "fraction expired"
        );
    }
}
