//! The six-step VM grid session life cycle of Section 4 / Figure 3.
//!
//! 1. query the information service for a **VM future** able to host
//!    the session;
//! 2. query for an **image server** holding a suitable base OS;
//! 3. establish the **image data session** between the physical
//!    server and the image server;
//! 4. negotiate **VM startup** through GRAM (reboot or restore) and
//!    put the VM on the network (DHCP);
//! 5. establish **guest data sessions** to the user's data server;
//! 6. **execute the application** in the VM and hand a session
//!    handle back.

use gridvm_gridmw::info::{InfoService, Query, ResourceId, ResourceKind};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_storage::imageserver::ImageServer;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::exec::{run_app, ExecMode, GuestRunReport};
use gridvm_vnet::addr::{Ipv4Addr, MacAddr};
use gridvm_vnet::dhcp::DhcpServer;
use gridvm_workloads::AppProfile;

use crate::nfsdisk::NfsGuestStorage;
use crate::server::ComputeServer;
use crate::startup::{run_startup, StartupBreakdown, StartupConfig};

/// What a user (or front-end middleware acting for them) asks of the
/// grid.
#[derive(Clone, Debug)]
pub struct SessionRequest {
    /// Grid identity of the user.
    pub user: String,
    /// Required base image name.
    pub image: String,
    /// Minimum physical cores.
    pub min_cores: usize,
    /// How to instantiate the VM.
    pub startup: StartupConfig,
    /// The application to run (step 6).
    pub app: AppProfile,
}

/// Everything a session touches — the deployment of Figure 3.
pub struct GridWorld {
    /// The information service (MDS/URGIS).
    pub info: InfoService,
    /// The virtualized compute server `V`.
    pub compute: ComputeServer,
    /// The image server `I`.
    pub image_server: ImageServer,
    /// The user's data server `D`.
    pub data_server: Option<NfsServer>,
    /// Address allocation on the compute site's network.
    pub dhcp: DhcpServer,
}

/// Errors establishing a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No VM future matched the request.
    NoMatchingFuture,
    /// No image server advertises the image.
    NoImageServer(
        /// Requested image.
        String,
    ),
    /// DHCP could not address the VM.
    NoAddress,
    /// The user's data path was missing on the data server.
    DataPathMissing(
        /// The path.
        String,
    ),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoMatchingFuture => write!(f, "no VM future satisfies the request"),
            SessionError::NoImageServer(i) => write!(f, "no image server holds {i:?}"),
            SessionError::NoAddress => write!(f, "could not obtain an IP address"),
            SessionError::DataPathMissing(p) => write!(f, "data path {p:?} missing"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The established session: timings per step and the running guest's
/// identity.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Step 1: future discovery latency.
    pub discover_future: SimDuration,
    /// Step 2: image discovery latency.
    pub discover_image: SimDuration,
    /// Step 3: image data-session setup.
    pub image_session_setup: SimDuration,
    /// Step 4: VM startup breakdown (includes `globusrun` framing).
    pub startup: StartupBreakdown,
    /// Step 4: the VM's leased address.
    pub address: Ipv4Addr,
    /// Step 5: guest data-session setup.
    pub data_session_setup: SimDuration,
    /// Step 6: the application run.
    pub app: GuestRunReport,
    /// End-to-end session establishment + execution time.
    pub total: SimDuration,
    /// The resource id the running VM registered under.
    pub vm_record: ResourceId,
}

/// One query round-trip to the information service (directory
/// lookup + response).
const INFO_QUERY_COST: SimDuration = SimDuration::from_millis(120);

/// Mount-handshake RPCs for a new VFS session.
const MOUNT_SETUP_RPCS: u64 = 3;

/// A grid session driver over a [`GridWorld`].
pub struct GridSession;

impl GridSession {
    /// Establishes a session end to end, per the six steps.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when discovery, addressing or the data path
    /// fails; the failure leaves the world consistent (no VM
    /// registered).
    pub fn establish(
        world: &mut GridWorld,
        req: &SessionRequest,
        rng: &mut SimRng,
    ) -> Result<SessionReport, SessionError> {
        let t0 = SimTime::ZERO;
        let mut t = t0;

        // Step 1: find a VM future able to host us.
        t += INFO_QUERY_COST;
        let future = world
            .info
            .query_at(t, &Query::CanInstantiate(req.image.clone()), 4, rng)
            .first()
            .map(|r| r.id)
            .ok_or(SessionError::NoMatchingFuture)?;
        let discover_future = t.duration_since(t0);

        // Step 2: find an image server with the base OS.
        let t2_start = t;
        t += INFO_QUERY_COST;
        let image_exists = world
            .info
            .query_at(t, &Query::Kind("image-server"), 8, rng)
            .iter()
            .any(|r| {
                matches!(&r.kind, ResourceKind::ImageServer { images }
                    if images.contains(&req.image))
            });
        if !image_exists || world.image_server.lookup(&req.image).is_err() {
            return Err(SessionError::NoImageServer(req.image.clone()));
        }
        let discover_image = t.duration_since(t2_start);

        // Step 3: image data session (mount handshake to server I).
        let t3_start = t;
        t += Transport::lan().round_trip_estimate() * MOUNT_SETUP_RPCS;
        let image_session_setup = t.duration_since(t3_start);

        // Step 4: VM startup via GRAM, then an address via DHCP.
        let startup = run_startup(&mut world.compute, &req.startup, rng);
        t += startup.total;
        // The running VM registers with the information service; its
        // MAC derives from the unique registration id.
        let vm_record = world.info.register(
            t,
            "compute-site",
            ResourceKind::VmInstance {
                host: future,
                guest_os: req.startup.image.os.clone(),
                memory_mib: req.startup.vm.memory.as_u64() / (1024 * 1024),
            },
        );
        let mac = MacAddr::local(0xF0F0_0000 ^ vm_record.0);
        let lease = match world.dhcp.acquire(t, mac) {
            Ok(l) => l,
            Err(_) => {
                world.info.deregister(vm_record);
                return Err(SessionError::NoAddress);
            }
        };

        // Step 5: guest data session to the user's data server.
        let t5_start = t;
        let data_path = format!("/home/{}/input.dat", req.user);
        let mut data_mount = match world.data_server.take() {
            Some(server) => {
                let fh = server
                    .fs()
                    .resolve(&data_path)
                    .map_err(|_| SessionError::DataPathMissing(data_path.clone()))?;
                let mount = Mount::new(
                    Transport::wan(),
                    server,
                    Some(VfsProxy::new(ProxyConfig::default())),
                );
                Some((mount, fh))
            }
            None => None,
        };
        t += Transport::wan().round_trip_estimate() * MOUNT_SETUP_RPCS;
        let data_session_setup = t.duration_since(t5_start);

        // Step 6: run the application in the VM against the data
        // session (or the local virtual disk when no data server is
        // deployed).
        let app = match &mut data_mount {
            Some((mount, fh)) => {
                // Move the mount into a guest-storage adapter.
                let owned = std::mem::replace(
                    mount,
                    Mount::new(
                        Transport::local(),
                        NfsServer::new(gridvm_storage::disk::DiskModel::new(
                            gridvm_storage::disk::DiskProfile::ide_2003(),
                        )),
                        None,
                    ),
                );
                let mut storage = NfsGuestStorage::new(
                    owned,
                    *fh,
                    world.compute.cost_model.pvfs_client_per_block,
                    "PVFS",
                );
                run_app(
                    &req.app,
                    ExecMode::Virtualized,
                    &world.compute.cost_model,
                    &mut storage,
                    world.compute.host_config.clock_hz,
                    t,
                    rng,
                )
            }
            None => {
                let cost_model = world.compute.cost_model;
                let clock = world.compute.host_config.clock_hz;
                let mut storage = gridvm_vmm::exec::LocalDiskStorage::new(&mut world.compute.disk);
                run_app(
                    &req.app,
                    ExecMode::Virtualized,
                    &cost_model,
                    &mut storage,
                    clock,
                    t,
                    rng,
                )
            }
        };
        t += app.wall;

        Ok(SessionReport {
            discover_future,
            discover_image,
            image_session_setup,
            startup,
            address: lease.addr,
            data_session_setup,
            app,
            total: t.duration_since(t0),
            vm_record,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{paper_data_server, paper_image_server};
    use crate::startup::{StartupMode, StateAccess};
    use gridvm_simcore::units::{ByteSize, CpuWork};
    use gridvm_vmm::machine::DiskMode;
    use gridvm_vnet::addr::Subnet;

    fn world() -> GridWorld {
        let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
        let host = info.register(
            SimTime::ZERO,
            "compute-site",
            ResourceKind::PhysicalHost {
                cores: 2,
                clock_hz: 800e6,
                memory_mib: 1024,
            },
        );
        info.register(
            SimTime::ZERO,
            "compute-site",
            ResourceKind::VmFuture {
                host,
                images: vec!["rh72".into()],
                available_slots: 4,
            },
        );
        info.register(
            SimTime::ZERO,
            "image-site",
            ResourceKind::ImageServer {
                images: vec!["rh72".into()],
            },
        );
        GridWorld {
            info,
            compute: ComputeServer::paper_node("V"),
            image_server: paper_image_server("rh72"),
            data_server: Some(paper_data_server("userX", ByteSize::from_mib(8))),
            dhcp: DhcpServer::new(
                Subnet::new(Ipv4Addr::from_octets(10, 8, 0, 0), 24),
                SimDuration::from_secs(3600),
            ),
        }
    }

    fn request() -> SessionRequest {
        SessionRequest {
            user: "userX".into(),
            image: "rh72".into(),
            min_cores: 2,
            startup: StartupConfig::table2(
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
            ),
            app: AppProfile::new("session-app", CpuWork::from_cycles(800_000_000))
                .with_syscalls(5_000)
                .with_reads(
                    ByteSize::from_mib(4),
                    gridvm_workloads::IoPattern::Sequential,
                ),
        }
    }

    #[test]
    fn full_session_establishes_and_runs() {
        let mut w = world();
        let mut rng = SimRng::seed_from(1);
        let report = GridSession::establish(&mut w, &request(), &mut rng).expect("session");
        // Startup dominated by the restore (~12 s), app ~1 s.
        let total = report.total.as_secs_f64();
        assert!((10.0..40.0).contains(&total), "session total {total}");
        assert!(report.startup.total > SimDuration::from_secs(5));
        assert!(report.app.wall > SimDuration::from_millis(500));
        // The VM got an address on the compute site's subnet.
        assert_eq!(report.address.octets()[0], 10);
        // And registered with the information service.
        assert!(w.info.get(report.vm_record).is_some());
    }

    #[test]
    fn missing_future_fails_cleanly() {
        let mut w = world();
        let mut req = request();
        req.image = "win2k".into();
        let mut rng = SimRng::seed_from(2);
        let before = w.info.len();
        let err = GridSession::establish(&mut w, &req, &mut rng).unwrap_err();
        assert_eq!(err, SessionError::NoMatchingFuture);
        assert_eq!(w.info.len(), before, "no VM registered on failure");
    }

    #[test]
    fn missing_user_data_fails_cleanly() {
        let mut w = world();
        let mut req = request();
        req.user = "ghost".into();
        let mut rng = SimRng::seed_from(3);
        let err = GridSession::establish(&mut w, &req, &mut rng).unwrap_err();
        assert!(matches!(err, SessionError::DataPathMissing(_)));
    }

    #[test]
    fn session_without_data_server_uses_local_disk() {
        let mut w = world();
        w.data_server = None;
        let mut rng = SimRng::seed_from(4);
        let report = GridSession::establish(&mut w, &request(), &mut rng).expect("session");
        assert!(report.app.wall > SimDuration::ZERO);
    }

    #[test]
    fn two_sessions_get_distinct_addresses() {
        let mut w = world();
        let mut rng = SimRng::seed_from(5);
        let r1 = GridSession::establish(&mut w, &request(), &mut rng).unwrap();
        w.compute.fresh_sample();
        w.data_server = Some(paper_data_server("userX", ByteSize::from_mib(8)));
        let r2 = GridSession::establish(&mut w, &request(), &mut rng).unwrap();
        assert_ne!(r1.address, r2.address);
    }

    #[test]
    fn error_display() {
        assert!(SessionError::NoMatchingFuture
            .to_string()
            .contains("future"));
        assert!(SessionError::NoImageServer("x".into())
            .to_string()
            .contains('x'));
    }
}
