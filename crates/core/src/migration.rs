//! Whole-environment migration (Section 3.1): "a VM-based grid
//! deployment can support the seamless migration of entire computing
//! environments to different virtualized compute servers while
//! keeping remote data connections active."
//!
//! The 2003-era mechanism is suspend-and-copy: write the suspend
//! image out, move it (plus the copy-on-write disk diff) to the
//! destination, resume there, and re-establish the virtual-file-
//! system sessions. The guest is down for the whole sequence — the
//! report separates the phases so the ablation bench can show where
//! the time goes.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::disk::AccessKind;
use gridvm_vfs::mount::Transport;
use gridvm_vmm::machine::{Vm, VmError};
use gridvm_vmm::snapshot::SuspendImage;

use crate::server::ComputeServer;

/// Timing of one migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    /// Suspend: guest paused, memory written to the source disk.
    pub suspend: SimDuration,
    /// State transfer across the wire (memory image + disk diff).
    pub transfer: SimDuration,
    /// Resume: monitor setup + memory read at the destination.
    pub resume: SimDuration,
    /// Virtual-file-system session re-establishment.
    pub reconnect: SimDuration,
    /// Bytes moved.
    pub bytes_moved: ByteSize,
}

impl MigrationReport {
    /// Total guest downtime (suspend through reconnect).
    pub fn downtime(&self) -> SimDuration {
        self.suspend + self.transfer + self.resume + self.reconnect
    }
}

/// Migrates `vm` from `src` to `dst` over `wire`, starting at `now`.
///
/// The VM must be running; on success it is running again (at the
/// destination) and the report carries the phase timings.
///
/// # Errors
///
/// [`VmError`] when the VM is not in a migratable state.
pub fn migrate(
    vm: &mut Vm,
    src: &mut ComputeServer,
    dst: &mut ComputeServer,
    wire: &mut Pipe,
    now: SimTime,
    rng: &mut SimRng,
) -> Result<MigrationReport, VmError> {
    vm.begin_migration(now)?;
    let snapshot = SuspendImage::for_config(vm.config());
    let block = src.disk.profile().block_size;
    let mem_blocks = snapshot.blocks(block);

    // Phase 1: suspend — write the memory image to the source disk.
    let base = BlockAddr(1 << 33);
    let write = src
        .disk
        .access_run(now, base, mem_blocks, AccessKind::Write);
    let suspend = write
        .finish
        .duration_since(now)
        .mul_f64(1.0 + rng.normal(0.0, 0.03).abs());
    let mut t = now + suspend;

    // Phase 2: transfer memory + diff over the wire. Reads at the
    // source are warm (just written); the wire is the bottleneck.
    let diff_bytes = vm.disk().map(|d| d.diff_size()).unwrap_or(ByteSize::ZERO);
    let payload = snapshot.total() + diff_bytes;
    let sent = wire.send(t, payload);
    let dst_write = dst.disk.access_run(
        t,
        BlockAddr(1 << 33),
        payload.blocks(block),
        AccessKind::Write,
    );
    let arrive = sent.finish.max(dst_write.finish);
    let transfer = arrive.duration_since(t);
    t = arrive;

    // Phase 3: resume — monitor setup plus memory re-read (warm at
    // the destination: it was just written there).
    let setup = dst.cost_model.vm_restore_setup;
    let read = dst
        .disk
        .access_run(t + setup, BlockAddr(1 << 33), mem_blocks, AccessKind::Read);
    let resume =
        (setup + read.finish.duration_since(t + setup)).mul_f64(1.0 + rng.normal(0.0, 0.05).abs());
    t += resume;

    // Phase 4: re-establish VFS sessions ("keeping remote data
    // connections active" — the mounts re-handshake, nothing is
    // re-fetched).
    let reconnect = Transport::wan().round_trip_estimate() * 3;
    t += reconnect;

    vm.mark_running(t)?;
    Ok(MigrationReport {
        suspend,
        transfer,
        resume,
        reconnect,
        bytes_moved: payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::units::Bandwidth;
    use gridvm_storage::cow::CowOverlay;
    use gridvm_storage::image::VmImage;
    use gridvm_vmm::machine::{VmConfig, VmState};

    fn running_vm() -> Vm {
        let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
        vm.attach_disk(CowOverlay::new(VmImage::redhat_guest("rh72").base_store()));
        vm.begin_staging(SimTime::ZERO).unwrap();
        vm.begin_boot(SimTime::from_secs(1)).unwrap();
        vm.mark_running(SimTime::from_secs(2)).unwrap();
        vm
    }

    fn lan_pipe() -> Pipe {
        Pipe::new(
            SimDuration::from_micros(300),
            Bandwidth::from_mbit_per_sec(100.0),
        )
    }

    #[test]
    fn migration_moves_a_running_vm() {
        let mut vm = running_vm();
        let mut src = ComputeServer::paper_node("src");
        let mut dst = ComputeServer::paper_node("dst");
        let mut wire = lan_pipe();
        let mut rng = SimRng::seed_from(1);
        let r = migrate(
            &mut vm,
            &mut src,
            &mut dst,
            &mut wire,
            SimTime::from_secs(10),
            &mut rng,
        )
        .expect("running VM migrates");
        assert_eq!(vm.state(), VmState::Running);
        // 128 MiB over 100 Mbit/s ≈ 10.7 s wire + ~8 s suspend write.
        let down = r.downtime().as_secs_f64();
        assert!((15.0..35.0).contains(&down), "downtime {down}s");
        assert!(r.bytes_moved >= ByteSize::from_mib(128));
    }

    #[test]
    fn dirty_disk_blocks_travel_with_the_vm() {
        let mut vm = running_vm();
        use gridvm_storage::block::BlockStore;
        let dirty_blocks = 20_000u64; // ~78 MiB of diff
        {
            let disk = vm.disk_mut().unwrap();
            for i in 0..dirty_blocks {
                disk.write(BlockAddr(i), bytes::Bytes::from(vec![1u8; 4096]))
                    .unwrap();
            }
        }
        let mut src = ComputeServer::paper_node("src");
        let mut dst = ComputeServer::paper_node("dst");
        let mut wire = lan_pipe();
        let mut rng = SimRng::seed_from(2);
        let with_diff = migrate(
            &mut vm,
            &mut src,
            &mut dst,
            &mut wire,
            SimTime::from_secs(10),
            &mut rng,
        )
        .unwrap();
        // A clean VM moves less.
        let mut clean = running_vm();
        let mut src2 = ComputeServer::paper_node("src2");
        let mut dst2 = ComputeServer::paper_node("dst2");
        let mut wire2 = lan_pipe();
        let clean_report = migrate(
            &mut clean,
            &mut src2,
            &mut dst2,
            &mut wire2,
            SimTime::from_secs(10),
            &mut SimRng::seed_from(2),
        )
        .unwrap();
        assert!(with_diff.bytes_moved > clean_report.bytes_moved);
        assert!(with_diff.transfer > clean_report.transfer);
    }

    #[test]
    fn fast_network_shrinks_downtime() {
        let run = |mbps: f64| {
            let mut vm = running_vm();
            let mut src = ComputeServer::paper_node("s");
            let mut dst = ComputeServer::paper_node("d");
            let mut wire = Pipe::new(
                SimDuration::from_micros(300),
                Bandwidth::from_mbit_per_sec(mbps),
            );
            migrate(
                &mut vm,
                &mut src,
                &mut dst,
                &mut wire,
                SimTime::from_secs(1),
                &mut SimRng::seed_from(3),
            )
            .unwrap()
            .downtime()
        };
        assert!(run(1000.0) < run(10.0));
    }

    #[test]
    fn non_running_vm_cannot_migrate() {
        let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
        let mut src = ComputeServer::paper_node("s");
        let mut dst = ComputeServer::paper_node("d");
        let mut wire = lan_pipe();
        let err = migrate(
            &mut vm,
            &mut src,
            &mut dst,
            &mut wire,
            SimTime::ZERO,
            &mut SimRng::seed_from(4),
        )
        .unwrap_err();
        assert!(err.to_string().contains("migrate"));
    }
}
