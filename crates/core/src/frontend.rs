//! The middleware front-end and service-provider multiplexing of
//! Figure 3.
//!
//! The figure's second scenario: *"virtual machines V1, V2 are
//! instantiated on P2 on behalf of a service provider S, and are
//! multiplexed across users A, B, C and applications provided by S.
//! The logical user account abstraction decouples access to physical
//! resources (middleware) from access to virtual resources
//! (end-users and services)."*
//!
//! A [`ServiceProvider`] owns a pool of running service VMs and a
//! pool of logical accounts; user sessions attach to the
//! least-loaded VM under a logical account lease, stay sticky while
//! active, and release both on detach.

use std::collections::BTreeMap;

use gridvm_gridmw::accounts::{AccountError, AccountPool, LocalAccount};
use gridvm_simcore::time::SimTime;

/// One service VM in the provider's pool.
#[derive(Clone, Debug)]
struct ProviderVm {
    name: String,
    sessions: usize,
}

/// A user's attachment to the provider.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attachment {
    /// The VM serving this user.
    pub vm: String,
    /// The leased logical account inside the provider's domain.
    pub account: LocalAccount,
}

/// Errors attaching users.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProviderError {
    /// Every VM is at its session capacity.
    NoCapacity,
    /// The logical-account pool is exhausted.
    Accounts(AccountError),
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderError::NoCapacity => write!(f, "all service VMs are full"),
            ProviderError::Accounts(e) => write!(f, "logical accounts: {e}"),
        }
    }
}

impl std::error::Error for ProviderError {}

impl From<AccountError> for ProviderError {
    fn from(e: AccountError) -> Self {
        ProviderError::Accounts(e)
    }
}

/// A service provider multiplexing users onto a pool of service VMs.
///
/// ```
/// use gridvm_core::frontend::ServiceProvider;
/// use gridvm_gridmw::accounts::AccountPool;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let accounts = AccountPool::new(&["svc01", "svc02", "svc03"],
///                                 SimDuration::from_secs(3600));
/// let mut provider = ServiceProvider::new("S", &["V1", "V2"], 2, accounts);
/// let a = provider.attach(SimTime::ZERO, "/CN=A")?;
/// let b = provider.attach(SimTime::ZERO, "/CN=B")?;
/// assert_ne!(a.vm, b.vm, "users spread across the pool");
/// # Ok::<(), gridvm_core::frontend::ProviderError>(())
/// ```
#[derive(Debug)]
pub struct ServiceProvider {
    name: String,
    vms: Vec<ProviderVm>,
    per_vm_capacity: usize,
    accounts: AccountPool,
    assignments: BTreeMap<String, (usize, LocalAccount)>,
}

impl ServiceProvider {
    /// Creates a provider with the named service VMs, each accepting
    /// at most `per_vm_capacity` concurrent user sessions, and a
    /// pool of logical accounts.
    ///
    /// # Panics
    ///
    /// Panics on an empty VM list or zero capacity.
    pub fn new(
        name: impl Into<String>,
        vm_names: &[&str],
        per_vm_capacity: usize,
        accounts: AccountPool,
    ) -> Self {
        assert!(!vm_names.is_empty(), "provider needs at least one VM");
        assert!(per_vm_capacity > 0, "zero per-VM capacity");
        ServiceProvider {
            name: name.into(),
            vms: vm_names
                .iter()
                .map(|n| ProviderVm {
                    name: (*n).to_owned(),
                    sessions: 0,
                })
                .collect(),
            per_vm_capacity,
            accounts,
            assignments: BTreeMap::new(),
        }
    }

    /// The provider's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total active user sessions.
    pub fn active_sessions(&self) -> usize {
        self.assignments.len()
    }

    /// Sessions on a given VM (None for unknown names).
    pub fn sessions_on(&self, vm: &str) -> Option<usize> {
        self.vms.iter().find(|v| v.name == vm).map(|v| v.sessions)
    }

    /// Attaches a user: sticky if already attached (renewing the
    /// account lease), otherwise the least-loaded VM with room.
    ///
    /// # Errors
    ///
    /// [`ProviderError::NoCapacity`] or an exhausted account pool.
    pub fn attach(&mut self, now: SimTime, identity: &str) -> Result<Attachment, ProviderError> {
        if let Some((vm_idx, account)) = self.assignments.get(identity) {
            // Sticky: same VM, renewed lease.
            let account = account.clone();
            let vm = self.vms[*vm_idx].name.clone();
            let _ = self.accounts.acquire(now, identity)?;
            return Ok(Attachment { vm, account });
        }
        let (vm_idx, _) = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, v)| v.sessions < self.per_vm_capacity)
            .min_by_key(|(i, v)| (v.sessions, *i))
            .ok_or(ProviderError::NoCapacity)?;
        let account = self.accounts.acquire(now, identity)?;
        self.vms[vm_idx].sessions += 1;
        self.assignments
            .insert(identity.to_owned(), (vm_idx, account.clone()));
        Ok(Attachment {
            vm: self.vms[vm_idx].name.clone(),
            account,
        })
    }

    /// Detaches a user, releasing the VM slot and the account lease.
    /// Idempotent.
    pub fn detach(&mut self, identity: &str) {
        if let Some((vm_idx, _)) = self.assignments.remove(identity) {
            self.vms[vm_idx].sessions -= 1;
            self.accounts.release(identity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::time::SimDuration;

    fn provider(vms: &[&str], cap: usize, accounts: usize) -> ServiceProvider {
        let names: Vec<String> = (1..=accounts).map(|i| format!("svc{i:02}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        ServiceProvider::new(
            "S",
            vms,
            cap,
            AccountPool::new(&refs, SimDuration::from_secs(3600)),
        )
    }

    #[test]
    fn users_spread_least_loaded_first() {
        let mut p = provider(&["V1", "V2"], 2, 4);
        let a = p.attach(SimTime::ZERO, "/CN=A").unwrap();
        let b = p.attach(SimTime::ZERO, "/CN=B").unwrap();
        let c = p.attach(SimTime::ZERO, "/CN=C").unwrap();
        assert_ne!(a.vm, b.vm);
        assert_eq!(p.sessions_on("V1"), Some(2));
        assert_eq!(p.sessions_on("V2"), Some(1));
        assert_eq!(p.active_sessions(), 3);
        // Figure 3's exact scenario: A, B, C across V1, V2.
        let _ = c;
    }

    #[test]
    fn reattachment_is_sticky() {
        let mut p = provider(&["V1", "V2"], 2, 4);
        let first = p.attach(SimTime::ZERO, "/CN=A").unwrap();
        let _ = p.attach(SimTime::ZERO, "/CN=B").unwrap();
        let again = p.attach(SimTime::from_secs(10), "/CN=A").unwrap();
        assert_eq!(first, again, "same VM, same logical account");
        assert_eq!(p.active_sessions(), 2, "no duplicate session");
    }

    #[test]
    fn distinct_users_get_distinct_accounts() {
        let mut p = provider(&["V1"], 4, 4);
        let a = p.attach(SimTime::ZERO, "/CN=A").unwrap();
        let b = p.attach(SimTime::ZERO, "/CN=B").unwrap();
        assert_ne!(a.account, b.account);
    }

    #[test]
    fn capacity_limits_are_enforced_and_released() {
        let mut p = provider(&["V1"], 1, 4);
        p.attach(SimTime::ZERO, "/CN=A").unwrap();
        assert_eq!(
            p.attach(SimTime::ZERO, "/CN=B"),
            Err(ProviderError::NoCapacity)
        );
        p.detach("/CN=A");
        p.detach("/CN=A"); // idempotent
        assert!(p.attach(SimTime::ZERO, "/CN=B").is_ok());
    }

    #[test]
    fn account_exhaustion_propagates() {
        let mut p = provider(&["V1", "V2"], 4, 1);
        p.attach(SimTime::ZERO, "/CN=A").unwrap();
        let err = p.attach(SimTime::ZERO, "/CN=B").unwrap_err();
        assert!(matches!(err, ProviderError::Accounts(_)));
        assert!(err.to_string().contains("logical accounts"));
    }
}
