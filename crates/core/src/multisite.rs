//! Multi-site virtual-organization sessions over the sharded
//! conservative simulator: grid sessions doing work at their home
//! site, hopping across inter-site links (migration / remote data
//! sessions), and recovering from crashes — all routed through the
//! shard boundaries of [`gridvm_simcore::shard`].
//!
//! This is the macro-scenario world the PDES layer exists for: one
//! simulated virtual organization with many concurrent sessions per
//! site, where cross-site traffic (a session migrating to a remote
//! site, in the spirit of Section 3.1's VM migration) flows through
//! the deterministic per-(src,dst) mailboxes and everything local —
//! work steps, crash/retry recovery — stays on the site's own event
//! queue. Results are bit-identical at any shard/thread count; the
//! shard sweep in `tests/determinism.rs` and the sharded golden trace
//! pin exactly that.
//!
//! ```
//! use gridvm_core::multisite::{build_vo, VoConfig};
//!
//! let cfg = VoConfig { sites: 3, sessions_per_site: 4, steps_per_session: 20, ..VoConfig::paper_vo() };
//! let mut sim = build_vo(&cfg).shards(3);
//! sim.run();
//! let m = sim.merged_metrics();
//! assert_eq!(m.counter("vo.sessions_completed"), 3 * 4);
//! ```

use gridvm_simcore::engine::{Engine, Event};
use gridvm_simcore::metrics;
use gridvm_simcore::replication::derive_seed_sharded;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::shard::{ShardWorld, ShardedSim, SiteId, SiteState};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_vnet::sites::SiteTopology;

/// Shape of one multi-site VO experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoConfig {
    /// Number of sites (fully meshed via
    /// [`SiteTopology::paper_vo`]).
    pub sites: u32,
    /// Concurrent sessions started at each site.
    pub sessions_per_site: u32,
    /// Work steps each session executes before completing.
    pub steps_per_session: u32,
    /// Per-mille probability that a step hops the session to a remote
    /// site (a cross-shard mailbox message).
    pub hop_per_mille: u32,
    /// Per-mille probability that a step crashes and the session
    /// recovers locally after a retry delay.
    pub crash_per_mille: u32,
    /// Nominal spacing between a session's work steps (jittered per
    /// step by the site's RNG stream).
    pub step_spacing: SimDuration,
    /// RNG draws folded per step — the stand-in for scheduler/VMM
    /// bookkeeping cost, so per-event work is realistic in benches.
    pub work_draws: u32,
    /// Master seed; site `i` draws from
    /// [`derive_seed_sharded`]`(seed, 0, i)`.
    pub seed: u64,
}

impl VoConfig {
    /// The reference configuration: 4 sites, 8 sessions each, 50
    /// steps per session, 6% hop and 1.5% crash rates, 200 µs step
    /// spacing, seeded with the paper's publication date.
    pub fn paper_vo() -> Self {
        VoConfig {
            sites: 4,
            sessions_per_site: 8,
            steps_per_session: 50,
            hop_per_mille: 60,
            crash_per_mille: 15,
            step_spacing: SimDuration::from_micros(200),
            work_draws: 8,
            seed: 20030517,
        }
    }
}

/// A session hopping to a remote site: the cross-shard message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoMsg {
    /// Globally unique session id.
    pub session: u64,
    /// Work steps the session still owes.
    pub steps_left: u32,
}

/// One site's world: its seeded RNG stream, link latencies to every
/// peer, the session parameters, and tallies.
#[derive(Debug)]
pub struct VoSite {
    rng: SimRng,
    latency_to: Vec<SimDuration>,
    peers: u32,
    hop_per_mille: u32,
    crash_per_mille: u32,
    step_spacing: SimDuration,
    retry_delay: SimDuration,
    work_draws: u32,
    /// Sessions that finished at this site.
    pub completed: u64,
    /// Sessions this site handed to a remote site.
    pub hops_out: u64,
    /// Crash→retry recoveries executed at this site.
    pub recoveries: u64,
    /// Fold of every step's work product — keeps the per-step work
    /// observable (and the whole history digest-comparable).
    pub checksum: u64,
}

impl ShardWorld for VoSite {
    type Msg = VoMsg;

    fn deliver(msg: VoMsg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
        metrics::counter_add("vo.hops_in", 1);
        // The session resumes at its arrival instant on the new home
        // site's own queue and RNG stream.
        step([msg.session, u64::from(msg.steps_left)], site, en);
    }
}

/// One session work step; `[session, steps_left]` ride in the event's
/// inline argument words.
fn step(args: [u64; 2], site: &mut SiteState<VoSite>, en: &mut Engine<SiteState<VoSite>>) {
    let [session, steps_left] = args;
    metrics::counter_add("vo.steps", 1);
    let my_id = site.id().0;
    let w = &mut site.world;
    // Deterministic per-step work: the scheduler/VMM bookkeeping this
    // session would cost, folded so the optimizer cannot drop it.
    let mut acc = session ^ steps_left;
    for _ in 0..w.work_draws {
        acc = acc.rotate_left(7) ^ w.rng.next_u64();
    }
    w.checksum ^= acc;
    if steps_left == 0 {
        w.completed += 1;
        metrics::counter_add("vo.sessions_completed", 1);
        site.trace
            .record(en.now(), "vo", format!("session {session} completed"));
        return;
    }
    let draw = w.rng.next_below(1000) as u32;
    if draw < w.hop_per_mille && w.peers > 1 {
        // Migrate to a uniformly chosen remote site; the arrival time
        // is one link latency out, which is >= the lookahead by the
        // topology's construction.
        let offset = 1 + w.rng.next_below(u64::from(w.peers) - 1) as u32;
        let dst = SiteId((my_id + offset) % w.peers);
        let at = en.now() + w.latency_to[dst.index()];
        w.hops_out += 1;
        metrics::counter_add("vo.hops", 1);
        site.send(
            dst,
            at,
            VoMsg {
                session,
                steps_left: (steps_left - 1) as u32,
            },
        );
    } else if draw < w.hop_per_mille + w.crash_per_mille {
        // Crash: the step is lost and retried after the recovery
        // delay, same site, same remaining work — the self-healing
        // session semantics of `recovery`, at shard scale.
        w.recoveries += 1;
        let delay = w.retry_delay;
        metrics::counter_add("vo.recoveries", 1);
        site.trace
            .record(en.now(), "vo", format!("session {session} recovering"));
        en.schedule_event_in(delay, Event::Arg2([session, steps_left], step));
    } else {
        let jitter = w.rng.next_below(w.step_spacing.as_nanos() / 4 + 1);
        let delay = w.step_spacing + SimDuration::from_nanos(jitter);
        en.schedule_event_in(delay, Event::Arg2([session, steps_left - 1], step));
    }
}

/// Builds the multi-site VO world over [`SiteTopology::paper_vo`]:
/// one [`VoSite`] per site with its own derived seed, every session's
/// first step scheduled, and the lookahead taken from the topology's
/// minimum link latency. Configure shards/threads on the returned sim
/// and [`run`](ShardedSim::run) it.
///
/// # Panics
///
/// Panics when `cfg.sites` is zero.
pub fn build_vo(cfg: &VoConfig) -> ShardedSim<VoSite> {
    assert!(cfg.sites > 0, "a VO needs at least one site");
    let topo = SiteTopology::paper_vo(cfg.sites);
    let lookahead = topo.lookahead().unwrap_or(SimDuration::from_millis(5));
    let retry_delay = SimDuration::from_nanos(cfg.step_spacing.as_nanos() * 4);
    let mut sim = ShardedSim::new(
        lookahead,
        (0..cfg.sites).map(|i| VoSite {
            rng: SimRng::seed_from(derive_seed_sharded(cfg.seed, 0, u64::from(i))),
            latency_to: (0..cfg.sites)
                .map(|j| {
                    if i == j {
                        SimDuration::ZERO
                    } else {
                        topo.latency(SiteId(i), SiteId(j)).expect("paper_vo meshes")
                    }
                })
                .collect(),
            peers: cfg.sites,
            hop_per_mille: cfg.hop_per_mille,
            crash_per_mille: cfg.crash_per_mille,
            step_spacing: cfg.step_spacing,
            retry_delay,
            work_draws: cfg.work_draws,
            completed: 0,
            hops_out: 0,
            recoveries: 0,
            checksum: 0,
        }),
    );
    for i in 0..cfg.sites as usize {
        sim.with_site(i, |site, en| {
            for k in 0..cfg.sessions_per_site {
                let session =
                    u64::from(site.id().0) * u64::from(cfg.sessions_per_site) + u64::from(k);
                // Stagger session starts across one spacing interval
                // so same-instant pileups don't mask ordering bugs.
                let start = site
                    .world
                    .rng
                    .next_below(cfg.step_spacing.as_nanos().max(1));
                en.schedule_event_at(
                    SimTime::ZERO + SimDuration::from_nanos(start),
                    Event::Arg2([session, u64::from(cfg.steps_per_session)], step),
                );
            }
        });
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VoConfig {
        VoConfig {
            sites: 3,
            sessions_per_site: 4,
            steps_per_session: 25,
            ..VoConfig::paper_vo()
        }
    }

    #[test]
    fn every_session_completes_exactly_once() {
        let cfg = small();
        let mut sim = build_vo(&cfg);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(
            m.counter("vo.sessions_completed"),
            u64::from(cfg.sites * cfg.sessions_per_site)
        );
        assert_eq!(
            m.counter("vo.hops"),
            m.counter("vo.hops_in"),
            "no lost hops"
        );
        assert_eq!(m.counter("vo.hops"), sim.messages());
        assert!(m.counter("vo.recoveries") > 0, "seeded crashes occurred");
        let completed: u64 = (0..3)
            .map(|i| sim.with_site(i, |s, _| s.world.completed))
            .sum();
        assert_eq!(completed, u64::from(cfg.sites * cfg.sessions_per_site));
    }

    #[test]
    fn shard_and_thread_packing_do_not_change_the_world() {
        let run = |shards: usize, threads: usize| {
            let mut sim = build_vo(&small()).shards(shards).threads(threads);
            metrics::reset();
            sim.run();
            metrics::reset();
            let checksums: Vec<u64> = (0..3)
                .map(|i| sim.with_site(i, |s, _| s.world.checksum))
                .collect();
            (sim.trace_digest(), sim.merged_metrics(), checksums)
        };
        let want = run(1, 1);
        for (shards, threads) in [(2, 1), (3, 2), (3, 3), (8, 4)] {
            assert_eq!(
                run(shards, threads),
                want,
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn recoveries_retry_with_delay_and_still_complete() {
        // Crank the crash rate: sessions must still all finish, later.
        let mut cfg = small();
        cfg.crash_per_mille = 300;
        cfg.hop_per_mille = 0;
        let mut sim = build_vo(&cfg);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(
            m.counter("vo.sessions_completed"),
            u64::from(cfg.sites * cfg.sessions_per_site)
        );
        assert_eq!(sim.messages(), 0, "hops disabled");
        assert!(m.counter("vo.recoveries") > 50);
    }
}
