//! Multi-site virtual-organization sessions over the sharded
//! conservative simulator: grid sessions doing work at their home
//! site, hopping across inter-site links (migration / remote data
//! sessions), and recovering from crashes — all routed through the
//! shard boundaries of [`gridvm_simcore::shard`].
//!
//! This is the macro-scenario world the PDES layer exists for: one
//! simulated virtual organization with many concurrent sessions per
//! site, where cross-site traffic (a session migrating to a remote
//! site, in the spirit of Section 3.1's VM migration) flows through
//! the deterministic per-(src,dst) mailboxes and everything local —
//! work steps, crash/retry recovery — stays on the site's own event
//! queue. Results are bit-identical at any shard/thread count; the
//! shard sweep in `tests/determinism.rs` and the sharded golden trace
//! pin exactly that.
//!
//! ```
//! use gridvm_core::multisite::{build_vo, VoConfig};
//!
//! let cfg = VoConfig { sites: 3, sessions_per_site: 4, steps_per_session: 20, ..VoConfig::paper_vo() };
//! let mut sim = build_vo(&cfg).shards(3);
//! sim.run();
//! let m = sim.merged_metrics();
//! assert_eq!(m.counter("vo.sessions_completed"), 3 * 4);
//! ```

use gridvm_simcore::engine::{Engine, Event};
use gridvm_simcore::metrics::{self, Counter};
use gridvm_simcore::replication::{derive_seed_sharded, derive_seed_stream};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::shard::{ShardWorld, ShardedSim, SiteId, SiteState};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::trace::{SamplePolicy, TraceLog};
use gridvm_vnet::sites::SiteTopology;

/// Shape of one multi-site VO experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoConfig {
    /// Number of sites (fully meshed via
    /// [`SiteTopology::paper_vo`]).
    pub sites: u32,
    /// Concurrent sessions started at each site.
    pub sessions_per_site: u32,
    /// Work steps each session executes before completing.
    pub steps_per_session: u32,
    /// Per-mille probability that a step hops the session to a remote
    /// site (a cross-shard mailbox message).
    pub hop_per_mille: u32,
    /// Per-mille probability that a step crashes and the session
    /// recovers locally after a retry delay.
    pub crash_per_mille: u32,
    /// Nominal spacing between a session's work steps (jittered per
    /// step by the site's RNG stream).
    pub step_spacing: SimDuration,
    /// RNG draws folded per step — the stand-in for scheduler/VMM
    /// bookkeeping cost, so per-event work is realistic in benches.
    pub work_draws: u32,
    /// Master seed; site `i` draws from
    /// [`derive_seed_sharded`]`(seed, 0, i)`.
    pub seed: u64,
    /// Drive the synchronizer from the topology's per-(src,dst)
    /// lookahead matrix instead of the single global minimum — fewer,
    /// wider windows on any topology with latency spread. Results are
    /// bit-identical either way; this is purely a window-count knob.
    pub per_pair_lookahead: bool,
}

impl VoConfig {
    /// The reference configuration: 4 sites, 8 sessions each, 50
    /// steps per session, 6% hop and 1.5% crash rates, 200 µs step
    /// spacing, seeded with the paper's publication date.
    pub fn paper_vo() -> Self {
        VoConfig {
            sites: 4,
            sessions_per_site: 8,
            steps_per_session: 50,
            hop_per_mille: 60,
            crash_per_mille: 15,
            step_spacing: SimDuration::from_micros(200),
            work_draws: 8,
            seed: 20030517,
            per_pair_lookahead: true,
        }
    }
}

/// A session hopping to a remote site: the cross-shard message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoMsg {
    /// Globally unique session id.
    pub session: u64,
    /// Work steps the session still owes.
    pub steps_left: u32,
}

/// One site's world: its seeded RNG stream, link latencies to every
/// peer, the session parameters, and tallies.
#[derive(Debug)]
pub struct VoSite {
    rng: SimRng,
    latency_to: Vec<SimDuration>,
    peers: u32,
    hop_per_mille: u32,
    crash_per_mille: u32,
    step_spacing: SimDuration,
    retry_delay: SimDuration,
    work_draws: u32,
    /// Work steps executed at this site.
    pub steps: u64,
    /// Sessions that finished at this site.
    pub completed: u64,
    /// Sessions this site handed to a remote site.
    pub hops_out: u64,
    /// Sessions that arrived here from a remote site.
    pub hops_in: u64,
    /// Crash→retry recoveries executed at this site.
    pub recoveries: u64,
    /// Fold of every step's work product — keeps the per-step work
    /// observable (and the whole history digest-comparable).
    pub checksum: u64,
}

impl ShardWorld for VoSite {
    type Msg = VoMsg;

    fn deliver(msg: VoMsg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
        site.world.hops_in += 1;
        // The session resumes at its arrival instant on the new home
        // site's own queue and RNG stream.
        step([msg.session, u64::from(msg.steps_left)], site, en);
    }

    fn encode_msg(msg: VoMsg) -> Result<[u64; 2], VoMsg> {
        Ok([msg.session, u64::from(msg.steps_left)])
    }

    fn decode_msg(words: [u64; 2]) -> VoMsg {
        VoMsg {
            session: words[0],
            steps_left: words[1] as u32,
        }
    }

    fn flush_metrics(&mut self) {
        // The hot path tallies into plain fields (one integer add per
        // step); the run publishes them here, once per site.
        VO_STEPS.add(self.steps);
        VO_COMPLETED.add(self.completed);
        VO_HOPS.add(self.hops_out);
        VO_HOPS_IN.add(self.hops_in);
        VO_RECOVERIES.add(self.recoveries);
    }
}

/// One session work step; `[session, steps_left]` ride in the event's
/// inline argument words.
fn step(args: [u64; 2], site: &mut SiteState<VoSite>, en: &mut Engine<SiteState<VoSite>>) {
    let [session, steps_left] = args;
    let my_id = site.id().0;
    let w = &mut site.world;
    w.steps += 1;
    // Deterministic per-step work: the scheduler/VMM bookkeeping this
    // session would cost, folded so the optimizer cannot drop it.
    let mut acc = session ^ steps_left;
    for _ in 0..w.work_draws {
        acc = acc.rotate_left(7) ^ w.rng.next_u64();
    }
    w.checksum ^= acc;
    if steps_left == 0 {
        w.completed += 1;
        site.trace
            .record(en.now(), "vo", format!("session {session} completed"));
        return;
    }
    let draw = w.rng.next_below(1000) as u32;
    if draw < w.hop_per_mille && w.peers > 1 {
        // Migrate to a uniformly chosen remote site; the arrival time
        // is one link latency out, which is >= the lookahead by the
        // topology's construction.
        let offset = 1 + w.rng.next_below(u64::from(w.peers) - 1) as u32;
        let dst = SiteId((my_id + offset) % w.peers);
        let at = en.now() + w.latency_to[dst.index()];
        w.hops_out += 1;
        site.send(
            dst,
            at,
            VoMsg {
                session,
                steps_left: (steps_left - 1) as u32,
            },
        );
    } else if draw < w.hop_per_mille + w.crash_per_mille {
        // Crash: the step is lost and retried after the recovery
        // delay, same site, same remaining work — the self-healing
        // session semantics of `recovery`, at shard scale.
        w.recoveries += 1;
        let delay = w.retry_delay;
        site.trace
            .record(en.now(), "vo", format!("session {session} recovering"));
        en.schedule_event_in(delay, Event::Arg2([session, steps_left], step));
    } else {
        let jitter = w.rng.next_below(w.step_spacing.as_nanos() / 4 + 1);
        let delay = w.step_spacing + SimDuration::from_nanos(jitter);
        en.schedule_event_in(delay, Event::Arg2([session, steps_left - 1], step));
    }
}

/// Builds the multi-site VO world over [`SiteTopology::paper_vo`]:
/// one [`VoSite`] per site with its own derived seed, every session's
/// first step scheduled, and the lookahead taken from the topology's
/// minimum link latency. Configure shards/threads on the returned sim
/// and [`run`](ShardedSim::run) it.
///
/// # Panics
///
/// Panics when `cfg.sites` is zero.
pub fn build_vo(cfg: &VoConfig) -> ShardedSim<VoSite> {
    assert!(cfg.sites > 0, "a VO needs at least one site");
    let topo = SiteTopology::paper_vo(cfg.sites);
    let lookahead = topo.lookahead().unwrap_or(SimDuration::from_millis(5));
    let retry_delay = SimDuration::from_nanos(cfg.step_spacing.as_nanos() * 4);
    let mut sim = ShardedSim::new(
        lookahead,
        (0..cfg.sites).map(|i| VoSite {
            rng: SimRng::seed_from(derive_seed_sharded(cfg.seed, 0, u64::from(i))),
            latency_to: (0..cfg.sites)
                .map(|j| {
                    if i == j {
                        SimDuration::ZERO
                    } else {
                        topo.latency(SiteId(i), SiteId(j)).expect("paper_vo meshes")
                    }
                })
                .collect(),
            peers: cfg.sites,
            hop_per_mille: cfg.hop_per_mille,
            crash_per_mille: cfg.crash_per_mille,
            step_spacing: cfg.step_spacing,
            retry_delay,
            work_draws: cfg.work_draws,
            steps: 0,
            completed: 0,
            hops_out: 0,
            hops_in: 0,
            recoveries: 0,
            checksum: 0,
        }),
    );
    if cfg.per_pair_lookahead {
        sim = sim.per_pair_lookahead(topo.lookahead_matrix());
    }
    // A site's per-window traffic to one destination is bounded by its
    // hopping sessions; pre-size the outboxes so steady state never
    // regrows them.
    sim = sim.outbox_capacity((cfg.sessions_per_site as usize).clamp(8, 64));
    for i in 0..cfg.sites as usize {
        sim.with_site(i, |site, en| {
            for k in 0..cfg.sessions_per_site {
                let session =
                    u64::from(site.id().0) * u64::from(cfg.sessions_per_site) + u64::from(k);
                // Stagger session starts across one spacing interval
                // so same-instant pileups don't mask ordering bugs.
                let start = site
                    .world
                    .rng
                    .next_below(cfg.step_spacing.as_nanos().max(1));
                en.schedule_event_at(
                    SimTime::ZERO + SimDuration::from_nanos(start),
                    Event::Arg2([session, u64::from(cfg.steps_per_session)], step),
                );
            }
        });
    }
    sim
}

// --- The macro-scale VO world -----------------------------------------
//
// `build_vo` carries tens of sessions; the macro-scale world carries
// 10⁵–10⁶ across hundreds of sites, which forces three structural
// changes. Sessions are not per-session state anywhere: a session is
// two u64 words riding inside its current event (id + remaining steps
// packed in one, the start instant in the other), so memory is
// O(active sessions), and active sessions are bounded by the arrival
// process, not the total. Observability is streaming: completions
// land in log-scale histograms (`vo.slowdown_x1000`, `vo.session_us`,
// `vo.complete_us` — constant memory, integer-exact merge) and traces
// go through seeded stratified sampling, so a million-session run
// reports p99 tails and a pinned sampled digest with bounded RSS.
// And load is shaped: each site's arrival generator follows a diurnal
// rate curve, flash-crowd bursts inject arrival spikes, and sites
// have heterogeneous capacities — a site driven past capacity
// stretches its sessions' step times, which is what the placement
// policies race against.

/// Per-step bookkeeping counter for the scale world (hot path).
static VO_STEPS: Counter = Counter::new("vo.steps");
/// Sessions started (regular arrivals + flash arrivals).
static VO_ARRIVALS: Counter = Counter::new("vo.arrivals");
/// Sessions started by flash-crowd bursts.
static VO_FLASH: Counter = Counter::new("vo.flash_arrivals");
/// Sessions completed.
static VO_COMPLETED: Counter = Counter::new("vo.sessions_completed");
/// Sessions handed to a remote site.
static VO_HOPS: Counter = Counter::new("vo.hops");
/// Sessions received from a remote site.
static VO_HOPS_IN: Counter = Counter::new("vo.hops_in");
/// Crash→retry recoveries (published at flush, tallied per site).
static VO_RECOVERIES: Counter = Counter::new("vo.recoveries");

/// Where a hopping session goes — the policies `ext_vo_scale` races.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// A uniformly random remote site.
    Uniform,
    /// A random site among the four lowest-latency peers — mostly
    /// intra-region moves.
    Nearest,
    /// A remote site drawn with probability proportional to its
    /// capacity tier — big sites absorb more migrating load.
    CapacityWeighted,
    /// No migration at all: sessions stay at their arrival site.
    Sticky,
}

impl Placement {
    /// All policies, in the order the experiment races them.
    pub const ALL: [Placement; 4] = [
        Placement::Uniform,
        Placement::Nearest,
        Placement::CapacityWeighted,
        Placement::Sticky,
    ];

    /// Stable label for scenario names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Placement::Uniform => "uniform",
            Placement::Nearest => "nearest",
            Placement::CapacityWeighted => "capacity-weighted",
            Placement::Sticky => "sticky",
        }
    }
}

/// Shape of one macro-scale VO experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoScaleConfig {
    /// Geographic regions ([`SiteTopology::regional_vo`]).
    pub regions: u32,
    /// Sites per region.
    pub sites_per_region: u32,
    /// Total sessions across the whole VO, split near-evenly across
    /// sites (site `i` gets the `i`-th share of the remainder).
    pub sessions: u64,
    /// Work steps per session. Must fit the packed event word
    /// (< 2^20).
    pub steps_per_session: u32,
    /// Per-mille probability that a step migrates the session.
    pub hop_per_mille: u32,
    /// Nominal spacing between a session's steps at an uncongested
    /// site.
    pub step_spacing: SimDuration,
    /// RNG draws folded per step (scheduler/VMM bookkeeping stand-in).
    pub work_draws: u32,
    /// Mean gap between regular session arrivals at one site, at the
    /// diurnal curve's average rate.
    pub mean_arrival_gap: SimDuration,
    /// One full diurnal cycle (8 phases) of the arrival-rate curve.
    pub diurnal_period: SimDuration,
    /// How strongly the diurnal curve swings the arrival rate
    /// (0 = flat, 1000 = the full curve shape).
    pub diurnal_amplitude_per_mille: u32,
    /// Number of flash-crowd bursts per site.
    pub flash_crowds: u32,
    /// Fraction of each site's sessions arriving in bursts rather
    /// than through the diurnal process.
    pub flash_fraction_per_mille: u32,
    /// Concurrent sessions a tier-0 site absorbs before congestion
    /// stretches step times; tier `i % 4` sites get `(1 + tier) ×`
    /// this.
    pub capacity_base: u64,
    /// Where hopping sessions go.
    pub placement: Placement,
    /// Per-site sampled trace-ring capacity.
    pub trace_capacity: usize,
    /// Per-mille trace sampling rate for the `vo` category.
    pub trace_rate_per_mille: u32,
    /// Master seed; site `i` draws workload randomness from
    /// [`derive_seed_sharded`]`(seed, 0, i)` and trace-sampling
    /// decisions from stream 1 of that seed.
    pub seed: u64,
    /// Drive the synchronizer from the topology's per-(src,dst)
    /// lookahead matrix instead of the single global minimum. On the
    /// regional topology — 5–8 ms metro, 20–45 ms WAN — this is worth
    /// several× fewer barrier windows at identical results.
    pub per_pair_lookahead: bool,
}

impl VoScaleConfig {
    /// The reference configuration: 48 sites in 8 regions, 20k
    /// sessions, 16 steps each, diurnal arrivals with 3 flash crowds
    /// carrying 20% of the load, and 2% per-mille trace sampling.
    /// `ext_vo_scale` scales sessions and sites up from here.
    pub fn reference() -> Self {
        VoScaleConfig {
            regions: 8,
            sites_per_region: 6,
            sessions: 20_000,
            steps_per_session: 16,
            hop_per_mille: 40,
            step_spacing: SimDuration::from_micros(200),
            work_draws: 4,
            mean_arrival_gap: SimDuration::from_micros(500),
            diurnal_period: SimDuration::from_millis(200),
            diurnal_amplitude_per_mille: 800,
            flash_crowds: 3,
            flash_fraction_per_mille: 200,
            capacity_base: 32,
            placement: Placement::Uniform,
            trace_capacity: 512,
            trace_rate_per_mille: 20,
            seed: 20030517,
            per_pair_lookahead: true,
        }
    }

    /// Total sites.
    pub fn sites(&self) -> u32 {
        self.regions * self.sites_per_region
    }

    /// Sessions assigned to site `i` (near-even split).
    fn sessions_at(&self, i: u32) -> u64 {
        let n = u64::from(self.sites());
        self.sessions / n + u64::from(u64::from(i) < self.sessions % n)
    }

    /// First session id of site `i`'s contiguous id range.
    fn session_base(&self, i: u32) -> u64 {
        let n = u64::from(self.sites());
        let (q, r) = (self.sessions / n, self.sessions % n);
        u64::from(i) * q + u64::from(i).min(r)
    }
}

/// A migrating session: the cross-shard message of the scale world.
/// `meta` packs `session_id << 20 | steps_left`; `start` is the
/// session's arrival instant in nanoseconds — the session's entire
/// state, so the simulation holds nothing per session between events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoScaleMsg {
    /// `session_id << 20 | steps_left`.
    pub meta: u64,
    /// Arrival instant, nanoseconds.
    pub start: u64,
}

/// Bits of the packed `meta` word holding `steps_left`.
const STEP_BITS: u32 = 20;

/// The diurnal arrival-rate shape, per-mille of the mean rate over 8
/// phases of the cycle (sums to 8000, so the full-amplitude curve
/// preserves the configured mean rate): a quiet night, a morning
/// ramp, an afternoon peak, an evening tail.
const DIURNAL_SHAPE: [u64; 8] = [550, 400, 550, 900, 1300, 1550, 1450, 1300];

/// One site of the macro-scale world.
#[derive(Debug)]
pub struct VoScaleSite {
    rng: SimRng,
    latency_to: Vec<SimDuration>,
    /// Up to four lowest-latency peers (the `Nearest` policy's menu).
    near_peers: Vec<u32>,
    /// Cumulative capacity weights over all sites (the
    /// `CapacityWeighted` policy's table).
    cap_cum: Vec<u64>,
    peers: u32,
    hop_per_mille: u32,
    step_spacing: SimDuration,
    work_draws: u32,
    placement: Placement,
    /// Congestion knee: concurrent sessions before step times
    /// stretch.
    pub capacity: u64,
    mean_gap_ns: u64,
    phase_ns: u64,
    diurnal_amp: u64,
    burst_gap_ns: u64,
    ideal_ns: u64,
    /// Sessions currently resident at this site.
    pub active: u64,
    /// High-water mark of `active`.
    pub peak_active: u64,
    /// Sessions that finished at this site.
    pub completed: u64,
    /// Sessions this site handed to a remote site.
    pub hops_out: u64,
    /// Fold of every step's work product (digest-comparable).
    pub checksum: u64,
}

impl VoScaleSite {
    fn note_arrival(&mut self) {
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
    }

    /// The destination of a hop under this site's placement policy.
    fn choose_dst(&mut self, my_id: u32) -> SiteId {
        match self.placement {
            Placement::Uniform => {
                let offset = 1 + self.rng.next_below(u64::from(self.peers) - 1) as u32;
                SiteId((my_id + offset) % self.peers)
            }
            Placement::Nearest => {
                let k = self.rng.next_below(self.near_peers.len() as u64) as usize;
                SiteId(self.near_peers[k])
            }
            Placement::CapacityWeighted => {
                let total = *self.cap_cum.last().expect("at least one site");
                let r = self.rng.next_below(total);
                let mut dst = self.cap_cum.partition_point(|&c| c <= r) as u32;
                if dst == my_id {
                    dst = (dst + 1) % self.peers;
                }
                SiteId(dst)
            }
            Placement::Sticky => unreachable!("sticky sessions never hop"),
        }
    }

    /// The gap to the next regular arrival: the diurnal-curve rate at
    /// `now`, amplitude-scaled, jittered by the site's RNG stream.
    fn arrival_gap(&mut self, now: SimTime) -> SimDuration {
        let phase = ((now.as_nanos() / self.phase_ns) % 8) as usize;
        // Blend the shape toward flat (1000‰) by the amplitude.
        let shape = DIURNAL_SHAPE[phase];
        let mult = (1000 + (shape as i64 - 1000) * self.diurnal_amp as i64 / 1000) as u64;
        let base = (self.mean_gap_ns * 1000 / mult).max(4);
        let jitter = self.rng.next_below(base / 2 + 1);
        SimDuration::from_nanos(base * 3 / 4 + jitter)
    }
}

impl ShardWorld for VoScaleSite {
    type Msg = VoScaleMsg;

    fn deliver(msg: VoScaleMsg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
        VO_HOPS_IN.add(1);
        site.world.note_arrival();
        scale_step([msg.meta, msg.start], site, en);
    }

    fn encode_msg(msg: VoScaleMsg) -> Result<[u64; 2], VoScaleMsg> {
        Ok([msg.meta, msg.start])
    }

    fn decode_msg(words: [u64; 2]) -> VoScaleMsg {
        VoScaleMsg {
            meta: words[0],
            start: words[1],
        }
    }
}

/// One session work step of the scale world; the session's packed
/// state rides in the event's two inline argument words.
fn scale_step(
    args: [u64; 2],
    site: &mut SiteState<VoScaleSite>,
    en: &mut Engine<SiteState<VoScaleSite>>,
) {
    let [meta, start] = args;
    let (session, steps_left) = (meta >> STEP_BITS, meta & ((1 << STEP_BITS) - 1));
    VO_STEPS.add(1);
    let my_id = site.id().0;
    let w = &mut site.world;
    let mut acc = meta ^ start;
    for _ in 0..w.work_draws {
        acc = acc.rotate_left(7) ^ w.rng.next_u64();
    }
    w.checksum ^= acc;
    if steps_left == 0 {
        w.active -= 1;
        w.completed += 1;
        VO_COMPLETED.add(1);
        let now_ns = en.now().as_nanos();
        let elapsed = now_ns - start;
        // The streaming tail summaries: integer histograms, constant
        // memory, no per-session keys anywhere.
        let slowdown = (elapsed.saturating_mul(1000) / w.ideal_ns).max(1000);
        metrics::histogram_record("vo.slowdown_x1000", slowdown);
        metrics::histogram_record("vo.session_us", elapsed / 1000);
        metrics::histogram_record("vo.complete_us", now_ns / 1000);
        site.trace.record(
            en.now(),
            "vo",
            format!("session {session} done x{slowdown}"),
        );
        return;
    }
    let draw = w.rng.next_below(1000) as u32;
    if draw < w.hop_per_mille && w.peers > 1 && w.placement != Placement::Sticky {
        let dst = w.choose_dst(my_id);
        let at = en.now() + w.latency_to[dst.index()];
        w.active -= 1;
        w.hops_out += 1;
        VO_HOPS.add(1);
        site.send(
            dst,
            at,
            VoScaleMsg {
                meta: (session << STEP_BITS) | (steps_left - 1),
                start,
            },
        );
    } else {
        // Congested sites stretch step times: the slowdown signal the
        // placement policies trade against migration latency.
        let congestion = 1 + w.active / w.capacity;
        let jitter = w.rng.next_below(w.step_spacing.as_nanos() / 4 + 1);
        let delay = (w.step_spacing + SimDuration::from_nanos(jitter)) * congestion;
        en.schedule_event_in(
            delay,
            Event::Arg2(
                [(session << STEP_BITS) | (steps_left - 1), start],
                scale_step,
            ),
        );
    }
}

/// Starts one session at this site, now: the arrival instant becomes
/// the session's `start` word and its first step runs immediately.
fn start_session(
    session: u64,
    steps: u64,
    site: &mut SiteState<VoScaleSite>,
    en: &mut Engine<SiteState<VoScaleSite>>,
) {
    VO_ARRIVALS.add(1);
    site.world.note_arrival();
    let now_ns = en.now().as_nanos();
    scale_step([(session << STEP_BITS) | steps, now_ns], site, en);
}

/// The self-rescheduling diurnal arrival generator:
/// `[remaining << STEP_BITS | steps, next_session_id]`. One pending
/// event per site drives the whole arrival process, so queue memory
/// is O(active sessions + sites), never O(total sessions).
fn diurnal_arrive(
    args: [u64; 2],
    site: &mut SiteState<VoScaleSite>,
    en: &mut Engine<VoScaleSiteState>,
) {
    let [packed, session] = args;
    let (remaining, steps) = (packed >> STEP_BITS, packed & ((1 << STEP_BITS) - 1));
    start_session(session, steps, site, en);
    if remaining > 1 {
        let gap = site.world.arrival_gap(en.now());
        en.schedule_event_in(
            gap,
            Event::Arg2(
                [((remaining - 1) << STEP_BITS) | steps, session + 1],
                diurnal_arrive,
            ),
        );
    }
}

/// The flash-crowd generator: same shape as [`diurnal_arrive`] but at
/// burst pace — a spike of arrivals that shoves the site past its
/// capacity knee.
fn burst_arrive(
    args: [u64; 2],
    site: &mut SiteState<VoScaleSite>,
    en: &mut Engine<VoScaleSiteState>,
) {
    let [packed, session] = args;
    let (remaining, steps) = (packed >> STEP_BITS, packed & ((1 << STEP_BITS) - 1));
    VO_FLASH.add(1);
    start_session(session, steps, site, en);
    if remaining > 1 {
        let w = &mut site.world;
        let gap = w.burst_gap_ns / 2 + w.rng.next_below(w.burst_gap_ns / 2 + 1);
        en.schedule_event_in(
            SimDuration::from_nanos(gap),
            Event::Arg2(
                [((remaining - 1) << STEP_BITS) | steps, session + 1],
                burst_arrive,
            ),
        );
    }
}

/// Shorthand for the engine world type of the scale world.
type VoScaleSiteState = SiteState<VoScaleSite>;

/// Builds the macro-scale VO world over
/// [`SiteTopology::regional_vo`]: one [`VoScaleSite`] per site with
/// its own derived RNG and trace-sampling streams, a sampled
/// [`TraceLog`], heterogeneous capacity (tier `i % 4`), one diurnal
/// arrival generator, and `flash_crowds` burst generators. Configure
/// shards/threads on the returned sim and [`run`](ShardedSim::run)
/// it; session tails land in the `vo.slowdown_x1000` /
/// `vo.session_us` / `vo.complete_us` histograms of
/// [`merged_metrics`](ShardedSim::merged_metrics).
///
/// # Panics
///
/// Panics when the topology is empty, when `steps_per_session`
/// overflows the packed event word, or when the session-id range
/// would collide with the step bits.
pub fn build_vo_scale(cfg: &VoScaleConfig) -> ShardedSim<VoScaleSite> {
    let n = cfg.sites();
    assert!(n > 0, "a VO needs at least one site");
    assert!(
        cfg.steps_per_session > 0 && cfg.steps_per_session < (1 << STEP_BITS),
        "steps_per_session must fit the packed event word (1..2^{STEP_BITS})"
    );
    assert!(
        cfg.sessions < (1 << (64 - STEP_BITS)),
        "session ids must fit the packed event word"
    );
    let topo = SiteTopology::regional_vo(cfg.regions, cfg.sites_per_region);
    let lookahead = topo.lookahead().unwrap_or(SimDuration::from_millis(5));
    let capacity_of = |i: u32| cfg.capacity_base.max(1) * (1 + u64::from(i % 4));
    let mut cap_cum = Vec::with_capacity(n as usize);
    let mut acc = 0u64;
    for i in 0..n {
        acc += capacity_of(i);
        cap_cum.push(acc);
    }
    let mut sim = ShardedSim::new(
        lookahead,
        (0..n).map(|i| {
            let latency_to: Vec<SimDuration> = (0..n)
                .map(|j| {
                    if i == j {
                        SimDuration::ZERO
                    } else {
                        topo.latency(SiteId(i), SiteId(j))
                            .expect("regional_vo meshes")
                    }
                })
                .collect();
            // The four lowest-latency peers, ties broken by id — the
            // Nearest policy's deterministic menu.
            let mut by_latency: Vec<u32> = (0..n).filter(|&j| j != i).collect();
            by_latency.sort_by_key(|&j| (latency_to[j as usize], j));
            by_latency.truncate(4);
            VoScaleSite {
                rng: SimRng::seed_from(derive_seed_sharded(cfg.seed, 0, u64::from(i))),
                latency_to,
                near_peers: by_latency,
                cap_cum: cap_cum.clone(),
                peers: n,
                hop_per_mille: cfg.hop_per_mille,
                step_spacing: cfg.step_spacing,
                work_draws: cfg.work_draws,
                placement: cfg.placement,
                capacity: capacity_of(i),
                mean_gap_ns: cfg.mean_arrival_gap.as_nanos().max(1),
                phase_ns: (cfg.diurnal_period.as_nanos() / 8).max(1),
                diurnal_amp: u64::from(cfg.diurnal_amplitude_per_mille.min(1000)),
                burst_gap_ns: (cfg.step_spacing.as_nanos() / 8).max(1),
                ideal_ns: u64::from(cfg.steps_per_session) * cfg.step_spacing.as_nanos().max(1),
                active: 0,
                peak_active: 0,
                completed: 0,
                hops_out: 0,
                checksum: 0,
            }
        }),
    );
    if cfg.per_pair_lookahead {
        sim = sim.per_pair_lookahead(topo.lookahead_matrix());
    }
    // Hint kept modest: outboxes are lazily sized, so hundreds of
    // sites do not pay O(sites²·hint) resident memory up front.
    sim = sim.outbox_capacity(16);
    let steps = u64::from(cfg.steps_per_session);
    for i in 0..n {
        let site_sessions = cfg.sessions_at(i);
        let base = cfg.session_base(i);
        sim.with_site(i as usize, |site, en| {
            // Sampled per-site trace segment: O(capacity) retained
            // entries regardless of event volume, with the sampling
            // decisions on their own seed stream so they survive
            // workload changes.
            let site_seed = derive_seed_sharded(cfg.seed, 0, u64::from(i));
            site.trace = TraceLog::with_sampling(
                cfg.trace_capacity.max(1),
                SamplePolicy::uniform(cfg.trace_rate_per_mille),
                derive_seed_stream(site_seed, 1),
            );
            if site_sessions == 0 {
                return;
            }
            let flash_total = site_sessions * u64::from(cfg.flash_fraction_per_mille.min(1000))
                / 1000
                * u64::from(u32::from(cfg.flash_crowds > 0));
            let regular = site_sessions - flash_total;
            if regular > 0 {
                // Stagger generator starts across one mean gap so
                // sites don't fire in lockstep.
                let start = site.world.rng.next_below(site.world.mean_gap_ns);
                en.schedule_event_at(
                    SimTime::ZERO + SimDuration::from_nanos(start),
                    Event::Arg2([(regular << STEP_BITS) | steps, base], diurnal_arrive),
                );
            }
            if flash_total > 0 {
                // Bursts land at deterministic fractions of the
                // regular arrival span.
                let span_ns = (regular.max(1) * site.world.mean_gap_ns).max(8);
                let crowds = u64::from(cfg.flash_crowds);
                let mut next_id = base + regular;
                for k in 0..crowds {
                    let size = flash_total / crowds + u64::from(k < flash_total % crowds);
                    if size == 0 {
                        continue;
                    }
                    let at = span_ns * (k + 1) / (crowds + 1);
                    en.schedule_event_at(
                        SimTime::ZERO + SimDuration::from_nanos(at),
                        Event::Arg2([(size << STEP_BITS) | steps, next_id], burst_arrive),
                    );
                    next_id += size;
                }
            }
        });
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VoConfig {
        VoConfig {
            sites: 3,
            sessions_per_site: 4,
            steps_per_session: 25,
            ..VoConfig::paper_vo()
        }
    }

    #[test]
    fn every_session_completes_exactly_once() {
        let cfg = small();
        let mut sim = build_vo(&cfg);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(
            m.counter("vo.sessions_completed"),
            u64::from(cfg.sites * cfg.sessions_per_site)
        );
        assert_eq!(
            m.counter("vo.hops"),
            m.counter("vo.hops_in"),
            "no lost hops"
        );
        assert_eq!(m.counter("vo.hops"), sim.messages());
        assert!(m.counter("vo.recoveries") > 0, "seeded crashes occurred");
        let completed: u64 = (0..3)
            .map(|i| sim.with_site(i, |s, _| s.world.completed))
            .sum();
        assert_eq!(completed, u64::from(cfg.sites * cfg.sessions_per_site));
    }

    #[test]
    fn shard_and_thread_packing_do_not_change_the_world() {
        let run = |shards: usize, threads: usize| {
            let mut sim = build_vo(&small()).shards(shards).threads(threads);
            metrics::reset();
            sim.run();
            metrics::reset();
            let checksums: Vec<u64> = (0..3)
                .map(|i| sim.with_site(i, |s, _| s.world.checksum))
                .collect();
            (sim.trace_digest(), sim.merged_metrics(), checksums)
        };
        let want = run(1, 1);
        for (shards, threads) in [(2, 1), (3, 2), (3, 3), (8, 4)] {
            assert_eq!(
                run(shards, threads),
                want,
                "shards={shards} threads={threads}"
            );
        }
    }

    fn small_scale() -> VoScaleConfig {
        VoScaleConfig {
            regions: 2,
            sites_per_region: 3,
            sessions: 600,
            steps_per_session: 8,
            ..VoScaleConfig::reference()
        }
    }

    #[test]
    fn scale_world_completes_every_session_with_bounded_state() {
        let cfg = small_scale();
        let mut sim = build_vo_scale(&cfg);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("vo.sessions_completed"), cfg.sessions);
        assert_eq!(m.counter("vo.arrivals"), cfg.sessions);
        assert!(m.counter("vo.flash_arrivals") > 0, "bursts fired");
        assert_eq!(m.counter("vo.hops"), m.counter("vo.hops_in"));
        let slow = m.histogram("vo.slowdown_x1000").expect("recorded");
        assert_eq!(slow.count(), cfg.sessions);
        assert!(slow.min() >= 1000, "slowdown is at least 1.0x");
        assert!(slow.p99() >= slow.p50());
        assert!(m.histogram("vo.session_us").is_some());
        assert!(m.histogram("vo.complete_us").is_some());
        // No per-session series anywhere: the whole registry stays a
        // handful of named entries.
        assert!(
            m.tracked_entries() < 32,
            "tracked {} series",
            m.tracked_entries()
        );
        // Sampled traces: retained entries bounded, stream accounted.
        assert!(sim.retained_trace_entries() <= cfg.sites() as usize * cfg.trace_capacity);
        assert_eq!(
            m.counter("trace.sampled") + m.counter("trace.dropped"),
            cfg.sessions,
            "every completion trace passed the sampler"
        );
        let active: u64 = (0..6)
            .map(|i| sim.with_site(i, |s, _| s.world.active))
            .sum();
        assert_eq!(active, 0, "no session left resident");
        let peak: u64 = (0..6)
            .map(|i| sim.with_site(i, |s, _| s.world.peak_active))
            .max()
            .unwrap();
        assert!(peak > 0);
    }

    #[test]
    fn scale_world_is_shard_and_thread_invariant() {
        let run = |shards: usize, threads: usize| {
            let mut sim = build_vo_scale(&small_scale())
                .shards(shards)
                .threads(threads);
            metrics::reset();
            sim.run();
            metrics::reset();
            let checksums: Vec<u64> = (0..6)
                .map(|i| sim.with_site(i, |s, _| s.world.checksum))
                .collect();
            (sim.trace_digest(), sim.merged_metrics(), checksums)
        };
        let want = run(1, 1);
        for (shards, threads) in [(2, 2), (6, 3)] {
            assert_eq!(
                run(shards, threads),
                want,
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn placement_policies_choose_differently_but_all_complete() {
        let mut by_policy = Vec::new();
        for placement in Placement::ALL {
            let cfg = VoScaleConfig {
                placement,
                hop_per_mille: 200,
                ..small_scale()
            };
            let mut sim = build_vo_scale(&cfg);
            metrics::reset();
            sim.run();
            metrics::reset();
            let m = sim.merged_metrics();
            assert_eq!(
                m.counter("vo.sessions_completed"),
                cfg.sessions,
                "{} completes",
                placement.label()
            );
            by_policy.push((placement, m.counter("vo.hops")));
        }
        let sticky = by_policy
            .iter()
            .find(|(p, _)| *p == Placement::Sticky)
            .unwrap();
        assert_eq!(sticky.1, 0, "sticky never migrates");
        for (p, hops) in &by_policy {
            if *p != Placement::Sticky {
                assert!(*hops > 0, "{} migrates", p.label());
            }
        }
    }

    #[test]
    fn session_shares_cover_the_total_exactly() {
        let cfg = VoScaleConfig {
            sessions: 1001,
            ..small_scale()
        };
        let total: u64 = (0..cfg.sites()).map(|i| cfg.sessions_at(i)).sum();
        assert_eq!(total, 1001);
        for i in 1..cfg.sites() {
            assert_eq!(
                cfg.session_base(i),
                cfg.session_base(i - 1) + cfg.sessions_at(i - 1),
                "contiguous id ranges"
            );
        }
    }

    #[test]
    #[should_panic(expected = "packed event word")]
    fn oversized_step_counts_are_rejected() {
        let cfg = VoScaleConfig {
            steps_per_session: 1 << 20,
            ..VoScaleConfig::reference()
        };
        let _ = build_vo_scale(&cfg);
    }

    #[test]
    fn recoveries_retry_with_delay_and_still_complete() {
        // Crank the crash rate: sessions must still all finish, later.
        let mut cfg = small();
        cfg.crash_per_mille = 300;
        cfg.hop_per_mille = 0;
        let mut sim = build_vo(&cfg);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(
            m.counter("vo.sessions_completed"),
            u64::from(cfg.sites * cfg.sessions_per_site)
        );
        assert_eq!(sim.messages(), 0, "hops disabled");
        assert!(m.counter("vo.recoveries") > 50);
    }
}
