//! The Table 2 engine: dynamic VM instantiation timing.
//!
//! A startup sample is one `globusrun` of a VM start, decomposed as:
//!
//! ```text
//! middleware-in  (GSI auth + gatekeeper dispatch)
//! [ image copy ]               persistent disks only
//! monitor setup  (VMM process; lighter for restore)
//! state load     (boot working-set reads OR memory-image read)
//! guest CPU      (kernel init; reboot only)
//! middleware-out (poll rounding + teardown)
//! ```
//!
//! The state-load phase runs against the local file system
//! (**DiskFS**) or a loopback-mounted NFS stack (**LoopbackNFS**),
//! matching the paper's four non-persistent variants; persistent
//! disks pay the explicit copy and then boot out of the warm buffer
//! cache.

use gridvm_gridmw::gram::JobRequest;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::cow::CowOverlay;
use gridvm_storage::disk::{AccessKind, DiskModel, DiskProfile};
use gridvm_storage::image::VmImage;
use gridvm_storage::staging::copy_local;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::boot::{boot_read_runs, BootProfile};
use gridvm_vmm::machine::{DiskMode, Vm, VmConfig};
use gridvm_vmm::snapshot::SuspendImage;

use crate::server::ComputeServer;

/// Cold boot vs warm restore (Table 2's two startup modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StartupMode {
    /// Boot the guest OS from scratch.
    Reboot,
    /// Restore a post-boot memory snapshot.
    Restore,
}

impl std::fmt::Display for StartupMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartupMode::Reboot => f.write_str("VM-reboot"),
            StartupMode::Restore => f.write_str("VM-restore"),
        }
    }
}

/// Where the VM state files live during startup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StateAccess {
    /// The host's native file system.
    DiskFs,
    /// A loopback-mounted NFS partition ("simulating a remote file
    /// system").
    LoopbackNfs,
}

impl std::fmt::Display for StateAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateAccess::DiskFs => f.write_str("DiskFS"),
            StateAccess::LoopbackNfs => f.write_str("LoopbackNFS"),
        }
    }
}

/// One startup scenario.
#[derive(Clone, Debug)]
pub struct StartupConfig {
    /// Reboot or restore.
    pub mode: StartupMode,
    /// Persistent (explicit copy) or non-persistent (COW diff).
    pub disk_mode: DiskMode,
    /// DiskFS or LoopbackNFS state access (persistent implies
    /// DiskFS, as in the paper).
    pub access: StateAccess,
    /// The image to instantiate.
    pub image: VmImage,
    /// Guest configuration.
    pub vm: VmConfig,
    /// Guest boot cost profile.
    pub boot: BootProfile,
}

impl StartupConfig {
    /// The paper's scenario for a given table cell.
    pub fn table2(mode: StartupMode, disk_mode: DiskMode, access: StateAccess) -> Self {
        StartupConfig {
            mode,
            disk_mode,
            access,
            image: VmImage::redhat_guest("rh72"),
            vm: VmConfig::paper_guest("rh72"),
            boot: BootProfile::default(),
        }
    }

    /// Scenario label as the paper prints it.
    pub fn label(&self) -> String {
        match self.disk_mode {
            DiskMode::Persistent => format!("{} / Persistent", self.mode),
            DiskMode::NonPersistent => {
                format!("{} / Non-persistent {}", self.mode, self.access)
            }
        }
    }
}

/// Per-phase timing of one startup sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StartupBreakdown {
    /// GSI authentication + gatekeeper dispatch.
    pub middleware_in: SimDuration,
    /// Explicit image copy (persistent only; zero otherwise).
    pub image_copy: SimDuration,
    /// VMM process/monitor setup.
    pub monitor_setup: SimDuration,
    /// Boot working-set reads or memory-image read.
    pub state_load: SimDuration,
    /// Guest kernel/init CPU (reboot only; zero for restore).
    pub guest_cpu: SimDuration,
    /// Poll rounding + client teardown.
    pub middleware_out: SimDuration,
    /// End-to-end `globusrun` wall time.
    pub total: SimDuration,
}

impl StartupBreakdown {
    /// Total seconds, the figure Table 2 tabulates.
    pub fn total_secs(&self) -> f64 {
        self.total.as_secs_f64()
    }
}

/// Phase-noise multiplier: mechanical and host-load jitter, applied
/// per phase with phase-appropriate spread.
fn jitter(rng: &mut SimRng, sigma: f64) -> f64 {
    (1.0 + rng.normal(0.0, sigma)).max(0.5)
}

/// Runs one startup sample on a fresh compute server.
///
/// The server's disk starts cold (the experiment harness calls
/// [`ComputeServer::fresh_sample`]); determinism follows from `rng`.
///
/// # Panics
///
/// Panics if a persistent scenario is combined with LoopbackNFS (the
/// paper does not define that cell), or if `mode == Restore` but the
/// image carries no memory snapshot.
pub fn run_startup(
    server: &mut ComputeServer,
    cfg: &StartupConfig,
    rng: &mut SimRng,
) -> StartupBreakdown {
    run_startup_at(server, cfg, rng, SimTime::ZERO)
}

/// [`run_startup`] submitted at an arbitrary instant — the building
/// block for concurrency experiments, where several `globusrun`s
/// contend for one gatekeeper and one disk.
///
/// # Panics
///
/// As for [`run_startup`].
pub fn run_startup_at(
    server: &mut ComputeServer,
    cfg: &StartupConfig,
    rng: &mut SimRng,
    t0: SimTime,
) -> StartupBreakdown {
    if cfg.disk_mode == DiskMode::Persistent {
        assert_eq!(
            cfg.access,
            StateAccess::DiskFs,
            "the paper's persistent mode uses the local file system"
        );
    }
    let mut vm = Vm::new(cfg.vm.clone());

    // --- globusrun in: authentication + dispatch ------------------------
    let req = JobRequest {
        executable: "vmware-start".to_owned(),
        subject: "/O=Grid/CN=experimenter".to_owned(),
    };
    let (payload_start, job) = server
        .gram
        .submit(t0, &req)
        .expect("experimenter is in the grid-mapfile");
    let middleware_in = payload_start.duration_since(t0);
    vm.begin_staging(payload_start).expect("fresh VM stages");

    let mut t = payload_start;

    // --- persistent: explicit whole-image copy ---------------------------
    let image_copy = if cfg.disk_mode == DiskMode::Persistent {
        let size: ByteSize = cfg.image.disk_size.into();
        let dst = BlockAddr(cfg.image.disk_blocks());
        let report = copy_local(&mut server.disk, size, dst, t);
        let d = report.elapsed().mul_f64(jitter(rng, 0.035));
        t += d;
        d
    } else {
        // Non-persistent: attach a COW overlay; no copy.
        vm.attach_disk(CowOverlay::new(cfg.image.base_store()));
        SimDuration::ZERO
    };

    // --- monitor setup ----------------------------------------------------
    let monitor_setup = match cfg.mode {
        StartupMode::Reboot => server.cost_model.vm_create,
        StartupMode::Restore => server.cost_model.vm_restore_setup,
    }
    .mul_f64(jitter(rng, 0.08));
    t += monitor_setup;

    match cfg.mode {
        StartupMode::Reboot => vm.begin_boot(t).expect("staged VM boots"),
        StartupMode::Restore => vm.begin_restore(t).expect("staged VM restores"),
    }

    // --- state load --------------------------------------------------------
    let load_started = t;
    let t_loaded = match (cfg.mode, cfg.access) {
        (StartupMode::Reboot, StateAccess::DiskFs) => {
            // Replay the scattered boot working set against the local
            // disk. Persistent-mode copies have left it warm.
            let runs = boot_read_runs(&cfg.image, &cfg.boot);
            let offset = if cfg.disk_mode == DiskMode::Persistent {
                cfg.image.disk_blocks() // reads hit the copied region
            } else {
                0
            };
            let mut tt = t;
            for (start, len) in runs {
                tt = server
                    .disk
                    .access_run(tt, BlockAddr(start.0 + offset), len, AccessKind::Read)
                    .finish;
            }
            tt
        }
        (StartupMode::Reboot, StateAccess::LoopbackNfs) => {
            let mut mount = loopback_state_mount(cfg);
            let (root_fh, mut tt) = state_file(&mut mount, t, "disk.img");
            let bs = ByteSize::from(cfg.image.block_size).as_u64();
            for (start, len) in boot_read_runs(&cfg.image, &cfg.boot) {
                let (done, r) = mount.read_range(tt, root_fh, start.0 * bs, len * bs);
                r.expect("image file is readable");
                tt = done;
            }
            tt
        }
        (StartupMode::Restore, StateAccess::DiskFs) => {
            let img = SuspendImage::for_config(&cfg.vm);
            let blocks = img.blocks(ByteSize::from(cfg.image.block_size));
            // Each session restores *its own* warm state: the memory
            // image sits beyond the disk regions, at a per-job offset
            // so concurrent restores do not alias in the buffer cache.
            let base = cfg.image.disk_blocks() * 3 + job.0 * (blocks + 1);
            server
                .disk
                .access_run(t, BlockAddr(base), blocks, AccessKind::Read)
                .finish
        }
        (StartupMode::Restore, StateAccess::LoopbackNfs) => {
            let mut mount = loopback_state_mount(cfg);
            let (fh, tt) = state_file(&mut mount, t, "memory.std");
            let img = SuspendImage::for_config(&cfg.vm);
            let (done, r) = mount.read_range(tt, fh, 0, img.total().as_u64());
            r.expect("memory image is readable");
            done
        }
    };
    let state_load = t_loaded.duration_since(load_started).mul_f64(jitter(
        rng,
        if cfg.mode == StartupMode::Restore {
            0.22
        } else {
            0.07
        },
    ));
    t = load_started + state_load;

    // --- guest kernel boot CPU ----------------------------------------------
    let guest_cpu = match cfg.mode {
        StartupMode::Reboot => cfg.boot.cpu.mul_f64(jitter(rng, 0.05)),
        StartupMode::Restore => SimDuration::ZERO,
    };
    t += guest_cpu;
    vm.mark_running(t).expect("loaded VM runs");

    // --- globusrun out -------------------------------------------------------
    server
        .gram
        .payload_finished(job, t)
        .expect("job was submitted");
    let end = server.gram.globusrun_end(job).expect("payload reported");
    let middleware_out = end.duration_since(t);

    StartupBreakdown {
        middleware_in,
        image_copy,
        monitor_setup,
        state_load,
        guest_cpu,
        middleware_out,
        total: end.duration_since(t0),
    }
}

/// Builds the loopback NFS mount exporting the VM state files: both
/// the guest disk image and the memory snapshot as synthetic files
/// on a cold server disk.
fn loopback_state_mount(cfg: &StartupConfig) -> Mount {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let t0 = SimTime::ZERO;
    server
        .fs_mut()
        .create_synthetic(
            root,
            "disk.img",
            cfg.image.disk_size.into(),
            cfg.image.content_seed,
            t0,
        )
        .expect("fresh export");
    let snap = SuspendImage::for_config(&cfg.vm);
    server
        .fs_mut()
        .create_synthetic(
            root,
            "memory.std",
            snap.total(),
            cfg.image.content_seed ^ 1,
            t0,
        )
        .expect("fresh export");
    Mount::new(Transport::loopback(), server, None)
}

/// Looks up a state file on the mount, returning its handle and the
/// time after the lookup RPC.
fn state_file(
    mount: &mut Mount,
    now: SimTime,
    name: &str,
) -> (gridvm_vfs::fs::FileHandle, SimTime) {
    let root = mount.server().fs().root();
    let (t, fh) = mount.lookup(now, root, name);
    (fh.expect("state file was exported"), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::stats::OnlineStats;

    fn sample(mode: StartupMode, disk: DiskMode, access: StateAccess, seed: u64) -> f64 {
        let mut server = ComputeServer::paper_node("n");
        let cfg = StartupConfig::table2(mode, disk, access);
        let mut rng = SimRng::seed_from(seed);
        run_startup(&mut server, &cfg, &mut rng).total_secs()
    }

    fn stats(mode: StartupMode, disk: DiskMode, access: StateAccess) -> OnlineStats {
        (0..10)
            .map(|i| sample(mode, disk, access, 100 + i))
            .collect()
    }

    #[test]
    fn restore_diskfs_is_around_twelve_seconds() {
        let s = stats(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        let m = s.mean();
        assert!(
            (9.0..17.0).contains(&m),
            "restore/DiskFS mean {m} (paper: 12.4)"
        );
    }

    #[test]
    fn reboot_diskfs_is_around_seventy_seconds() {
        let s = stats(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        let m = s.mean();
        assert!(
            (60.0..80.0).contains(&m),
            "reboot/DiskFS mean {m} (paper: 69.2)"
        );
    }

    #[test]
    fn loopback_nfs_adds_overhead() {
        let reboot_fs = stats(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        let reboot_nfs = stats(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
        );
        assert!(
            reboot_nfs.mean() > reboot_fs.mean() + 2.0,
            "NFS reboot {} vs DiskFS {}",
            reboot_nfs.mean(),
            reboot_fs.mean()
        );
        let restore_fs = stats(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        let restore_nfs = stats(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
        );
        assert!(
            restore_nfs.mean() > restore_fs.mean() + 5.0,
            "NFS restore {} vs DiskFS {}",
            restore_nfs.mean(),
            restore_fs.mean()
        );
    }

    #[test]
    fn persistent_copies_dominate() {
        let reboot = sample(
            StartupMode::Reboot,
            DiskMode::Persistent,
            StateAccess::DiskFs,
            7,
        );
        let restore = sample(
            StartupMode::Restore,
            DiskMode::Persistent,
            StateAccess::DiskFs,
            7,
        );
        assert!(reboot > 240.0, "persistent reboot {reboot} (paper: 273)");
        assert!(restore > 240.0, "persistent restore {restore} (paper: 269)");
        // After the copy the cache is warm: reboot exceeds restore by
        // little more than the boot CPU.
        assert!(
            (reboot - restore) < 40.0,
            "persistent reboot {reboot} vs restore {restore}"
        );
    }

    #[test]
    fn restore_is_always_faster_than_reboot() {
        for access in [StateAccess::DiskFs, StateAccess::LoopbackNfs] {
            let r = stats(StartupMode::Reboot, DiskMode::NonPersistent, access).mean();
            let s = stats(StartupMode::Restore, DiskMode::NonPersistent, access).mean();
            assert!(s < r, "{access}: restore {s} vs reboot {r}");
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut server = ComputeServer::paper_node("n");
        let cfg = StartupConfig::table2(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        let mut rng = SimRng::seed_from(1);
        let b = run_startup(&mut server, &cfg, &mut rng);
        let parts = b.middleware_in
            + b.image_copy
            + b.monitor_setup
            + b.state_load
            + b.guest_cpu
            + b.middleware_out;
        let diff = parts.as_secs_f64() - b.total.as_secs_f64();
        assert!(
            diff.abs() < 0.6,
            "phases {parts} vs total {} (poll rounding)",
            b.total
        );
        assert_eq!(b.image_copy, SimDuration::ZERO);
        assert!(b.guest_cpu > SimDuration::from_secs(10));
    }

    #[test]
    fn samples_vary_but_reproduce_per_seed() {
        let run = |seed| {
            let mut server = ComputeServer::paper_node("n");
            let cfg = StartupConfig::table2(
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
            );
            run_startup(&mut server, &cfg, &mut SimRng::seed_from(seed))
        };
        assert_eq!(run(1), run(1), "same seed reproduces exactly");
        // `total` is quantized by globusrun's poll interval, so it may
        // collide across seeds; the jittered phases must not.
        assert_ne!(run(1).state_load, run(2).state_load);
    }

    #[test]
    fn labels_match_paper_rows() {
        let cfg = StartupConfig::table2(
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
        );
        assert_eq!(cfg.label(), "VM-reboot / Non-persistent LoopbackNFS");
        let p = StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::Persistent,
            StateAccess::DiskFs,
        );
        assert_eq!(p.label(), "VM-restore / Persistent");
    }

    #[test]
    #[should_panic(expected = "persistent mode uses the local file system")]
    fn persistent_loopback_is_rejected() {
        let mut server = ComputeServer::paper_node("n");
        let cfg = StartupConfig::table2(
            StartupMode::Reboot,
            DiskMode::Persistent,
            StateAccess::LoopbackNfs,
        );
        let _ = run_startup(&mut server, &cfg, &mut SimRng::seed_from(1));
    }
}
