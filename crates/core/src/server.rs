//! The deployable entities of Figure 3: compute servers (VM hosts),
//! plus constructors for image and data servers from the substrate
//! crates.

use gridvm_gridmw::gram::GramServer;
use gridvm_host::HostConfig;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::{Bandwidth, ByteSize};
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_storage::imageserver::ImageServer;
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::VirtCostModel;

/// A virtualized compute server: the physical machine `P`/`V` of the
/// paper's architecture.
///
/// ```
/// use gridvm_core::server::ComputeServer;
/// let server = ComputeServer::paper_node("uf-vm-host");
/// assert_eq!(server.host_config.cores, 2);
/// ```
pub struct ComputeServer {
    /// Site-unique name.
    pub name: String,
    /// Physical CPU configuration.
    pub host_config: HostConfig,
    /// The local disk (fresh, cold cache).
    pub disk: DiskModel,
    /// The Globus gatekeeper on this node.
    pub gram: GramServer,
    /// The VMM cost model of the installed monitor.
    pub cost_model: VirtCostModel,
}

impl std::fmt::Debug for ComputeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputeServer")
            .field("name", &self.name)
            .field("cores", &self.host_config.cores)
            .finish()
    }
}

impl ComputeServer {
    /// The paper's experimental node: dual Pentium III, IDE-class
    /// disk whose buffer cache is large enough to hold a whole
    /// staged image (the effect behind Table 2's persistent rows),
    /// a default gatekeeper, and the fitted VMM cost model.
    pub fn paper_node(name: impl Into<String>) -> Self {
        let mut gram = GramServer::new();
        gram.authorize("/O=Grid/CN=experimenter");
        ComputeServer {
            name: name.into(),
            host_config: HostConfig::default(),
            disk: DiskModel::new(Self::compute_disk_profile()),
            gram,
            cost_model: VirtCostModel::default(),
        }
    }

    /// The compute node's disk profile: IDE-era mechanics with a
    /// buffer cache sized to hold a staged 2 GB image (the paper's
    /// hosts had enough memory that a just-copied image was served
    /// from cache).
    pub fn compute_disk_profile() -> DiskProfile {
        DiskProfile {
            cache_blocks: (ByteSize::from_gib(3).as_u64() / ByteSize::from_kib(4).as_u64())
                as usize,
            ..DiskProfile::ide_2003()
        }
    }

    /// Resets per-sample state: a cold disk (buffer cache dropped),
    /// as between Table 2 samples.
    pub fn fresh_sample(&mut self) {
        self.disk = DiskModel::new(Self::compute_disk_profile());
    }
}

/// Builds the paper's image server `I`: an IDE-class archive with
/// the Red Hat guest image published under `image_name`.
pub fn paper_image_server(image_name: &str) -> ImageServer {
    let mut s = ImageServer::new(DiskModel::new(DiskProfile::ide_2003()));
    s.publish(gridvm_storage::image::VmImage::redhat_guest(image_name))
        .expect("fresh catalog cannot have duplicates");
    s
}

/// Builds the paper's data server `D`: an NFS server with a user
/// home tree (`/home/<user>`) containing an input file of the given
/// size.
pub fn paper_data_server(user: &str, input: ByteSize) -> NfsServer {
    let mut s = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = s.fs().root();
    let t0 = gridvm_simcore::time::SimTime::ZERO;
    let home = s.fs_mut().mkdir(root, "home", t0).expect("fresh fs");
    let udir = s.fs_mut().mkdir(home, user, t0).expect("fresh fs");
    s.fs_mut()
        .create_synthetic(udir, "input.dat", input, 0xDA7A, t0)
        .expect("fresh fs");
    s
}

/// The WAN path between the paper's two sites (UF ↔ Northwestern).
pub fn uf_to_nw_wan() -> (SimDuration, Bandwidth) {
    (
        SimDuration::from_millis(17),
        Bandwidth::from_mbit_per_sec(20.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::time::SimTime;

    #[test]
    fn paper_node_has_expected_shape() {
        let node = ComputeServer::paper_node("n1");
        assert_eq!(node.name, "n1");
        assert_eq!(node.host_config.cores, 2);
        assert!(
            node.disk.cache().capacity() * 4096 >= 2 << 30,
            "cache holds an image"
        );
    }

    #[test]
    fn fresh_sample_drops_cache_state() {
        let mut node = ComputeServer::paper_node("n1");
        use gridvm_storage::block::BlockAddr;
        use gridvm_storage::disk::AccessKind;
        node.disk
            .access(SimTime::ZERO, BlockAddr(1), AccessKind::Read);
        assert_eq!(node.disk.blocks_read(), 1);
        node.fresh_sample();
        assert_eq!(node.disk.blocks_read(), 0);
    }

    #[test]
    fn image_server_serves_the_published_image() {
        let s = paper_image_server("rh72");
        assert!(s.lookup("rh72").is_ok());
        assert!(s.lookup("other").is_err());
    }

    #[test]
    fn data_server_exposes_user_tree() {
        let s = paper_data_server("userA", ByteSize::from_mib(4));
        let fh = s
            .fs()
            .resolve("/home/userA/input.dat")
            .expect("path exists");
        assert_eq!(s.fs().getattr(fh).unwrap().size, 4 * 1024 * 1024);
    }
}
