//! Guest storage over a grid virtual file system: the adapter that
//! carries a VM's file I/O through a PVFS [`Mount`] (Table 1's
//! `VM, PVFS` configuration, and Figure 2's proxy sessions).

use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_storage::block::BlockAddr;
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::mount::Mount;
use gridvm_vmm::exec::{GuestStorage, IO_BLOCK};

/// [`GuestStorage`] backed by one big state file on a VFS mount.
pub struct NfsGuestStorage {
    mount: Mount,
    file: FileHandle,
    client_cpu_per_block: SimDuration,
    label: String,
}

impl std::fmt::Debug for NfsGuestStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NfsGuestStorage")
            .field("label", &self.label)
            .finish()
    }
}

impl NfsGuestStorage {
    /// Wraps `mount`, directing guest I/O at `file`.
    ///
    /// `client_cpu_per_block` is the user-level proxy crossing cost
    /// charged to system time per 8 KiB block (the PVFS tax); pass
    /// [`SimDuration::ZERO`] for a plain kernel NFS mount.
    pub fn new(
        mount: Mount,
        file: FileHandle,
        client_cpu_per_block: SimDuration,
        label: impl Into<String>,
    ) -> Self {
        NfsGuestStorage {
            mount,
            file,
            client_cpu_per_block,
            label: label.into(),
        }
    }

    /// The underlying mount (for proxy statistics).
    pub fn mount(&self) -> &Mount {
        &self.mount
    }
}

impl GuestStorage for NfsGuestStorage {
    fn io_run(&mut self, now: SimTime, start: BlockAddr, count: u64, write: bool) -> SimTime {
        let bs = IO_BLOCK.as_u64();
        let offset = start.0 * bs;
        if write {
            // Writes of synthetic guest data: the byte content is
            // immaterial to timing, so write zeros of the right size
            // per block through the mount.
            let payload = vec![0u8; (count * bs) as usize];
            let (done, r) = self.mount.write_range(now, self.file, offset, &payload);
            // Synthetic read-only state files reject writes; guests
            // write to their own (writable) files, so surface errors.
            if r.is_err() {
                // Fall back to read timing: the mount charged nothing.
                return done;
            }
            done
        } else {
            let (done, r) = self.mount.read_range(now, self.file, offset, count * bs);
            debug_assert!(r.is_ok(), "guest read failed: {r:?}");
            done
        }
    }

    fn client_cpu_per_block(&self) -> SimDuration {
        self.client_cpu_per_block
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::rng::SimRng;
    use gridvm_simcore::units::{ByteSize, CpuWork};
    use gridvm_storage::disk::{DiskModel, DiskProfile};
    use gridvm_vfs::mount::Transport;
    use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
    use gridvm_vfs::server::NfsServer;
    use gridvm_vmm::exec::{run_app, ExecMode};
    use gridvm_vmm::VirtCostModel;
    use gridvm_workloads::{AppProfile, IoPattern};

    fn pvfs_storage(proxied: bool) -> NfsGuestStorage {
        let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
        let root = server.fs().root();
        let t0 = SimTime::ZERO;
        let data = server.fs_mut().create(root, "data", t0).unwrap();
        // Preload a writable 32 MiB working file.
        server
            .fs_mut()
            .write(data, 32 * 1024 * 1024 - 1, &[0], t0)
            .unwrap();
        let proxy = proxied.then(|| VfsProxy::new(ProxyConfig::default()));
        let mount = Mount::new(Transport::wan(), server, proxy);
        NfsGuestStorage::new(
            mount,
            data,
            SimDuration::from_micros(93),
            if proxied { "PVFS" } else { "NFS/WAN" },
        )
    }

    fn app() -> AppProfile {
        AppProfile::new("io-app", CpuWork::from_cycles(900_000_000))
            .with_syscalls(10_000)
            .with_reads(ByteSize::from_mib(16), IoPattern::Sequential)
            .with_writes(ByteSize::from_mib(4))
    }

    #[test]
    fn guest_io_flows_through_the_mount() {
        let mut storage = pvfs_storage(true);
        let mut rng = SimRng::seed_from(1);
        let report = run_app(
            &app(),
            ExecMode::Virtualized,
            &VirtCostModel::default(),
            &mut storage,
            933e6,
            SimTime::ZERO,
            &mut rng,
        );
        assert!(storage.mount().rpcs_sent() > 0, "I/O crossed the wire");
        assert!(
            report.sys > SimDuration::from_millis(200),
            "proxy tax in sys"
        );
    }

    #[test]
    fn proxy_cuts_wan_read_time() {
        let run_with = |proxied: bool| {
            let mut storage = pvfs_storage(proxied);
            let mut rng = SimRng::seed_from(2);
            let r = run_app(
                &app(),
                ExecMode::Virtualized,
                &VirtCostModel::default(),
                &mut storage,
                933e6,
                SimTime::ZERO,
                &mut rng,
            );
            r.io_wall
        };
        let direct = run_with(false);
        let proxied = run_with(true);
        assert!(
            proxied.as_secs_f64() < direct.as_secs_f64() * 0.7,
            "proxied {proxied} vs direct {direct}"
        );
    }

    #[test]
    fn label_reflects_configuration() {
        assert_eq!(pvfs_storage(true).label(), "PVFS");
        assert_eq!(pvfs_storage(false).label(), "NFS/WAN");
    }
}
