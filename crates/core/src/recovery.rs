//! Self-healing grid sessions under injected faults.
//!
//! Section 3.1 argues that classic VMs make whole-environment
//! recovery a first-class grid operation: a session interrupted by a
//! compute-server failure can be resumed "from the most recent
//! checkpoint" on a different virtualized server, because the entire
//! computing environment — not just the process — is serializable.
//! This module drives the Figure 3 life cycle against a multi-host
//! [`Cluster`] and a seeded [`FaultPlan`], reacting to each injected
//! fault the way 2003-era middleware would:
//!
//! * **host crash** — detect, re-run resource selection through the
//!   information service (with per-RPC retries), transfer the last
//!   checkpoint image ([`SuspendImage`]) to a surviving host over the
//!   site LAN, resume there ([`migration`](crate::migration)-style
//!   monitor setup + warm state read), resubmit through GRAM and
//!   re-handshake the data sessions;
//! * **host/storage slowdown** — the guest's progress rate and its
//!   checkpoint overhead stretch accordingly;
//! * **link partition** — transfers wait for the scheduled heal up to
//!   a patience bound, then fail loudly;
//! * **link loss / NFS timeout** — individual RPCs fail and are
//!   retried under the middleware [`RetryPolicy`];
//! * **storage I/O error** — a checkpoint commit in flight fails the
//!   session with a typed error.
//!
//! Every consumed fault and every recovery phase is recorded in the
//! metrics registry and the session [`TraceLog`], so the chaos bench
//! and the golden-trace tests can pin the whole causal history from
//! one seed.

use gridvm_gridmw::gram::JobRequest;
use gridvm_gridmw::info::{InfoService, Query, ResourceId, ResourceKind};
use gridvm_gridmw::retry::{retry_rpc, RetryPolicy};
use gridvm_simcore::fault::{FaultEvent, FaultFeed, FaultKind, FaultPlan};
use gridvm_simcore::metrics;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::trace::TraceLog;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::disk::AccessKind;
use gridvm_storage::imageserver::ImageServer;
use gridvm_vfs::mount::Transport;
use gridvm_vmm::exec::{run_app, ExecMode, LocalDiskStorage};
use gridvm_vmm::snapshot::SuspendImage;
use gridvm_vnet::addr::{Ipv4Addr, MacAddr, Subnet};
use gridvm_vnet::dhcp::DhcpServer;
use gridvm_vnet::link::NetLink;

use crate::server::{paper_data_server, paper_image_server, ComputeServer};
use crate::session::{SessionError, SessionRequest};
use crate::startup::run_startup_at;

/// One query round-trip to the information service (mirrors the
/// session module's constant).
const INFO_QUERY_COST: SimDuration = SimDuration::from_millis(120);

/// Mount-handshake RPCs for a new VFS session (mirrors the session
/// module's constant).
const MOUNT_SETUP_RPCS: u64 = 3;

/// The grid identity compute nodes authorize (see
/// [`ComputeServer::paper_node`]).
const EXPERIMENTER: &str = "/O=Grid/CN=experimenter";

/// A multi-host deployment: the Figure 3 world with several
/// candidate compute servers, so a session has somewhere to go when
/// its host dies.
pub struct Cluster {
    /// The information service all hosts register with.
    pub info: InfoService,
    /// The candidate compute servers, named `node0..nodeN-1` — fault
    /// plans address them by these names.
    pub hosts: Vec<ComputeServer>,
    /// The VM-future record of each host (parallel to `hosts`).
    pub futures: Vec<ResourceId>,
    /// The image server `I`.
    pub image_server: ImageServer,
    /// The user's data server, when deployed.
    pub data_server: Option<gridvm_vfs::server::NfsServer>,
    /// Address allocation on the compute site's network.
    pub dhcp: DhcpServer,
    /// Each host's site-LAN access link (parallel to `hosts`); link
    /// faults address the destination host's name.
    pub links: Vec<NetLink>,
}

impl Cluster {
    /// A paper-style site: `n` dual-CPU compute nodes on a 100 Mbit/s
    /// LAN, one image server publishing `image`, and a data server
    /// holding `user`'s home tree.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn paper_lan(n: usize, image: &str, user: &str) -> Self {
        assert!(n > 0, "a cluster needs at least one host");
        let mut info = InfoService::new().with_propagation(SimDuration::ZERO);
        let mut hosts = Vec::with_capacity(n);
        let mut futures = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("node{i}");
            let record = info.register(
                SimTime::ZERO,
                "compute-site",
                ResourceKind::PhysicalHost {
                    cores: 2,
                    clock_hz: 800e6,
                    memory_mib: 1024,
                },
            );
            let future = info.register(
                SimTime::ZERO,
                "compute-site",
                ResourceKind::VmFuture {
                    host: record,
                    images: vec![image.to_owned()],
                    available_slots: 4,
                },
            );
            futures.push(future);
            hosts.push(ComputeServer::paper_node(name));
            links.push(NetLink::new(
                SimDuration::from_micros(300),
                gridvm_simcore::units::Bandwidth::from_mbit_per_sec(100.0),
            ));
        }
        info.register(
            SimTime::ZERO,
            "image-site",
            ResourceKind::ImageServer {
                images: vec![image.to_owned()],
            },
        );
        Cluster {
            info,
            hosts,
            futures,
            image_server: paper_image_server(image),
            data_server: Some(paper_data_server(user, ByteSize::from_mib(8))),
            dhcp: DhcpServer::new(
                Subnet::new(Ipv4Addr::from_octets(10, 8, 0, 0), 24),
                SimDuration::from_secs(3600),
            ),
            links,
        }
    }

    /// The lowest-indexed host not crashed (per `plan`) as of `now`,
    /// excluding `avoid` (the host just lost). The information-service
    /// query result seeds the candidate order; the full host list is
    /// the deterministic fallback when partial query results miss
    /// every survivor.
    pub fn surviving_host(
        &mut self,
        plan: &FaultPlan,
        now: SimTime,
        avoid: Option<usize>,
        image: &str,
        rng: &mut SimRng,
    ) -> Option<usize> {
        let alive =
            |i: &usize| -> bool { avoid != Some(*i) && !plan.host_down(&self.hosts[*i].name, now) };
        let candidates = self
            .info
            .query_at(now, &Query::CanInstantiate(image.to_owned()), 4, rng);
        let mut from_query: Vec<usize> = candidates
            .iter()
            .filter_map(|r| self.futures.iter().position(|f| *f == r.id))
            .filter(alive)
            .collect();
        from_query.sort_unstable();
        from_query
            .first()
            .copied()
            .or_else(|| (0..self.hosts.len()).find(alive))
    }
}

/// Tunables of the recovery machinery.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// How often the guest's state is checkpointed (work-time between
    /// consistent suspend images).
    pub checkpoint_interval: SimDuration,
    /// Cost of writing one checkpoint image (charged as a rate
    /// overhead on guest progress).
    pub checkpoint_cost: SimDuration,
    /// Time for the middleware to notice a dead host (missed
    /// heartbeats).
    pub detect_timeout: SimDuration,
    /// How long a recovery transfer waits for a partitioned link to
    /// heal before giving up.
    pub partition_patience: SimDuration,
    /// The per-RPC retry policy for information-service and transfer
    /// calls.
    pub retry: RetryPolicy,
}

impl Default for RecoveryConfig {
    /// 30 s checkpoints costing 2 s each, 2 s failure detection, 120 s
    /// partition patience, default middleware retries.
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: SimDuration::from_secs(30),
            checkpoint_cost: SimDuration::from_secs(2),
            detect_timeout: SimDuration::from_secs(2),
            partition_patience: SimDuration::from_secs(120),
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a chaos session ended without completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosError {
    /// Establishment failed before the application started.
    Establish(
        /// The underlying session error.
        SessionError,
    ),
    /// Every candidate host had crashed.
    NoSurvivingHost {
        /// When the search gave up.
        at: SimTime,
    },
    /// A retried operation spent its whole budget.
    RetryBudgetExhausted {
        /// Which operation gave up.
        op: &'static str,
        /// When it gave up.
        at: SimTime,
    },
    /// A storage fault hit a checkpoint commit in flight.
    StorageFault {
        /// Which operation the fault hit.
        op: &'static str,
        /// When.
        at: SimTime,
    },
    /// A partitioned link did not heal within the patience bound.
    PartitionTimeout {
        /// How long the heal would have taken (or the patience bound
        /// when no heal was scheduled).
        waited: SimDuration,
        /// When the transfer gave up.
        at: SimTime,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Establish(e) => write!(f, "session establishment failed: {e}"),
            ChaosError::NoSurvivingHost { at } => {
                write!(f, "no surviving host at {at}")
            }
            ChaosError::RetryBudgetExhausted { op, at } => {
                write!(f, "{op} exhausted its retry budget at {at}")
            }
            ChaosError::StorageFault { op, at } => {
                write!(f, "storage fault during {op} at {at}")
            }
            ChaosError::PartitionTimeout { waited, at } => {
                write!(f, "partition outlived patience ({waited} needed) at {at}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// One crash-recovery episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Host index that crashed.
    pub from_host: usize,
    /// Host index the session resumed on.
    pub to_host: usize,
    /// When the crash fired.
    pub crash_at: SimTime,
    /// When the guest was running again.
    pub resumed_at: SimTime,
    /// Guest work redone (progress past the last checkpoint).
    pub lost_work: SimDuration,
}

impl RecoveryRecord {
    /// Guest downtime: crash through resume.
    pub fn downtime(&self) -> SimDuration {
        self.resumed_at.duration_since(self.crash_at)
    }
}

/// A completed chaos session.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// End-to-end time, establishment through application completion.
    pub total: SimDuration,
    /// Establishment time (Figure 3 steps 1–5, fault-free portion).
    pub establish: SimDuration,
    /// VM startup time within establishment (the Table 2 quantity,
    /// for the attempt that finally stuck).
    pub startup_total: SimDuration,
    /// The application's fault-free wall time (what Table 2 would
    /// have measured).
    pub app_nominal: SimDuration,
    /// Each crash-recovery episode, in order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Host index the application finished on.
    pub finished_on: usize,
    /// The VM's leased address.
    pub address: Ipv4Addr,
}

impl ChaosReport {
    /// Number of suspend–transfer–resume migrations performed.
    pub fn migrations(&self) -> usize {
        self.recoveries.len()
    }
}

/// Counts the fault in the metrics registry and records it in the
/// trace.
fn note_fault(trace: &mut TraceLog, e: &FaultEvent) {
    metrics::counter_add(e.kind.counter_name(), 1);
    trace.record(e.at, "fault", format!("{:?} on {}", e.kind, e.target));
}

/// An information-service query under the retry policy: unconsumed
/// NFS-timeout faults due by an attempt's end fail that attempt.
fn info_query_with_retry(
    feed: &mut FaultFeed,
    cfg: &RecoveryConfig,
    trace: &mut TraceLog,
    t: SimTime,
    rng: &mut SimRng,
    op: &'static str,
) -> Result<SimTime, ChaosError> {
    let (finish, result) = retry_rpc(&cfg.retry, t, rng, |start, _| {
        let finish = start + INFO_QUERY_COST;
        match feed.take_matching(SimTime::ZERO, finish, |e| e.kind == FaultKind::NfsTimeout) {
            Some(e) => {
                note_fault(trace, e);
                (finish, Err(()))
            }
            None => (finish, Ok(())),
        }
    });
    match result {
        Ok(()) => Ok(finish),
        Err(_) => {
            trace.record(finish, "recovery", format!("{op} gave up"));
            Err(ChaosError::RetryBudgetExhausted { op, at: finish })
        }
    }
}

/// Runs a session end to end under `plan`, healing around injected
/// faults, starting at `SimTime::ZERO`.
///
/// On success the report carries every recovery episode; on failure
/// the error is typed and the trace records how far the session got.
/// `chaos.sessions_completed` / `chaos.sessions_failed` count the
/// outcomes.
///
/// # Errors
///
/// [`ChaosError`] — see its variants.
pub fn run_resilient_session(
    cluster: &mut Cluster,
    req: &SessionRequest,
    cfg: &RecoveryConfig,
    plan: &FaultPlan,
    rng: &mut SimRng,
    trace: &mut TraceLog,
) -> Result<ChaosReport, ChaosError> {
    let result = drive_session(cluster, req, cfg, plan, rng, trace);
    match &result {
        Ok(_) => metrics::counter_add("chaos.sessions_completed", 1),
        Err(e) => {
            metrics::counter_add("chaos.sessions_failed", 1);
            trace.record(SimTime::ZERO, "session", format!("failed: {e}"));
        }
    }
    result
}

fn drive_session(
    cluster: &mut Cluster,
    req: &SessionRequest,
    cfg: &RecoveryConfig,
    plan: &FaultPlan,
    rng: &mut SimRng,
    trace: &mut TraceLog,
) -> Result<ChaosReport, ChaosError> {
    let mut feed = FaultFeed::new(plan);
    let t0 = SimTime::ZERO;
    let mut t = t0;
    trace.record(t, "session", format!("establish for {}", req.user));

    // Steps 1–2: discovery, each a retried information-service query.
    t = info_query_with_retry(&mut feed, cfg, trace, t, rng, "future-discovery")?;
    t = info_query_with_retry(&mut feed, cfg, trace, t, rng, "image-discovery")?;
    if cluster.image_server.lookup(&req.image).is_err() {
        return Err(ChaosError::Establish(SessionError::NoImageServer(
            req.image.clone(),
        )));
    }
    let Some(mut host_idx) = cluster.surviving_host(plan, t, None, &req.image, rng) else {
        return Err(ChaosError::Establish(SessionError::NoMatchingFuture));
    };

    // Step 3: image data session.
    t += Transport::lan().round_trip_estimate() * MOUNT_SETUP_RPCS;

    // Step 4: VM startup via GRAM; a crash mid-startup moves the whole
    // submission to another host.
    let startup = loop {
        let host_name = cluster.hosts[host_idx].name.clone();
        let breakdown = run_startup_at(&mut cluster.hosts[host_idx], &req.startup, rng, t);
        let end = t + breakdown.total;
        match feed.take_matching(t, end, |e| {
            e.target == host_name && e.kind == FaultKind::HostCrash
        }) {
            None => {
                t = end;
                break breakdown;
            }
            Some(crash) => {
                note_fault(trace, crash);
                metrics::counter_add("recovery.startup_retries", 1);
                t = crash.at + cfg.detect_timeout;
                t = info_query_with_retry(&mut feed, cfg, trace, t, rng, "startup-reselect")?;
                host_idx = cluster
                    .surviving_host(plan, t, Some(host_idx), &req.image, rng)
                    .ok_or(ChaosError::NoSurvivingHost { at: t })?;
                trace.record(t, "recovery", format!("startup moved to node{host_idx}"));
            }
        }
    };

    // Step 4 (cont.): address the VM.
    let vm_record = cluster.info.register(
        t,
        "compute-site",
        ResourceKind::VmInstance {
            host: cluster.futures[host_idx],
            guest_os: req.startup.image.os.clone(),
            memory_mib: req.startup.vm.memory.as_u64() / (1024 * 1024),
        },
    );
    let mac = MacAddr::local(0xF0F0_0000 ^ vm_record.0);
    let lease = match cluster.dhcp.acquire(t, mac) {
        Ok(l) => l,
        Err(_) => {
            cluster.info.deregister(vm_record);
            return Err(ChaosError::Establish(SessionError::NoAddress));
        }
    };

    // Step 5: guest data session.
    if let Some(server) = &cluster.data_server {
        let data_path = format!("/home/{}/input.dat", req.user);
        if server.fs().resolve(&data_path).is_err() {
            return Err(ChaosError::Establish(SessionError::DataPathMissing(
                data_path,
            )));
        }
        t += Transport::wan().round_trip_estimate() * MOUNT_SETUP_RPCS;
    }
    let establish = t.duration_since(t0);
    trace.record(t, "session", format!("established on node{host_idx}"));

    // Step 6: the application, under checkpointing and crashes. The
    // fault-free wall time anchors the work-remaining accounting.
    let app_nominal = {
        let host = &mut cluster.hosts[host_idx];
        let cost_model = host.cost_model;
        let clock = host.host_config.clock_hz;
        let mut storage = LocalDiskStorage::new(&mut host.disk);
        run_app(
            &req.app,
            ExecMode::Virtualized,
            &cost_model,
            &mut storage,
            clock,
            t,
            rng,
        )
        .wall
    };
    let snapshot = SuspendImage::for_config(&req.startup.vm);
    let mut remaining = app_nominal;
    let mut recoveries = Vec::new();
    loop {
        let host_name = cluster.hosts[host_idx].name.clone();
        let horizon = t + remaining.mul_f64(8.0) + SimDuration::from_secs(3600);

        // Degradations active on this host stretch the stint.
        let mut host_slow = 0u32;
        while let Some(e) = feed.take_matching(SimTime::ZERO, horizon, |e| {
            e.target == host_name && matches!(e.kind, FaultKind::HostSlowdown { .. })
        }) {
            if let FaultKind::HostSlowdown { percent } = e.kind {
                host_slow = host_slow.max(percent);
            }
            note_fault(trace, e);
        }
        let mut disk_slow = 0u32;
        while let Some(e) = feed.take_matching(SimTime::ZERO, horizon, |e| {
            e.target == host_name && matches!(e.kind, FaultKind::StorageSlow { .. })
        }) {
            if let FaultKind::StorageSlow { percent } = e.kind {
                disk_slow = disk_slow.max(percent);
            }
            note_fault(trace, e);
            cluster.hosts[host_idx].disk.set_slowdown_percent(disk_slow);
        }
        let ckpt_cost = cfg.checkpoint_cost.mul_f64(1.0 + disk_slow as f64 / 100.0);
        let effective = (1.0 + host_slow as f64 / 100.0)
            * (1.0 + ckpt_cost.as_secs_f64() / cfg.checkpoint_interval.as_secs_f64());
        let planned_end = t + remaining.mul_f64(effective);

        let Some(crash) = feed.take_matching(t, planned_end, |e| {
            e.target == host_name && e.kind == FaultKind::HostCrash
        }) else {
            // Fault-free to the finish line.
            t = planned_end;
            break;
        };
        note_fault(trace, crash);
        let tc = crash.at;

        // Progress at the crash, rounded down to the last checkpoint.
        let progress = tc.duration_since(t).as_secs_f64() / effective;
        let interval = cfg.checkpoint_interval.as_secs_f64();
        let checkpoints = (progress / interval).floor();
        let saved = SimDuration::from_secs_f64(checkpoints * interval).min(remaining);
        let lost = SimDuration::from_secs_f64(progress).saturating_sub(saved);
        remaining = remaining.saturating_sub(saved);
        metrics::counter_add("recovery.checkpoints", checkpoints as u64);
        metrics::counter_add(
            "recovery.lost_work_ms",
            (lost.as_secs_f64() * 1000.0) as u64,
        );
        trace.record(
            tc,
            "recovery",
            format!("node{host_idx} lost; {checkpoints} checkpoints survive"),
        );

        // Detect, re-select, transfer, resume, resubmit, reconnect.
        let mut rt = tc + cfg.detect_timeout;
        rt = info_query_with_retry(&mut feed, cfg, trace, rt, rng, "crash-reselect")?;
        let next = cluster
            .surviving_host(plan, rt, Some(host_idx), &req.image, rng)
            .ok_or(ChaosError::NoSurvivingHost { at: rt })?;
        let next_name = cluster.hosts[next].name.clone();
        let lookahead = rt + cfg.partition_patience;

        // Storage fault at the destination kills the checkpoint
        // commit.
        if let Some(e) = feed.take_matching(SimTime::ZERO, lookahead, |e| {
            e.target == next_name && e.kind == FaultKind::StorageIoError
        }) {
            note_fault(trace, e);
            return Err(ChaosError::StorageFault {
                op: "checkpoint-commit",
                at: rt,
            });
        }

        // Partition on the destination's link: wait for the scheduled
        // heal, within patience.
        if let Some(e) = feed.take_matching(SimTime::ZERO, lookahead, |e| {
            e.target == next_name && matches!(e.kind, FaultKind::LinkPartition { .. })
        }) {
            note_fault(trace, e);
            if let FaultKind::LinkPartition { heal_after } = e.kind {
                if !heal_after.is_zero() {
                    cluster.links[next].schedule_outage(e.at, e.at + heal_after);
                }
            }
        }
        if !cluster.links[next].up_at(rt) {
            match cluster.links[next].outage_until(rt) {
                Some(heal) if heal.duration_since(rt) <= cfg.partition_patience => {
                    trace.record(rt, "recovery", format!("waiting out partition to {heal}"));
                    rt = heal;
                }
                Some(heal) => {
                    return Err(ChaosError::PartitionTimeout {
                        waited: heal.duration_since(rt),
                        at: rt,
                    });
                }
                None => {
                    return Err(ChaosError::PartitionTimeout {
                        waited: cfg.partition_patience,
                        at: rt,
                    });
                }
            }
        }

        // Packet loss costs one retransmission under the policy.
        if let Some(e) = feed.take_matching(SimTime::ZERO, lookahead, |e| {
            e.target == next_name && e.kind == FaultKind::LinkLoss
        }) {
            note_fault(trace, e);
            metrics::counter_add("gridmw.rpc_retries", 1);
            let delay = cfg
                .retry
                .backoff(rng.split("transfer-loss"))
                .next()
                .unwrap_or(cfg.retry.base);
            rt = rt + cfg.retry.base + delay;
        }

        // Transfer the checkpoint image, write-through at the
        // destination (migration-style suspend/copy/resume).
        let payload = snapshot.total();
        let block = cluster.hosts[next].disk.profile().block_size;
        let sent = match cluster.links[next].send(rt, payload) {
            Ok(g) => g,
            Err(_) => {
                return Err(ChaosError::PartitionTimeout {
                    waited: cfg.partition_patience,
                    at: rt,
                });
            }
        };
        let written = cluster.hosts[next].disk.access_run(
            rt,
            BlockAddr(1 << 33),
            snapshot.blocks(block),
            AccessKind::Write,
        );
        rt = sent.finish.max(written.finish);

        // Resume: monitor setup plus a warm re-read of the image.
        let setup = cluster.hosts[next].cost_model.vm_restore_setup;
        let read = cluster.hosts[next].disk.access_run(
            rt + setup,
            BlockAddr(1 << 33),
            snapshot.blocks(block),
            AccessKind::Read,
        );
        rt = read.finish;

        // GRAM resubmission on the destination.
        let gram_req = JobRequest {
            executable: "vmware-resume".to_owned(),
            subject: EXPERIMENTER.to_owned(),
        };
        let (payload_start, _job) = cluster.hosts[next]
            .gram
            .resubmit(rt, &gram_req)
            .expect("compute nodes authorize the experimenter");
        rt = payload_start;

        // Reconnect the data sessions, through any latency spike on
        // the destination.
        let mut lan = Transport::lan();
        if let Some(e) = feed.take_matching(SimTime::ZERO, lookahead, |e| {
            e.target == next_name && matches!(e.kind, FaultKind::LatencySpike { .. })
        }) {
            note_fault(trace, e);
            if let FaultKind::LatencySpike { extra } = e.kind {
                lan.add_rpc_latency(extra);
            }
        }
        rt += lan.round_trip_estimate() * MOUNT_SETUP_RPCS;

        let record = RecoveryRecord {
            from_host: host_idx,
            to_host: next,
            crash_at: tc,
            resumed_at: rt,
            lost_work: lost,
        };
        metrics::counter_add("recovery.migrations", 1);
        metrics::counter_add(
            "recovery.downtime_ms",
            (record.downtime().as_secs_f64() * 1000.0) as u64,
        );
        trace.record(
            rt,
            "recovery",
            format!("resumed on node{next} after {}", record.downtime()),
        );
        recoveries.push(record);
        host_idx = next;
        t = rt;
    }

    trace.record(t, "session", format!("completed on node{host_idx}"));
    Ok(ChaosReport {
        total: t.duration_since(t0),
        establish,
        startup_total: startup.total,
        app_nominal,
        recoveries,
        finished_on: host_idx,
        address: lease.addr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::startup::{StartupConfig, StartupMode, StateAccess};
    use gridvm_simcore::units::CpuWork;
    use gridvm_vmm::machine::DiskMode;
    use gridvm_workloads::AppProfile;

    fn request() -> SessionRequest {
        SessionRequest {
            user: "userX".into(),
            image: "rh72".into(),
            min_cores: 2,
            startup: StartupConfig::table2(
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
            ),
            // ~2 minutes of guest work: room for several checkpoints.
            app: AppProfile::new("chaos-app", CpuWork::from_cycles(96_000_000_000)),
        }
    }

    fn run(plan: &FaultPlan, seed: u64) -> Result<ChaosReport, ChaosError> {
        let mut cluster = Cluster::paper_lan(3, "rh72", "userX");
        let mut rng = SimRng::seed_from(seed);
        let mut trace = TraceLog::default();
        run_resilient_session(
            &mut cluster,
            &request(),
            &RecoveryConfig::default(),
            plan,
            &mut rng,
            &mut trace,
        )
    }

    #[test]
    fn fault_free_session_completes_without_recoveries() {
        let report = run(&FaultPlan::new(), 1).expect("clean run");
        assert!(report.recoveries.is_empty());
        assert_eq!(report.finished_on, 0);
        assert!(report.app_nominal > SimDuration::from_secs(60));
        assert!(report.total > report.establish + report.app_nominal);
    }

    #[test]
    fn mid_run_crash_recovers_on_another_host() {
        // Crash node0 one minute into the run: two 30 s checkpoints
        // survive, the session resumes on node1.
        let plan = FaultPlan::new().with("node0", SimTime::from_secs(80), FaultKind::HostCrash);
        let clean = run(&FaultPlan::new(), 1).expect("clean");
        let report = run(&plan, 1).expect("recovers");
        assert_eq!(report.migrations(), 1);
        let r = report.recoveries[0];
        assert_eq!(r.from_host, 0);
        assert_eq!(r.to_host, 1);
        assert_eq!(report.finished_on, 1);
        assert!(r.lost_work < RecoveryConfig::default().checkpoint_interval);
        assert!(
            report.total > clean.total,
            "recovery must cost wall time: {} vs {}",
            report.total,
            clean.total
        );
    }

    #[test]
    fn every_host_dead_is_a_typed_failure() {
        let mut plan = FaultPlan::new();
        for node in ["node0", "node1", "node2"] {
            plan = plan.with(node, SimTime::from_secs(70), FaultKind::HostCrash);
        }
        let err = run(&plan, 1).unwrap_err();
        assert!(matches!(err, ChaosError::NoSurvivingHost { .. }), "{err}");
    }

    #[test]
    fn unhealing_partition_fails_the_transfer() {
        let patience = RecoveryConfig::default().partition_patience;
        let plan = FaultPlan::new()
            .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
            .with(
                "node1",
                SimTime::from_secs(80),
                FaultKind::LinkPartition {
                    heal_after: patience * 3,
                },
            );
        let err = run(&plan, 1).unwrap_err();
        assert!(matches!(err, ChaosError::PartitionTimeout { .. }), "{err}");
    }

    #[test]
    fn short_partition_is_waited_out() {
        let plan = FaultPlan::new()
            .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
            .with(
                "node1",
                SimTime::from_secs(80),
                FaultKind::LinkPartition {
                    heal_after: SimDuration::from_secs(30),
                },
            );
        let report = run(&plan, 1).expect("waits out the partition");
        assert_eq!(report.migrations(), 1);
        assert!(
            report.recoveries[0].downtime() > SimDuration::from_secs(25),
            "downtime must include the partition wait: {}",
            report.recoveries[0].downtime()
        );
    }

    #[test]
    fn slowdown_stretches_the_run_without_failing_it() {
        let plan = FaultPlan::new().with(
            "node0",
            SimTime::from_secs(40),
            FaultKind::HostSlowdown { percent: 100 },
        );
        let clean = run(&FaultPlan::new(), 1).expect("clean");
        let slowed = run(&plan, 1).expect("slow but alive");
        assert!(slowed.recoveries.is_empty());
        assert!(slowed.total > clean.total);
    }

    #[test]
    fn identical_inputs_reproduce_identical_reports() {
        let plan = FaultPlan::new()
            .with("node0", SimTime::from_secs(80), FaultKind::HostCrash)
            .with("node1", SimTime::from_secs(100), FaultKind::LinkLoss);
        let a = run(&plan, 7).expect("run a");
        let b = run(&plan, 7).expect("run b");
        assert_eq!(a.total, b.total);
        assert_eq!(a.recoveries, b.recoveries);
    }

    #[test]
    fn error_display_names_the_cause() {
        let e = ChaosError::PartitionTimeout {
            waited: SimDuration::from_secs(200),
            at: SimTime::from_secs(90),
        };
        assert!(e.to_string().contains("partition"));
        let e = ChaosError::StorageFault {
            op: "checkpoint-commit",
            at: SimTime::from_secs(90),
        };
        assert!(e.to_string().contains("checkpoint-commit"));
    }
}
