//! # gridvm-core
//!
//! The paper's primary contribution assembled: grid computing on
//! classic virtual machines. This crate wires the substrates —
//! hosts and schedulers, the VMM model, storage, the grid virtual
//! file system, virtual networking and grid middleware — into the
//! architecture of Section 4 and the experiments of Section 2.3.
//!
//! * [`server`] — the deployable entities: compute servers (VM
//!   hosts), image servers and data servers, each with its disks,
//!   gatekeeper and cost models.
//! * [`startup`] — the Table 2 engine: instantiating a VM by
//!   **reboot** or **restore**, over a **persistent** (explicitly
//!   copied) or **non-persistent** (copy-on-write) disk, with state
//!   on the local file system (**DiskFS**) or through a
//!   loopback-mounted NFS stack (**LoopbackNFS**), all framed by a
//!   `globusrun` submission.
//! * [`nfsdisk`] — the adapter that lets a guest's file I/O flow
//!   through a grid-virtual-file-system [`Mount`](gridvm_vfs::Mount)
//!   (Table 1's `VM, PVFS` rows).
//! * [`session`] — the six-step session life cycle of Figure 3:
//!   information-service queries, image selection, data sessions,
//!   VM startup, guest data sessions, application execution.
//! * [`frontend`] — the service-provider scenario of Figure 3:
//!   service VMs multiplexed across users through logical user
//!   accounts.
//! * [`migration`] — suspending, moving and resuming a whole
//!   computing environment while its virtual-file-system sessions
//!   stay live (Section 3.1 "virtual machine migration").
//! * [`recovery`] — the self-healing session life cycle: a
//!   multi-host [`Cluster`](recovery::Cluster) driven under a seeded
//!   [`FaultPlan`](gridvm_simcore::fault::FaultPlan), where a host
//!   crash triggers suspend-from-checkpoint, transfer and resume on
//!   a surviving host (Section 3.1 fault tolerance).
//! * [`multisite`] — the virtual-organization macro-scenario: many
//!   concurrent sessions per site hopping across inter-site links and
//!   recovering from crashes, run over the sharded conservative
//!   simulator ([`gridvm_simcore::shard`]) with bit-identical results
//!   at any shard/thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frontend;
pub mod migration;
pub mod multisite;
pub mod nfsdisk;
pub mod recovery;
pub mod server;
pub mod session;
pub mod startup;

pub use frontend::ServiceProvider;
pub use multisite::{build_vo, VoConfig, VoSite};
pub use nfsdisk::NfsGuestStorage;
pub use recovery::{run_resilient_session, ChaosError, ChaosReport, Cluster, RecoveryConfig};
pub use server::ComputeServer;
pub use session::{GridSession, SessionReport, SessionRequest};
pub use startup::{
    run_startup, run_startup_at, StartupBreakdown, StartupConfig, StartupMode, StateAccess,
};
