//! The quantum-driven scheduler interface shared by all policies.
//!
//! The host simulator calls [`Scheduler::select`] once per quantum
//! with the current runnable set; the scheduler returns at most
//! `cores` distinct tasks to run. After the quantum the host reports
//! actual consumption through [`Scheduler::charge`] so stateful
//! policies (stride passes, WFQ virtual times, EDF budgets) stay
//! accurate even when a task finishes mid-quantum.

use std::fmt;

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

/// Identifies a schedulable task (a process or a VMM process) on one
/// host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// A periodic CPU reservation: `slice` of CPU every `period`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Replenishment period.
    pub period: SimDuration,
    /// CPU granted per period.
    pub slice: SimDuration,
}

impl Reservation {
    /// Fraction of one CPU this reservation consumes.
    pub fn utilization(&self) -> f64 {
        self.slice.as_secs_f64() / self.period.as_secs_f64()
    }
}

/// Scheduler-visible parameters of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskParams {
    /// Proportional-share weight (tickets for lottery, weight for
    /// stride/WFQ/round-robin). Must be at least 1.
    pub weight: u32,
    /// Optional real-time reservation (used by [`crate::edf`]).
    pub reservation: Option<Reservation>,
}

impl Default for TaskParams {
    fn default() -> Self {
        TaskParams {
            weight: 100,
            reservation: None,
        }
    }
}

impl TaskParams {
    /// Parameters with the given proportional-share weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn with_weight(weight: u32) -> Self {
        assert!(weight > 0, "task weight must be positive");
        TaskParams {
            weight,
            reservation: None,
        }
    }

    /// Parameters with a real-time reservation.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the period or either is zero.
    pub fn with_reservation(period: SimDuration, slice: SimDuration) -> Self {
        assert!(!period.is_zero() && !slice.is_zero(), "zero reservation");
        assert!(slice <= period, "reservation slice exceeds period");
        TaskParams {
            weight: 100,
            reservation: Some(Reservation { period, slice }),
        }
    }
}

/// A quantum-driven CPU scheduling policy.
///
/// Implementations must be deterministic given the same call sequence
/// and (for randomized policies) the same [`SimRng`] stream.
pub trait Scheduler {
    /// Registers a task. Called before the task ever appears in a
    /// runnable set.
    fn add_task(&mut self, id: TaskId, params: TaskParams);

    /// Deregisters a finished or departed task.
    fn remove_task(&mut self, id: TaskId);

    /// Chooses at most `cores` distinct tasks from `runnable` to run
    /// for the quantum beginning at `now`, writing the picks into
    /// `out` (cleared first). The caller owns and reuses the buffer,
    /// so a steady-state simulation loop allocates nothing per
    /// quantum.
    ///
    /// `runnable` is ordered by task id (the host guarantees this), so
    /// policies that iterate produce deterministic results.
    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        now: SimTime,
        quantum: SimDuration,
        rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    );

    /// Allocating convenience wrapper over
    /// [`select_into`](Self::select_into) for tests and one-shot
    /// callers; hot loops should hold a buffer and call `select_into`.
    fn select(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        now: SimTime,
        quantum: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<TaskId> {
        let mut out = Vec::with_capacity(cores.min(runnable.len()));
        self.select_into(runnable, cores, now, quantum, rng, &mut out);
        out
    }

    /// Reports that `id` actually consumed `used` CPU during the last
    /// quantum (may be less than the quantum when the task finished).
    fn charge(&mut self, id: TaskId, used: SimDuration);

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// The built-in scheduler families, for configuration surfaces
/// (constraint compiler, benches) that choose one by tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Weighted round-robin time sharing (Linux-like stand-in).
    #[default]
    TimeShare,
    /// Lottery scheduling.
    Lottery,
    /// Stride scheduling.
    Stride,
    /// Weighted fair queueing.
    Wfq,
    /// EDF with periodic reservations.
    Edf,
}

impl SchedulerKind {
    /// All kinds, in presentation order.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::TimeShare,
        SchedulerKind::Lottery,
        SchedulerKind::Stride,
        SchedulerKind::Wfq,
        SchedulerKind::Edf,
    ];

    /// Instantiates the scheduler this tag names.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::TimeShare => Box::new(crate::timeshare::TimeShareScheduler::new()),
            SchedulerKind::Lottery => Box::new(crate::lottery::LotteryScheduler::new()),
            SchedulerKind::Stride => Box::new(crate::stride::StrideScheduler::new()),
            SchedulerKind::Wfq => Box::new(crate::wfq::WfqScheduler::new()),
            SchedulerKind::Edf => Box::new(crate::edf::EdfScheduler::new()),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::TimeShare => "timeshare",
            SchedulerKind::Lottery => "lottery",
            SchedulerKind::Stride => "stride",
            SchedulerKind::Wfq => "wfq",
            SchedulerKind::Edf => "edf",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_utilization() {
        let r = Reservation {
            period: SimDuration::from_millis(100),
            slice: SimDuration::from_millis(25),
        };
        assert!((r.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn params_builders_validate() {
        let p = TaskParams::with_weight(5);
        assert_eq!(p.weight, 5);
        assert!(p.reservation.is_none());
        let r = TaskParams::with_reservation(
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
        );
        assert!(r.reservation.is_some());
    }

    #[test]
    #[should_panic(expected = "slice exceeds period")]
    fn oversized_slice_panics() {
        let _ = TaskParams::with_reservation(
            SimDuration::from_millis(10),
            SimDuration::from_millis(11),
        );
    }

    #[test]
    fn every_kind_builds_and_labels() {
        for kind in SchedulerKind::ALL {
            let s = kind.build();
            assert_eq!(s.name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
    }
}
