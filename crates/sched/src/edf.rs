//! Periodic real-time reservations with earliest-deadline-first
//! dispatch — the paper's "compiled into a real-time schedule, mapping
//! each virtual machine into one or more periodic real-time tasks"
//! (Section 3.2), in the style of RED-Linux \[35\] and resource
//! kernels \[26\].
//!
//! A reserved task receives `slice` of CPU every `period`; admission
//! control rejects reservation sets whose total utilization exceeds
//! the core count. Unreserved (best-effort) tasks run round-robin in
//! whatever capacity the reservations leave over, so the scheduler is
//! work-conserving.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::scheduler::{Reservation, Scheduler, TaskId, TaskParams};

#[derive(Clone, Copy, Debug)]
struct RtEntry {
    res: Reservation,
    /// CPU remaining in the current period.
    budget: SimDuration,
    /// End of the current period == deadline.
    deadline: SimTime,
}

/// EDF scheduler with periodic reservations and best-effort overflow.
///
/// ```
/// use gridvm_sched::{EdfScheduler, Scheduler, TaskId, TaskParams};
/// use gridvm_simcore::time::SimDuration;
///
/// let mut s = EdfScheduler::new();
/// s.add_task(TaskId(1), TaskParams::with_reservation(
///     SimDuration::from_millis(100), SimDuration::from_millis(30)));
/// assert!((s.reserved_utilization() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct EdfScheduler {
    /// Keyed by `TaskId.0` — task ids are small and densely assigned.
    reserved: DenseMap<RtEntry>,
    best_effort: DenseMap<f64>, // round-robin credit
    /// Scratch buffers reused across quanta so steady-state selection
    /// allocates nothing.
    rt_scratch: Vec<(SimTime, TaskId)>,
    be_scratch: Vec<TaskId>,
}

impl EdfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        EdfScheduler::default()
    }

    /// Total utilization of admitted reservations, in CPUs.
    pub fn reserved_utilization(&self) -> f64 {
        // Summed in ascending task-id order so the float total does
        // not depend on registration history.
        self.reserved
            .sorted_keys()
            .into_iter()
            .map(|k| {
                self.reserved
                    .get(k)
                    .expect("key just listed")
                    .res
                    .utilization()
            })
            .sum()
    }

    /// Checks whether a reservation set of this utilization fits on
    /// `cores` CPUs (the EDF bound for independent periodic tasks on
    /// partitioned cores; we use the simple additive test).
    pub fn admits(&self, extra: Reservation, cores: usize) -> bool {
        self.reserved_utilization() + extra.utilization() <= cores as f64 + 1e-9
    }

    /// Remaining budget of a reserved task (for tests).
    pub fn budget(&self, id: TaskId) -> Option<SimDuration> {
        self.reserved.get(id.0).map(|e| e.budget)
    }

    fn replenish(&mut self, now: SimTime) {
        for (_, e) in self.reserved.iter_mut() {
            while now >= e.deadline {
                e.deadline += e.res.period;
                e.budget = e.res.slice;
            }
        }
    }
}

impl Scheduler for EdfScheduler {
    /// Registers a task.
    ///
    /// Tasks with a reservation join the EDF set; tasks without join
    /// the best-effort round-robin set.
    ///
    /// # Panics
    ///
    /// Panics if a reserved task is added that the (single-host,
    /// caller-checked) admission test would reject at one core of
    /// headroom — callers should use
    /// [`admits`](EdfScheduler::admits) first; the panic is the
    /// last-resort guard against an oversubscribed real-time set.
    fn add_task(&mut self, id: TaskId, params: TaskParams) {
        match params.reservation {
            Some(res) => {
                self.reserved.insert(
                    id.0,
                    RtEntry {
                        res,
                        budget: res.slice,
                        deadline: SimTime::ZERO + res.period,
                    },
                );
            }
            None => {
                self.best_effort.insert(id.0, 0.0);
            }
        }
    }

    fn remove_task(&mut self, id: TaskId) {
        self.reserved.remove(id.0);
        self.best_effort.remove(id.0);
    }

    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        now: SimTime,
        quantum: SimDuration,
        _rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        if runnable.is_empty() || cores == 0 {
            return;
        }
        self.replenish(now);
        // Reserved tasks with budget, earliest deadline first.
        let mut rt = std::mem::take(&mut self.rt_scratch);
        rt.clear();
        for id in runnable {
            if let Some(e) = self.reserved.get(id.0) {
                if e.budget > SimDuration::ZERO {
                    rt.push((e.deadline, *id));
                }
            }
        }
        rt.sort();
        out.extend(rt.iter().take(cores).map(|&(_, id)| id));
        self.rt_scratch = rt;
        // Fill remaining cores with best-effort tasks (highest RR
        // credit first), then with out-of-budget reserved tasks so the
        // host stays work-conserving.
        if out.len() < cores {
            let mut be = std::mem::take(&mut self.be_scratch);
            be.clear();
            be.extend(
                runnable
                    .iter()
                    .filter(|id| self.best_effort.contains_key(id.0) && !out.contains(id)),
            );
            let q = quantum.as_secs_f64();
            for id in &be {
                if let Some(c) = self.best_effort.get_mut(id.0) {
                    *c += q;
                }
            }
            let credit = |id: TaskId| *self.best_effort.get(id.0).expect("filtered above");
            be.sort_by(|a, b| {
                let ca = credit(*a);
                let cb = credit(*b);
                cb.partial_cmp(&ca)
                    .expect("credits are finite")
                    .then_with(|| a.cmp(b))
            });
            for id in &be {
                if out.len() == cores {
                    break;
                }
                out.push(*id);
            }
            self.be_scratch = be;
        }
        if out.len() < cores {
            for id in runnable {
                if out.len() == cores {
                    break;
                }
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
    }

    fn charge(&mut self, id: TaskId, used: SimDuration) {
        if let Some(e) = self.reserved.get_mut(id.0) {
            e.budget = e.budget.saturating_sub(used);
        } else if let Some(c) = self.best_effort.get_mut(id.0) {
            *c -= used.as_secs_f64();
        }
    }

    fn name(&self) -> &'static str {
        "edf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Runs `rounds` quanta of `quantum` on one core and returns the
    /// quanta granted per task.
    fn run(
        s: &mut EdfScheduler,
        ids: &[TaskId],
        quantum: SimDuration,
        rounds: usize,
    ) -> BTreeMap<TaskId, u32> {
        let mut rng = SimRng::seed_from(0);
        let mut counts: BTreeMap<TaskId, u32> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            for id in s.select(ids, 1, now, quantum, &mut rng) {
                *counts.entry(id).or_default() += 1;
                s.charge(id, quantum);
            }
            now += quantum;
        }
        counts
    }

    #[test]
    fn reservation_gets_its_slice() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(100), ms(30)));
        s.add_task(TaskId(2), TaskParams::default()); // best effort
                                                      // 1000 quanta of 10ms = 10s = 100 periods
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], ms(10), 1_000);
        // Reserved task: 3 quanta per 10-quanta period = 300.
        assert_eq!(counts[&TaskId(1)], 300);
        assert_eq!(counts[&TaskId(2)], 700);
    }

    #[test]
    fn reserved_task_preempts_best_effort_at_period_start() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(50), ms(10)));
        s.add_task(TaskId(2), TaskParams::default());
        let mut rng = SimRng::seed_from(1);
        let first = s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO, ms(10), &mut rng);
        assert_eq!(first, vec![TaskId(1)], "budgeted RT task runs first");
    }

    #[test]
    fn earliest_deadline_wins() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(200), ms(20)));
        s.add_task(TaskId(2), TaskParams::with_reservation(ms(50), ms(10)));
        let mut rng = SimRng::seed_from(2);
        let picked = s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO, ms(10), &mut rng);
        assert_eq!(picked, vec![TaskId(2)], "shorter period = earlier deadline");
    }

    #[test]
    fn admission_control_checks_utilization() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(100), ms(60)));
        let ok = Reservation {
            period: ms(100),
            slice: ms(30),
        };
        let too_much = Reservation {
            period: ms(100),
            slice: ms(50),
        };
        assert!(s.admits(ok, 1));
        assert!(!s.admits(too_much, 1));
        assert!(s.admits(too_much, 2), "fits with a second core");
    }

    #[test]
    fn work_conserving_when_reservations_idle() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(100), ms(10)));
        // Only the reserved task is runnable; after its budget is
        // spent it must still be allowed to soak idle CPU.
        let counts = run(&mut s, &[TaskId(1)], ms(10), 100);
        assert_eq!(counts[&TaskId(1)], 100, "sole task gets every quantum");
    }

    #[test]
    fn budget_replenishes_each_period() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_reservation(ms(100), ms(30)));
        let mut rng = SimRng::seed_from(3);
        let _ = s.select(&[TaskId(1)], 1, SimTime::ZERO, ms(10), &mut rng);
        s.charge(TaskId(1), ms(30));
        assert_eq!(s.budget(TaskId(1)), Some(SimDuration::ZERO));
        // At t=100ms the period rolls over.
        let _ = s.select(
            &[TaskId(1)],
            1,
            SimTime::from_nanos(100_000_000),
            ms(10),
            &mut rng,
        );
        assert_eq!(s.budget(TaskId(1)), Some(ms(30)));
    }

    #[test]
    fn best_effort_tasks_round_robin_fairly() {
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.add_task(TaskId(2), TaskParams::default());
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], ms(10), 200);
        let c1 = counts[&TaskId(1)];
        assert!((95..=105).contains(&c1), "best-effort split {c1}/200");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridvm_simcore::rng::SimRng;
    use proptest::prelude::*;

    proptest! {
        /// The EDF guarantee: any admitted reservation set (total
        /// utilization <= 1 core) receives at least its slice every
        /// period, to within one quantum, no matter what best-effort
        /// load shares the host.
        #[test]
        fn admitted_reservations_never_miss(
            slices_ms in proptest::collection::vec(1u64..30, 1..4),
            be_tasks in 0usize..3,
        ) {
            let period = SimDuration::from_millis(100);
            let total: u64 = slices_ms.iter().sum();
            prop_assume!(total <= 90); // admitted with headroom for quantum granularity
            let mut s = EdfScheduler::new();
            let mut ids = Vec::new();
            for (i, ms_slice) in slices_ms.iter().enumerate() {
                let id = TaskId(i as u64);
                s.add_task(id, crate::scheduler::TaskParams::with_reservation(
                    period, SimDuration::from_millis(*ms_slice)));
                ids.push(id);
            }
            for j in 0..be_tasks {
                let id = TaskId(100 + j as u64);
                s.add_task(id, crate::scheduler::TaskParams::default());
                ids.push(id);
            }
            // Run 10 whole periods at 1 ms quanta on one core.
            let quantum = SimDuration::from_millis(1);
            let mut granted = vec![0u64; slices_ms.len()];
            let mut rng = SimRng::seed_from(1);
            for step in 0..1000u64 {
                let now = SimTime::ZERO + quantum * step;
                for id in s.select(&ids, 1, now, quantum, &mut rng) {
                    s.charge(id, quantum);
                    if (id.0 as usize) < slices_ms.len() {
                        granted[id.0 as usize] += 1;
                    }
                }
            }
            for (i, ms_slice) in slices_ms.iter().enumerate() {
                // 10 periods of guarantee, minus one quantum of edge.
                let need = ms_slice * 10 - 1;
                prop_assert!(granted[i] >= need,
                    "task {} got {} ms of its {} ms x 10 guarantee", i, granted[i], ms_slice);
            }
        }
    }
}
