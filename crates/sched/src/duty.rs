//! Coarse-grain duty-cycle control: the paper's "for a coarse-grain
//! schedule, we could even modulate the priority of virtual machine
//! processes under the regular linux scheduler, using
//! SIGSTOP/SIGCONT signal delivery" (Section 3.2).
//!
//! A [`DutyCycle`] deterministically partitions time into a repeating
//! `period` of which the first `on_fraction` is CONT (runnable) and
//! the rest is STOP (suspended). The host simulator masks a task's
//! runnability with this signal, exactly as an external controller
//! delivering signals would.

use gridvm_simcore::time::{SimDuration, SimTime};

/// A deterministic SIGSTOP/SIGCONT duty-cycle controller.
///
/// ```
/// use gridvm_sched::DutyCycle;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// // 1s period, first 250ms runnable.
/// let d = DutyCycle::new(SimDuration::from_secs(1), 0.25);
/// assert!(d.is_runnable(SimTime::ZERO));
/// assert!(!d.is_runnable(SimTime::ZERO + SimDuration::from_millis(500)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DutyCycle {
    period: SimDuration,
    on_fraction: f64,
    phase: SimDuration,
}

impl DutyCycle {
    /// Creates a controller with the given period and ON fraction.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `on_fraction` lies outside
    /// `[0, 1]`.
    pub fn new(period: SimDuration, on_fraction: f64) -> Self {
        assert!(!period.is_zero(), "duty cycle with zero period");
        assert!(
            (0.0..=1.0).contains(&on_fraction),
            "on fraction {on_fraction} outside [0,1]"
        );
        DutyCycle {
            period,
            on_fraction,
            phase: SimDuration::ZERO,
        }
    }

    /// Shifts the cycle by `phase` (different VMs can be staggered to
    /// avoid synchronized wakeups).
    pub fn with_phase(mut self, phase: SimDuration) -> Self {
        self.phase = phase;
        self
    }

    /// The fraction of time the task is runnable.
    pub fn on_fraction(&self) -> f64 {
        self.on_fraction
    }

    /// The modulation period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// True when the controlled task is CONT (runnable) at `t`.
    pub fn is_runnable(&self, t: SimTime) -> bool {
        if self.on_fraction >= 1.0 {
            return true;
        }
        if self.on_fraction <= 0.0 {
            return false;
        }
        let pos = (t + self.phase).as_nanos() % self.period.as_nanos();
        (pos as f64) < self.period.as_nanos() as f64 * self.on_fraction
    }

    /// The next instant at or after `t` when the task becomes
    /// runnable (`t` itself if already runnable). Returns `None` for
    /// a permanently-stopped (0%) cycle.
    pub fn next_runnable(&self, t: SimTime) -> Option<SimTime> {
        if self.on_fraction <= 0.0 {
            return None;
        }
        if self.is_runnable(t) {
            return Some(t);
        }
        let period = self.period.as_nanos();
        let pos = (t + self.phase).as_nanos() % period;
        let wait = period - pos;
        Some(t + SimDuration::from_nanos(wait))
    }

    /// Exact fraction of `[start, end)` during which the task is
    /// runnable.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn runnable_fraction(&self, start: SimTime, end: SimTime) -> f64 {
        assert!(end >= start, "runnable_fraction: end before start");
        if end == start {
            return if self.is_runnable(start) { 1.0 } else { 0.0 };
        }
        let period = self.period.as_nanos();
        let on = (period as f64 * self.on_fraction) as u64;
        let mut t = (start + self.phase).as_nanos();
        let stop = (end + self.phase).as_nanos();
        let mut total_on = 0u64;
        while t < stop {
            let pos = t % period;
            let (seg_end, is_on) = if pos < on {
                ((t - pos) + on, true)
            } else {
                ((t - pos) + period, false)
            };
            let upto = seg_end.min(stop);
            if is_on {
                total_on += upto - t;
            }
            t = upto;
        }
        total_on as f64 / (stop - (start + self.phase).as_nanos()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn half_duty_alternates() {
        let d = DutyCycle::new(ms(100), 0.5);
        assert!(d.is_runnable(at(0)));
        assert!(d.is_runnable(at(49)));
        assert!(!d.is_runnable(at(50)));
        assert!(!d.is_runnable(at(99)));
        assert!(d.is_runnable(at(100)));
    }

    #[test]
    fn extremes_are_constant() {
        let on = DutyCycle::new(ms(10), 1.0);
        let off = DutyCycle::new(ms(10), 0.0);
        for i in 0..50 {
            assert!(on.is_runnable(at(i)));
            assert!(!off.is_runnable(at(i)));
        }
        assert_eq!(off.next_runnable(at(5)), None);
    }

    #[test]
    fn phase_shifts_the_window() {
        let d = DutyCycle::new(ms(100), 0.5).with_phase(ms(50));
        assert!(!d.is_runnable(at(0)), "phase shifted into the off half");
        assert!(d.is_runnable(at(50)));
    }

    #[test]
    fn next_runnable_finds_window_start() {
        let d = DutyCycle::new(ms(100), 0.25);
        assert_eq!(d.next_runnable(at(10)), Some(at(10)), "already on");
        assert_eq!(d.next_runnable(at(30)), Some(at(100)));
        assert_eq!(d.next_runnable(at(99)), Some(at(100)));
    }

    #[test]
    fn runnable_fraction_over_whole_periods_matches_duty() {
        let d = DutyCycle::new(ms(100), 0.3);
        let f = d.runnable_fraction(at(0), at(1000));
        assert!((f - 0.3).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn runnable_fraction_of_partial_window() {
        let d = DutyCycle::new(ms(100), 0.5);
        // [25ms, 75ms): 25ms on, 25ms off
        let f = d.runnable_fraction(at(25), at(75));
        assert!((f - 0.5).abs() < 1e-9);
        // [50ms, 100ms): fully off
        assert_eq!(d.runnable_fraction(at(50), at(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn invalid_fraction_panics() {
        let _ = DutyCycle::new(ms(10), 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Over many whole periods the measured runnable fraction
        /// converges to the configured duty.
        #[test]
        fn fraction_matches_duty(duty in 0.0f64..=1.0, periods in 1u64..20, phase_ms in 0u64..500) {
            let d = DutyCycle::new(SimDuration::from_millis(100), duty)
                .with_phase(SimDuration::from_millis(phase_ms));
            let end = SimTime::ZERO + SimDuration::from_millis(100) * periods;
            let f = d.runnable_fraction(SimTime::ZERO, end);
            prop_assert!((f - duty).abs() < 0.011, "duty {} measured {}", duty, f);
        }

        /// `next_runnable` always returns a runnable instant no
        /// earlier than the query.
        #[test]
        fn next_runnable_is_sound(duty in 0.01f64..=1.0, t_ms in 0u64..10_000) {
            let d = DutyCycle::new(SimDuration::from_millis(73), duty);
            let t = SimTime::ZERO + SimDuration::from_millis(t_ms);
            let n = d.next_runnable(t).expect("duty > 0 always has a next window");
            prop_assert!(n >= t);
            prop_assert!(d.is_runnable(n));
        }
    }
}
