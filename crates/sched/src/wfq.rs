//! Weighted fair queueing (Demers, Keshav, Shenker) adapted to CPU
//! quanta — the paper's second proportional-share option \[8\].
//!
//! Each task keeps a *virtual finish time*: when selected, a task's
//! finish tag advances by `used / weight` measured in system virtual
//! time. The scheduler always runs the tasks with the smallest finish
//! tags. Unlike stride scheduling, WFQ tracks a global virtual clock
//! that advances with the *work done*, which makes it robust to tasks
//! that block and later return (their tags are floored to the current
//! virtual time instead of letting them catch up unboundedly).

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::scheduler::{Scheduler, TaskId, TaskParams};

#[derive(Clone, Copy, Debug)]
struct Entry {
    weight: f64,
    finish: f64,
}

/// Weighted-fair-queueing scheduler. See the [module docs](self).
///
/// ```
/// use gridvm_sched::{Scheduler, TaskId, TaskParams, WfqScheduler};
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut s = WfqScheduler::new();
/// s.add_task(TaskId(1), TaskParams::with_weight(100));
/// let mut rng = SimRng::seed_from(0);
/// let picked = s.select(&[TaskId(1)], 1, SimTime::ZERO,
///                       SimDuration::from_millis(10), &mut rng);
/// assert_eq!(picked, vec![TaskId(1)]);
/// ```
#[derive(Debug, Default)]
pub struct WfqScheduler {
    /// Keyed by `TaskId.0` — task ids are small and densely assigned.
    tasks: DenseMap<Entry>,
    virtual_time: f64,
}

impl WfqScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        WfqScheduler::default()
    }

    /// The system virtual time (for tests/inspection).
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }
}

impl Scheduler for WfqScheduler {
    fn add_task(&mut self, id: TaskId, params: TaskParams) {
        assert!(params.weight > 0, "zero-weight task");
        self.tasks.insert(
            id.0,
            Entry {
                weight: f64::from(params.weight),
                finish: self.virtual_time,
            },
        );
    }

    fn remove_task(&mut self, id: TaskId) {
        self.tasks.remove(id.0);
    }

    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        _now: SimTime,
        _quantum: SimDuration,
        _rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        if runnable.is_empty() || cores == 0 {
            return;
        }
        // Floor returning tasks to the current virtual time so a task
        // that slept cannot accumulate unbounded credit.
        for id in runnable {
            let e = self
                .tasks
                .get_mut(id.0)
                .unwrap_or_else(|| panic!("{id} not registered"));
            if e.finish < self.virtual_time {
                e.finish = self.virtual_time;
            }
        }
        let finish = |id: TaskId| self.tasks.get(id.0).expect("floored above").finish;
        out.extend_from_slice(runnable);
        out.sort_by(|a, b| {
            let fa = finish(*a);
            let fb = finish(*b);
            fa.partial_cmp(&fb)
                .expect("finish tags are finite")
                .then_with(|| a.cmp(b))
        });
        out.truncate(cores);
        // Advance the system virtual clock to the smallest selected
        // tag: virtual time tracks the head of the schedule.
        if let Some(first) = out.first() {
            self.virtual_time = self.virtual_time.max(finish(*first));
        }
    }

    fn charge(&mut self, id: TaskId, used: SimDuration) {
        if let Some(e) = self.tasks.get_mut(id.0) {
            e.finish += used.as_secs_f64() / e.weight;
        }
    }

    fn name(&self) -> &'static str {
        "wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn q() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn run(s: &mut WfqScheduler, ids: &[TaskId], rounds: usize) -> BTreeMap<TaskId, u32> {
        let mut rng = SimRng::seed_from(0);
        let mut counts: BTreeMap<TaskId, u32> = BTreeMap::new();
        for _ in 0..rounds {
            for id in s.select(ids, 1, SimTime::ZERO, q(), &mut rng) {
                *counts.entry(id).or_default() += 1;
                s.charge(id, q());
            }
        }
        counts
    }

    #[test]
    fn weights_produce_proportional_service() {
        let mut s = WfqScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(400));
        s.add_task(TaskId(2), TaskParams::with_weight(100));
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], 500);
        let r = f64::from(counts[&TaskId(1)]) / f64::from(counts[&TaskId(2)]);
        assert!((3.8..4.2).contains(&r), "ratio {r}");
    }

    #[test]
    fn sleeper_does_not_accumulate_credit() {
        let mut s = WfqScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.add_task(TaskId(2), TaskParams::default());
        // Task 2 "sleeps": only task 1 runnable for 1000 rounds.
        let _ = run(&mut s, &[TaskId(1)], 1_000);
        // Task 2 returns; over the next 100 rounds it must get about
        // half, not all, of the CPU.
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], 100);
        let c2 = counts[&TaskId(2)];
        assert!((45..=55).contains(&c2), "returning sleeper got {c2}/100");
    }

    #[test]
    fn virtual_time_is_monotone() {
        let mut s = WfqScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.add_task(TaskId(2), TaskParams::with_weight(300));
        let mut rng = SimRng::seed_from(1);
        let mut last = 0.0;
        for _ in 0..200 {
            for id in s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO, q(), &mut rng) {
                s.charge(id, q());
            }
            assert!(s.virtual_time() >= last);
            last = s.virtual_time();
        }
    }

    #[test]
    fn multicore_picks_distinct_lowest_tags() {
        let mut s = WfqScheduler::new();
        for i in 1..=3 {
            s.add_task(TaskId(i), TaskParams::default());
        }
        s.charge(TaskId(1), q()); // tag of 1 advances
        let mut rng = SimRng::seed_from(2);
        let ids: Vec<TaskId> = (1..=3).map(TaskId).collect();
        let mut picked = s.select(&ids, 2, SimTime::ZERO, q(), &mut rng);
        picked.sort();
        assert_eq!(picked, vec![TaskId(2), TaskId(3)]);
    }
}
