//! Weighted round-robin time sharing — the stand-in for the stock
//! Linux scheduler the paper's hosts ran.
//!
//! Each task accumulates credit proportional to its weight; every
//! quantum the scheduler picks the `cores` runnable tasks with the
//! highest credit and debits them for what they use. With equal
//! weights this degenerates to plain round-robin, which is all
//! Figure 1 needs; the weights let the ablation benches model `nice`.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::scheduler::{Scheduler, TaskId, TaskParams};

#[derive(Clone, Copy, Debug)]
struct Entry {
    weight: u32,
    credit: f64,
}

/// Weighted round-robin scheduler. See the [module docs](self).
///
/// ```
/// use gridvm_sched::{Scheduler, TaskId, TaskParams, TimeShareScheduler};
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut s = TimeShareScheduler::new();
/// s.add_task(TaskId(1), TaskParams::default());
/// s.add_task(TaskId(2), TaskParams::default());
/// let mut rng = SimRng::seed_from(0);
/// let picked = s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO,
///                       SimDuration::from_millis(10), &mut rng);
/// assert_eq!(picked.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TimeShareScheduler {
    /// Keyed by `TaskId.0` — task ids are small and densely assigned.
    tasks: DenseMap<Entry>,
}

impl TimeShareScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        TimeShareScheduler::default()
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks are registered.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl Scheduler for TimeShareScheduler {
    fn add_task(&mut self, id: TaskId, params: TaskParams) {
        assert!(params.weight > 0, "zero-weight task");
        self.tasks.insert(
            id.0,
            Entry {
                weight: params.weight,
                credit: 0.0,
            },
        );
    }

    fn remove_task(&mut self, id: TaskId) {
        self.tasks.remove(id.0);
    }

    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        _now: SimTime,
        quantum: SimDuration,
        _rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        if runnable.is_empty() || cores == 0 {
            return;
        }
        // Accrue credit to every runnable task in proportion to its
        // weight, then run the highest-credit tasks.
        let total_weight: u64 = runnable
            .iter()
            .map(|id| {
                u64::from(
                    self.tasks
                        .get(id.0)
                        .unwrap_or_else(|| panic!("{id} not registered"))
                        .weight,
                )
            })
            .sum();
        let q = quantum.as_secs_f64();
        for id in runnable {
            let e = self.tasks.get_mut(id.0).expect("checked above");
            e.credit += q * f64::from(e.weight) / total_weight as f64 * cores as f64;
        }
        let credit = |id: TaskId| self.tasks.get(id.0).expect("checked above").credit;
        out.extend_from_slice(runnable);
        out.sort_by(|a, b| {
            let ca = credit(*a);
            let cb = credit(*b);
            cb.partial_cmp(&ca)
                .expect("credits are finite")
                .then_with(|| a.cmp(b))
        });
        out.truncate(cores);
    }

    fn charge(&mut self, id: TaskId, used: SimDuration) {
        if let Some(e) = self.tasks.get_mut(id.0) {
            e.credit -= used.as_secs_f64();
        }
    }

    fn name(&self) -> &'static str {
        "timeshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn q() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn run_rounds(
        s: &mut TimeShareScheduler,
        runnable: &[TaskId],
        cores: usize,
        rounds: usize,
    ) -> BTreeMap<TaskId, u32> {
        let mut rng = SimRng::seed_from(1);
        let mut counts: BTreeMap<TaskId, u32> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            let picked = s.select(runnable, cores, now, q(), &mut rng);
            assert!(picked.len() <= cores);
            for id in &picked {
                *counts.entry(*id).or_default() += 1;
                s.charge(*id, q());
            }
            now += q();
        }
        counts
    }

    #[test]
    fn equal_weights_share_equally() {
        let mut s = TimeShareScheduler::new();
        let ids = [TaskId(1), TaskId(2), TaskId(3)];
        for id in ids {
            s.add_task(id, TaskParams::default());
        }
        let counts = run_rounds(&mut s, &ids, 1, 300);
        for id in ids {
            let c = counts[&id];
            assert!((95..=105).contains(&c), "{id} ran {c}/300");
        }
    }

    #[test]
    fn weights_bias_allocation() {
        let mut s = TimeShareScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(300));
        s.add_task(TaskId(2), TaskParams::with_weight(100));
        let counts = run_rounds(&mut s, &[TaskId(1), TaskId(2)], 1, 400);
        let c1 = counts[&TaskId(1)] as f64;
        let c2 = counts[&TaskId(2)] as f64;
        let ratio = c1 / c2;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn multicore_runs_distinct_tasks() {
        let mut s = TimeShareScheduler::new();
        let ids = [TaskId(1), TaskId(2), TaskId(3)];
        for id in ids {
            s.add_task(id, TaskParams::default());
        }
        let mut rng = SimRng::seed_from(2);
        let picked = s.select(&ids, 2, SimTime::ZERO, q(), &mut rng);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
    }

    #[test]
    fn fewer_tasks_than_cores_runs_all() {
        let mut s = TimeShareScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        let mut rng = SimRng::seed_from(3);
        let picked = s.select(&[TaskId(1)], 4, SimTime::ZERO, q(), &mut rng);
        assert_eq!(picked, vec![TaskId(1)]);
    }

    #[test]
    fn empty_runnable_picks_nothing() {
        let mut s = TimeShareScheduler::new();
        let mut rng = SimRng::seed_from(4);
        assert!(s.select(&[], 2, SimTime::ZERO, q(), &mut rng).is_empty());
    }

    #[test]
    fn removed_task_is_forgotten() {
        let mut s = TimeShareScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.remove_task(TaskId(1));
        assert!(s.is_empty());
        // charging a removed task must not panic
        s.charge(TaskId(1), q());
    }
}
