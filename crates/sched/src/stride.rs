//! Stride scheduling: the deterministic proportional-share
//! counterpart of lottery scheduling.
//!
//! Each task has `stride = STRIDE1 / weight` and a `pass` value; the
//! scheduler always runs the lowest-pass runnable tasks and advances
//! their passes by stride × (used / quantum). Relative throughput
//! error is bounded by a single quantum, unlike lottery's
//! probabilistic convergence — the property the ablation bench
//! contrasts.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::scheduler::{Scheduler, TaskId, TaskParams};

const STRIDE1: f64 = 1_000_000.0;

#[derive(Clone, Copy, Debug)]
struct Entry {
    stride: f64,
    pass: f64,
}

/// Stride scheduler. See the [module docs](self).
///
/// ```
/// use gridvm_sched::{Scheduler, StrideScheduler, TaskId, TaskParams};
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut s = StrideScheduler::new();
/// s.add_task(TaskId(1), TaskParams::with_weight(200));
/// s.add_task(TaskId(2), TaskParams::with_weight(100));
/// let mut rng = SimRng::seed_from(0);
/// // Deterministic: the higher-weight task runs first.
/// let picked = s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO,
///                       SimDuration::from_millis(10), &mut rng);
/// assert_eq!(picked, vec![TaskId(1)]);
/// ```
#[derive(Debug, Default)]
pub struct StrideScheduler {
    /// Keyed by `TaskId.0` — task ids are small and densely assigned.
    tasks: DenseMap<Entry>,
    last_quantum: SimDuration,
}

impl StrideScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        StrideScheduler::default()
    }

    /// The current pass value of a task (for tests/inspection).
    pub fn pass(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(id.0).map(|e| e.pass)
    }
}

impl Scheduler for StrideScheduler {
    fn add_task(&mut self, id: TaskId, params: TaskParams) {
        assert!(params.weight > 0, "zero-weight task");
        // Join at the current minimum pass so new arrivals neither
        // monopolize nor starve.
        let min_pass = self
            .tasks
            .iter()
            .map(|(_, e)| e.pass)
            .fold(f64::INFINITY, f64::min);
        let pass = if min_pass.is_finite() { min_pass } else { 0.0 };
        self.tasks.insert(
            id.0,
            Entry {
                stride: STRIDE1 / f64::from(params.weight),
                pass,
            },
        );
    }

    fn remove_task(&mut self, id: TaskId) {
        self.tasks.remove(id.0);
    }

    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        _now: SimTime,
        quantum: SimDuration,
        _rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        if runnable.is_empty() || cores == 0 {
            return;
        }
        self.last_quantum = quantum;
        let pass = |id: TaskId| {
            self.tasks
                .get(id.0)
                .unwrap_or_else(|| panic!("{id} not registered"))
                .pass
        };
        out.extend_from_slice(runnable);
        out.sort_by(|a, b| {
            let pa = pass(*a);
            let pb = pass(*b);
            pa.partial_cmp(&pb)
                .expect("pass values are finite")
                .then_with(|| a.cmp(b))
        });
        out.truncate(cores);
    }

    fn charge(&mut self, id: TaskId, used: SimDuration) {
        let quantum = if self.last_quantum.is_zero() {
            used
        } else {
            self.last_quantum
        };
        if let Some(e) = self.tasks.get_mut(id.0) {
            let frac = if quantum.is_zero() {
                1.0
            } else {
                used.as_secs_f64() / quantum.as_secs_f64()
            };
            e.pass += e.stride * frac.max(f64::EPSILON);
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn q() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn run(
        s: &mut StrideScheduler,
        ids: &[TaskId],
        cores: usize,
        rounds: usize,
    ) -> BTreeMap<TaskId, u32> {
        let mut rng = SimRng::seed_from(0);
        let mut counts: BTreeMap<TaskId, u32> = BTreeMap::new();
        for _ in 0..rounds {
            for id in s.select(ids, cores, SimTime::ZERO, q(), &mut rng) {
                *counts.entry(id).or_default() += 1;
                s.charge(id, q());
            }
        }
        counts
    }

    #[test]
    fn exact_three_to_one_ratio() {
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(300));
        s.add_task(TaskId(2), TaskParams::with_weight(100));
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], 1, 400);
        assert_eq!(counts[&TaskId(1)], 300);
        assert_eq!(counts[&TaskId(2)], 100);
    }

    #[test]
    fn equal_weights_alternate() {
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.add_task(TaskId(2), TaskParams::default());
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], 1, 100);
        assert_eq!(counts[&TaskId(1)], 50);
        assert_eq!(counts[&TaskId(2)], 50);
    }

    #[test]
    fn late_joiner_is_not_starved_and_does_not_monopolize() {
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        let _ = run(&mut s, &[TaskId(1)], 1, 1_000);
        s.add_task(TaskId(2), TaskParams::default());
        let counts = run(&mut s, &[TaskId(1), TaskId(2)], 1, 100);
        let c2 = counts[&TaskId(2)];
        assert!((45..=55).contains(&c2), "late joiner got {c2}/100");
    }

    #[test]
    fn partial_charge_advances_pass_proportionally() {
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(100));
        let mut rng = SimRng::seed_from(0);
        let _ = s.select(&[TaskId(1)], 1, SimTime::ZERO, q(), &mut rng);
        s.charge(TaskId(1), SimDuration::from_millis(5)); // half quantum
        let half = s.pass(TaskId(1)).unwrap();
        let _ = s.select(&[TaskId(1)], 1, SimTime::ZERO, q(), &mut rng);
        s.charge(TaskId(1), q());
        let full = s.pass(TaskId(1)).unwrap();
        assert!(
            (full - 3.0 * half).abs() < half * 1e-9,
            "half {half} full {full}"
        );
    }

    #[test]
    fn multicore_selects_lowest_passes() {
        let mut s = StrideScheduler::new();
        for i in 1..=4 {
            s.add_task(TaskId(i), TaskParams::default());
        }
        // Push task 1 and 2 passes up.
        s.charge(TaskId(1), q());
        s.charge(TaskId(2), q());
        let mut rng = SimRng::seed_from(0);
        let ids: Vec<TaskId> = (1..=4).map(TaskId).collect();
        let mut picked = s.select(&ids, 2, SimTime::ZERO, q(), &mut rng);
        picked.sort();
        assert_eq!(picked, vec![TaskId(3), TaskId(4)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// Long-run allocation matches ticket ratios within one
        /// quantum of error per task (the stride guarantee).
        #[test]
        fn allocation_error_is_bounded(w1 in 1u32..20, w2 in 1u32..20, rounds in 100usize..500) {
            let mut s = StrideScheduler::new();
            s.add_task(TaskId(1), TaskParams::with_weight(w1 * 10));
            s.add_task(TaskId(2), TaskParams::with_weight(w2 * 10));
            let counts = {
                let mut rng = SimRng::seed_from(1);
                let mut counts: BTreeMap<TaskId, u32> = BTreeMap::new();
                for _ in 0..rounds {
                    for id in s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO,
                                        SimDuration::from_millis(10), &mut rng) {
                        *counts.entry(id).or_default() += 1;
                        s.charge(id, SimDuration::from_millis(10));
                    }
                }
                counts
            };
            let c1 = f64::from(counts.get(&TaskId(1)).copied().unwrap_or(0));
            let expected = rounds as f64 * f64::from(w1) / f64::from(w1 + w2);
            // Stride error bound: within ~2 quanta for two tasks.
            prop_assert!((c1 - expected).abs() <= 2.0,
                         "got {} expected {} (w1={} w2={} rounds={})", c1, expected, w1, w2, rounds);
        }
    }
}
