//! # gridvm-sched
//!
//! Host CPU schedulers and the owner-constraint language of Section
//! 3.2 of the paper ("Resource perspective").
//!
//! The paper's proposal: a resource owner expresses constraints in a
//! specialized language; a toolchain compiles them into a schedule for
//! the virtual machines on the host, enforced by one of several
//! scheduler families the paper cites:
//!
//! * [`lottery`] — probabilistic proportional share (Waldspurger &
//!   Weihl, OSDI '94) \[34\].
//! * [`stride`] — deterministic proportional share (the deterministic
//!   counterpart of lottery scheduling).
//! * [`wfq`] — weighted fair queueing by virtual finish times (Demers
//!   et al.) \[8\].
//! * [`edf`] — periodic real-time reservations with earliest-deadline-
//!   first dispatch and admission control (RT kernel extensions
//!   \[35\], resource kernels \[26\]).
//! * [`timeshare`] — a plain weighted round-robin standing in for the
//!   stock Linux time-sharing scheduler.
//! * [`duty`] — coarse-grain duty-cycle modulation, the paper's
//!   "modulate the priority of virtual machine processes ... using
//!   SIGSTOP/SIGCONT signal delivery".
//! * [`constraint`] — the constraint language: parse owner/VM
//!   requirements, admission-check them, and compile to a concrete
//!   scheduler configuration.
//!
//! All schedulers implement the quantum-driven [`Scheduler`] trait
//! consumed by `gridvm-host`'s multicore host simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod duty;
pub mod edf;
pub mod lottery;
pub mod scheduler;
pub mod stride;
pub mod timeshare;
pub mod wfq;

pub use constraint::{compile, CompiledPolicy, PolicyError};
pub use duty::DutyCycle;
pub use edf::EdfScheduler;
pub use lottery::LotteryScheduler;
pub use scheduler::{Scheduler, SchedulerKind, TaskId, TaskParams};
pub use stride::StrideScheduler;
pub use timeshare::TimeShareScheduler;
pub use wfq::WfqScheduler;
