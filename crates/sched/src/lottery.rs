//! Lottery scheduling (Waldspurger & Weihl, OSDI '94) — the
//! probabilistic proportional-share policy the paper cites \[34\] for
//! compiling owner constraints into scheduler proportions.
//!
//! Each task holds tickets; every quantum the scheduler holds one
//! lottery per core, drawing without replacement so a multicore host
//! never double-schedules a task.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::scheduler::{Scheduler, TaskId, TaskParams};

/// Lottery scheduler. See the [module docs](self).
///
/// ```
/// use gridvm_sched::{LotteryScheduler, Scheduler, TaskId, TaskParams};
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut s = LotteryScheduler::new();
/// s.add_task(TaskId(1), TaskParams::with_weight(750));
/// s.add_task(TaskId(2), TaskParams::with_weight(250));
/// let mut rng = SimRng::seed_from(42);
/// let picked = s.select(&[TaskId(1), TaskId(2)], 1, SimTime::ZERO,
///                       SimDuration::from_millis(10), &mut rng);
/// assert_eq!(picked.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LotteryScheduler {
    /// Keyed by `TaskId.0` — task ids are small and densely assigned.
    tickets: DenseMap<u32>,
    quanta_granted: DenseMap<u64>,
    /// Scratch ticket pool reused across quanta so steady-state draws
    /// allocate nothing.
    draw_pool: Vec<(TaskId, u32)>,
}

impl LotteryScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        LotteryScheduler::default()
    }

    /// Total quanta granted to `id` so far (for fairness assertions).
    pub fn quanta_granted(&self, id: TaskId) -> u64 {
        self.quanta_granted.get(id.0).copied().unwrap_or(0)
    }
}

impl Scheduler for LotteryScheduler {
    fn add_task(&mut self, id: TaskId, params: TaskParams) {
        assert!(params.weight > 0, "zero-ticket task");
        self.tickets.insert(id.0, params.weight);
    }

    fn remove_task(&mut self, id: TaskId) {
        self.tickets.remove(id.0);
        self.quanta_granted.remove(id.0);
    }

    fn select_into(
        &mut self,
        runnable: &[TaskId],
        cores: usize,
        _now: SimTime,
        _quantum: SimDuration,
        rng: &mut SimRng,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        if runnable.is_empty() || cores == 0 {
            return;
        }
        let mut pool = std::mem::take(&mut self.draw_pool);
        pool.clear();
        for id in runnable {
            let t = *self
                .tickets
                .get(id.0)
                .unwrap_or_else(|| panic!("{id} not registered"));
            pool.push((*id, t));
        }
        for _ in 0..cores.min(runnable.len()) {
            let total: u64 = pool.iter().map(|(_, t)| u64::from(*t)).sum();
            if total == 0 {
                break;
            }
            let mut draw = rng.next_below(total);
            let mut winner_idx = pool.len() - 1;
            for (i, (_, t)) in pool.iter().enumerate() {
                if draw < u64::from(*t) {
                    winner_idx = i;
                    break;
                }
                draw -= u64::from(*t);
            }
            let (winner, _) = pool.swap_remove(winner_idx);
            match self.quanta_granted.get_mut(winner.0) {
                Some(n) => *n += 1,
                None => {
                    self.quanta_granted.insert(winner.0, 1);
                }
            }
            out.push(winner);
        }
        self.draw_pool = pool;
    }

    fn charge(&mut self, _id: TaskId, _used: SimDuration) {
        // Lottery scheduling is memoryless: no per-quantum state.
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> SimDuration {
        SimDuration::from_millis(10)
    }

    #[test]
    fn ticket_ratio_drives_long_run_share() {
        let mut s = LotteryScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(300));
        s.add_task(TaskId(2), TaskParams::with_weight(100));
        let ids = [TaskId(1), TaskId(2)];
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            s.select(&ids, 1, SimTime::ZERO, q(), &mut rng);
        }
        let r = s.quanta_granted(TaskId(1)) as f64 / s.quanta_granted(TaskId(2)) as f64;
        assert!((2.6..3.4).contains(&r), "observed ratio {r}");
    }

    #[test]
    fn draws_without_replacement_on_multicore() {
        let mut s = LotteryScheduler::new();
        let ids = [TaskId(1), TaskId(2), TaskId(3)];
        for id in ids {
            s.add_task(id, TaskParams::default());
        }
        let mut rng = SimRng::seed_from(8);
        for _ in 0..100 {
            let picked = s.select(&ids, 2, SimTime::ZERO, q(), &mut rng);
            assert_eq!(picked.len(), 2);
            assert_ne!(picked[0], picked[1]);
        }
    }

    #[test]
    fn all_tasks_run_when_cores_exceed_tasks() {
        let mut s = LotteryScheduler::new();
        s.add_task(TaskId(1), TaskParams::default());
        s.add_task(TaskId(2), TaskParams::default());
        let mut rng = SimRng::seed_from(9);
        let mut picked = s.select(&[TaskId(1), TaskId(2)], 8, SimTime::ZERO, q(), &mut rng);
        picked.sort();
        assert_eq!(picked, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut s = LotteryScheduler::new();
            for i in 0..5 {
                s.add_task(TaskId(i), TaskParams::with_weight(100 + i as u32));
            }
            s
        };
        let ids: Vec<TaskId> = (0..5).map(TaskId).collect();
        let mut s1 = build();
        let mut s2 = build();
        let mut r1 = SimRng::seed_from(10);
        let mut r2 = SimRng::seed_from(10);
        for _ in 0..100 {
            assert_eq!(
                s1.select(&ids, 2, SimTime::ZERO, q(), &mut r1),
                s2.select(&ids, 2, SimTime::ZERO, q(), &mut r2)
            );
        }
    }

    #[test]
    fn starvation_free_even_with_tiny_ticket_count() {
        let mut s = LotteryScheduler::new();
        s.add_task(TaskId(1), TaskParams::with_weight(10_000));
        s.add_task(TaskId(2), TaskParams::with_weight(1));
        let ids = [TaskId(1), TaskId(2)];
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100_000 {
            s.select(&ids, 1, SimTime::ZERO, q(), &mut rng);
        }
        assert!(
            s.quanta_granted(TaskId(2)) > 0,
            "1-ticket task never ran in 100k lotteries"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Long-run lottery allocation tracks ticket ratios within
        /// statistical tolerance for arbitrary two-task ticket splits.
        #[test]
        fn allocation_tracks_tickets(t1 in 1u32..50, t2 in 1u32..50) {
            let mut s = LotteryScheduler::new();
            s.add_task(TaskId(1), TaskParams::with_weight(t1 * 20));
            s.add_task(TaskId(2), TaskParams::with_weight(t2 * 20));
            let ids = [TaskId(1), TaskId(2)];
            let mut rng = SimRng::seed_from(42);
            let rounds = 4_000u32;
            for _ in 0..rounds {
                s.select(&ids, 1, SimTime::ZERO, SimDuration::from_millis(10), &mut rng);
            }
            let expected = f64::from(rounds) * f64::from(t1) / f64::from(t1 + t2);
            let got = s.quanta_granted(TaskId(1)) as f64;
            // Binomial std dev bound: 4 sigma of sqrt(n*p*(1-p)).
            let p = f64::from(t1) / f64::from(t1 + t2);
            let sigma = (f64::from(rounds) * p * (1.0 - p)).sqrt();
            prop_assert!((got - expected).abs() <= 4.0 * sigma + 1.0,
                "got {} expected {} (sigma {})", got, expected, sigma);
        }
    }
}
