//! The owner-constraint language and its compiler (Section 3.2).
//!
//! The paper: *"Our approach to the complex and varying constraints of
//! resource owners is to use a specialized language for specifying the
//! constraints, and to use a toolchain for enforcing constraints
//! specified in the language when scheduling virtual machines on the
//! host operating system."*
//!
//! This module is that toolchain. A policy text such as
//!
//! ```text
//! host cores 2;
//! owner reserve 0.5;
//! vm "grid-a" tickets 300;
//! vm "grid-b" share 0.25;
//! vm "render" realtime period 100ms slice 20ms;
//! ```
//!
//! is parsed, admission-checked (total real-time utilization plus the
//! owner reserve must fit the cores) and compiled into a concrete
//! scheduler configuration: an EDF scheduler with reservations when
//! any real-time clause is present, otherwise a stride
//! proportional-share scheduler with weights derived from tickets and
//! shares.

use std::collections::BTreeMap;
use std::fmt;

use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::Share;

use crate::scheduler::{Reservation, SchedulerKind, TaskParams};

/// What a policy grants one VM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Grant {
    /// Proportional-share tickets.
    Tickets(u32),
    /// A fraction of total host capacity.
    Fraction(f64),
    /// A periodic real-time reservation.
    Realtime(Reservation),
}

/// One VM's compiled entry.
#[derive(Clone, Debug, PartialEq)]
pub struct VmPolicy {
    /// The VM name from the policy text.
    pub name: String,
    /// The compiled grant.
    pub grant: Grant,
}

/// A parsed, admission-checked policy.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledPolicy {
    /// Host core count (`host cores N;`, default 1).
    pub cores: usize,
    /// CPU fraction reserved for the owner's interactive work
    /// (`owner reserve F;`, default 0).
    pub owner_reserve: Share,
    /// Per-VM grants, in declaration order.
    pub vms: Vec<VmPolicy>,
}

impl CompiledPolicy {
    /// The scheduler family this policy requires: EDF when any VM has
    /// a real-time clause or the owner reserves capacity, stride
    /// otherwise.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        let needs_rt = !self.owner_reserve.is_zero()
            || self
                .vms
                .iter()
                .any(|v| matches!(v.grant, Grant::Realtime(_)));
        if needs_rt {
            SchedulerKind::Edf
        } else {
            SchedulerKind::Stride
        }
    }

    /// Scheduler parameters for each VM, in declaration order.
    ///
    /// Fractions compile to reservations under EDF and to weights
    /// under stride; tickets compile to best-effort weights either
    /// way.
    pub fn vm_params(&self) -> Vec<(String, TaskParams)> {
        let kind = self.scheduler_kind();
        self.vms
            .iter()
            .map(|v| {
                let params = match (v.grant, kind) {
                    (Grant::Tickets(t), _) => TaskParams::with_weight(t),
                    (Grant::Realtime(r), _) => TaskParams::with_reservation(r.period, r.slice),
                    (Grant::Fraction(f), SchedulerKind::Edf) => {
                        let period = SimDuration::from_millis(100);
                        let slice = period.mul_f64(f * self.cores as f64);
                        TaskParams::with_reservation(period, slice.min(period))
                    }
                    (Grant::Fraction(f), _) => {
                        TaskParams::with_weight(((f * 1000.0).round() as u32).max(1))
                    }
                };
                (v.name.clone(), params)
            })
            .collect()
    }

    /// Scheduler parameters for the owner's interactive pseudo-task,
    /// when the policy reserves owner capacity.
    pub fn owner_params(&self) -> Option<TaskParams> {
        if self.owner_reserve.is_zero() {
            return None;
        }
        let period = SimDuration::from_millis(100);
        let slice = period.mul_f64(self.owner_reserve.as_f64() * self.cores as f64);
        Some(TaskParams::with_reservation(period, slice.min(period)))
    }
}

/// Errors from parsing or admission-checking a policy.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyError {
    /// Lexical error at byte offset.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character.
        found: char,
    },
    /// Unexpected token.
    Parse {
        /// What the parser expected.
        expected: &'static str,
        /// What it found.
        found: String,
    },
    /// A numeric field was out of range.
    Range {
        /// Which field.
        what: &'static str,
        /// The offending value, rendered.
        value: String,
    },
    /// Two VM statements share a name.
    DuplicateVm(
        /// The duplicated name.
        String,
    ),
    /// The combined real-time demand exceeds host capacity.
    Overcommitted {
        /// Total demanded utilization in CPUs.
        demanded: f64,
        /// Available CPUs.
        cores: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            PolicyError::Parse { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            PolicyError::Range { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            PolicyError::DuplicateVm(name) => write!(f, "duplicate vm {name:?}"),
            PolicyError::Overcommitted { demanded, cores } => write!(
                f,
                "policy demands {demanded:.2} CPUs of guaranteed capacity but host has {cores}"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Duration(SimDuration),
    Str(String),
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier {s:?}"),
            Token::Number(n) => write!(f, "number {n}"),
            Token::Duration(d) => write!(f, "duration {d}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Semi => write!(f, "';'"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<Token>, PolicyError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == ';' {
            out.push(Token::Semi);
            i += 1;
        } else if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != '"' {
                j += 1;
            }
            if j == bytes.len() {
                return Err(PolicyError::Lex {
                    offset: i,
                    found: '"',
                });
            }
            out.push(Token::Str(bytes[start..j].iter().collect()));
            i = j + 1;
        } else if c.is_ascii_digit() || c == '.' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                i += 1;
            }
            let num: String = bytes[start..i].iter().collect();
            let value: f64 = num.parse().map_err(|_| PolicyError::Parse {
                expected: "number",
                found: num.clone(),
            })?;
            // Optional duration suffix.
            let mut suffix = String::new();
            while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                suffix.push(bytes[i]);
                i += 1;
            }
            match suffix.as_str() {
                "" => out.push(Token::Number(value)),
                "us" => out.push(Token::Duration(SimDuration::from_secs_f64(value / 1e6))),
                "ms" => out.push(Token::Duration(SimDuration::from_secs_f64(value / 1e3))),
                "s" => out.push(Token::Duration(SimDuration::from_secs_f64(value))),
                other => {
                    return Err(PolicyError::Parse {
                        expected: "duration unit (us/ms/s)",
                        found: other.to_owned(),
                    })
                }
            }
        } else if c.is_ascii_alphabetic() || c == '_' || c == '-' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '-')
            {
                i += 1;
            }
            out.push(Token::Ident(bytes[start..i].iter().collect()));
        } else {
            return Err(PolicyError::Lex {
                offset: i,
                found: c,
            });
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &'static str) -> Result<Token, PolicyError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(PolicyError::Parse {
                expected,
                found: "end of input".to_owned(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &'static str) -> Result<(), PolicyError> {
        match self.next(kw)? {
            Token::Ident(s) if s == kw => Ok(()),
            other => Err(PolicyError::Parse {
                expected: kw,
                found: other.to_string(),
            }),
        }
    }

    fn number(&mut self, what: &'static str) -> Result<f64, PolicyError> {
        match self.next(what)? {
            Token::Number(n) => Ok(n),
            other => Err(PolicyError::Parse {
                expected: what,
                found: other.to_string(),
            }),
        }
    }

    fn duration(&mut self, what: &'static str) -> Result<SimDuration, PolicyError> {
        match self.next(what)? {
            Token::Duration(d) => Ok(d),
            other => Err(PolicyError::Parse {
                expected: what,
                found: other.to_string(),
            }),
        }
    }

    fn semi(&mut self) -> Result<(), PolicyError> {
        match self.next("';'")? {
            Token::Semi => Ok(()),
            other => Err(PolicyError::Parse {
                expected: "';'",
                found: other.to_string(),
            }),
        }
    }
}

/// Parses and admission-checks a policy text.
///
/// # Errors
///
/// Returns a [`PolicyError`] on lexical or syntax errors, duplicate
/// VM names, out-of-range values, or a real-time demand (including
/// the owner reserve) exceeding the declared core count.
///
/// ```
/// use gridvm_sched::constraint::compile;
/// let p = compile(r#"
///     host cores 2;
///     owner reserve 0.5;
///     vm "grid-a" tickets 300;
/// "#)?;
/// assert_eq!(p.cores, 2);
/// assert_eq!(p.vms.len(), 1);
/// # Ok::<(), gridvm_sched::PolicyError>(())
/// ```
pub fn compile(src: &str) -> Result<CompiledPolicy, PolicyError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut cores = 1usize;
    let mut owner_reserve = Share::ZERO;
    let mut vms: Vec<VmPolicy> = Vec::new();
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();

    while let Some(tok) = p.peek() {
        match tok {
            Token::Ident(kw) if kw == "host" => {
                p.keyword("host")?;
                p.keyword("cores")?;
                let n = p.number("core count")?;
                if !(1.0..=1024.0).contains(&n) || n.fract() != 0.0 {
                    return Err(PolicyError::Range {
                        what: "core count",
                        value: n.to_string(),
                    });
                }
                cores = n as usize;
                p.semi()?;
            }
            Token::Ident(kw) if kw == "owner" => {
                p.keyword("owner")?;
                p.keyword("reserve")?;
                let f = p.number("owner reserve fraction")?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(PolicyError::Range {
                        what: "owner reserve",
                        value: f.to_string(),
                    });
                }
                owner_reserve = Share::new(f);
                p.semi()?;
            }
            Token::Ident(kw) if kw == "vm" => {
                p.keyword("vm")?;
                let name = match p.next("vm name")? {
                    Token::Str(s) | Token::Ident(s) => s,
                    other => {
                        return Err(PolicyError::Parse {
                            expected: "vm name",
                            found: other.to_string(),
                        })
                    }
                };
                if seen.insert(name.clone(), ()).is_some() {
                    return Err(PolicyError::DuplicateVm(name));
                }
                let grant = match p.next("grant clause")? {
                    Token::Ident(c) if c == "tickets" => {
                        let n = p.number("ticket count")?;
                        if !(1.0..=1e6).contains(&n) || n.fract() != 0.0 {
                            return Err(PolicyError::Range {
                                what: "tickets",
                                value: n.to_string(),
                            });
                        }
                        Grant::Tickets(n as u32)
                    }
                    Token::Ident(c) if c == "share" => {
                        let f = p.number("share fraction")?;
                        if !(0.0 < f && f <= 1.0) {
                            return Err(PolicyError::Range {
                                what: "share",
                                value: f.to_string(),
                            });
                        }
                        Grant::Fraction(f)
                    }
                    Token::Ident(c) if c == "realtime" => {
                        p.keyword("period")?;
                        let period = p.duration("period duration")?;
                        p.keyword("slice")?;
                        let slice = p.duration("slice duration")?;
                        if period.is_zero() || slice.is_zero() || slice > period {
                            return Err(PolicyError::Range {
                                what: "realtime reservation",
                                value: format!("period {period} slice {slice}"),
                            });
                        }
                        Grant::Realtime(Reservation { period, slice })
                    }
                    other => {
                        return Err(PolicyError::Parse {
                            expected: "tickets/share/realtime",
                            found: other.to_string(),
                        })
                    }
                };
                p.semi()?;
                vms.push(VmPolicy { name, grant });
            }
            other => {
                return Err(PolicyError::Parse {
                    expected: "host/owner/vm statement",
                    found: other.to_string(),
                })
            }
        }
    }

    // Admission check: guaranteed capacity must fit.
    let mut demanded = owner_reserve.as_f64() * cores as f64;
    for v in &vms {
        demanded += match v.grant {
            Grant::Realtime(r) => r.utilization(),
            Grant::Fraction(f) => f * cores as f64,
            Grant::Tickets(_) => 0.0, // best effort
        };
    }
    if demanded > cores as f64 + 1e-9 {
        return Err(PolicyError::Overcommitted { demanded, cores });
    }

    Ok(CompiledPolicy {
        cores,
        owner_reserve,
        vms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_policy() {
        let p = compile(
            r#"
            # a comment
            host cores 2;
            owner reserve 0.5;
            vm "grid-a" tickets 300;
            vm "grid-b" share 0.25;
            vm render realtime period 100ms slice 20ms;
            "#,
        )
        .expect("valid policy");
        assert_eq!(p.cores, 2);
        assert_eq!(p.owner_reserve, Share::new(0.5));
        assert_eq!(p.vms.len(), 3);
        assert_eq!(p.vms[0].grant, Grant::Tickets(300));
        assert_eq!(p.vms[1].grant, Grant::Fraction(0.25));
        assert!(matches!(p.vms[2].grant, Grant::Realtime(_)));
    }

    #[test]
    fn empty_policy_is_default() {
        let p = compile("").expect("empty ok");
        assert_eq!(p.cores, 1);
        assert!(p.owner_reserve.is_zero());
        assert!(p.vms.is_empty());
        assert_eq!(p.scheduler_kind(), SchedulerKind::Stride);
        assert!(p.owner_params().is_none());
    }

    #[test]
    fn realtime_or_reserve_selects_edf() {
        let rt = compile(r#"vm a realtime period 10ms slice 1ms;"#).unwrap();
        assert_eq!(rt.scheduler_kind(), SchedulerKind::Edf);
        let owner = compile("owner reserve 0.3;").unwrap();
        assert_eq!(owner.scheduler_kind(), SchedulerKind::Edf);
        let plain = compile(r#"vm a tickets 100;"#).unwrap();
        assert_eq!(plain.scheduler_kind(), SchedulerKind::Stride);
    }

    #[test]
    fn vm_params_translate_grants() {
        let p = compile(
            r#"
            host cores 2;
            vm a share 0.5;
            vm b tickets 42;
            "#,
        )
        .unwrap();
        let params = p.vm_params();
        assert_eq!(params[0].1.weight, 500);
        assert_eq!(params[1].1.weight, 42);
    }

    #[test]
    fn shares_become_reservations_under_edf() {
        let p = compile(
            r#"
            host cores 2;
            owner reserve 0.25;
            vm a share 0.5;
            "#,
        )
        .unwrap();
        let params = p.vm_params();
        let r = params[0]
            .1
            .reservation
            .expect("share compiled to reservation");
        // 0.5 of a 2-core host = 1.0 CPU = 100ms per 100ms period.
        assert_eq!(r.slice, SimDuration::from_millis(100));
        let o = p.owner_params().expect("owner reserved");
        assert_eq!(o.reservation.unwrap().slice, SimDuration::from_millis(50));
    }

    #[test]
    fn overcommit_is_rejected() {
        let err = compile(
            r#"
            host cores 1;
            owner reserve 0.5;
            vm a share 0.4;
            vm b realtime period 100ms slice 20ms;
            "#,
        )
        .unwrap_err();
        match err {
            PolicyError::Overcommitted { demanded, cores } => {
                assert_eq!(cores, 1);
                assert!(demanded > 1.0);
            }
            other => panic!("expected overcommit, got {other}"),
        }
    }

    #[test]
    fn tickets_are_not_guaranteed_capacity() {
        // Huge ticket counts never overcommit — they are best effort.
        let p = compile(r#"vm a tickets 999999; vm b tickets 999999;"#);
        assert!(p.is_ok());
    }

    #[test]
    fn duplicate_vm_is_rejected() {
        let err = compile(r#"vm a tickets 1; vm a tickets 2;"#).unwrap_err();
        assert_eq!(err, PolicyError::DuplicateVm("a".to_owned()));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(matches!(
            compile("host cores two;"),
            Err(PolicyError::Parse { .. })
        ));
        assert!(matches!(
            compile("vm a share 1.5;"),
            Err(PolicyError::Range { .. })
        ));
        assert!(matches!(
            compile("vm a realtime period 10ms slice 20ms;"),
            Err(PolicyError::Range { .. })
        ));
        assert!(matches!(
            compile("host cores 2"),
            Err(PolicyError::Parse { .. })
        ));
        assert!(matches!(compile("@"), Err(PolicyError::Lex { .. })));
        assert!(matches!(
            compile("vm a tickets 5x;"),
            Err(PolicyError::Parse { .. })
        ));
        assert!(matches!(
            compile(r#"vm "unterminated tickets 5;"#),
            Err(PolicyError::Lex { .. })
        ));
    }

    #[test]
    fn durations_parse_all_units() {
        let p = compile(r#"vm a realtime period 1s slice 500000us;"#).unwrap();
        match p.vms[0].grant {
            Grant::Realtime(r) => {
                assert_eq!(r.period, SimDuration::from_secs(1));
                assert_eq!(r.slice, SimDuration::from_millis(500));
            }
            ref g => panic!("unexpected grant {g:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = PolicyError::Overcommitted {
            demanded: 1.5,
            cores: 1,
        };
        assert!(e.to_string().contains("1.50 CPUs"));
        let d = PolicyError::DuplicateVm("x".into());
        assert!(d.to_string().contains('x'));
    }
}
