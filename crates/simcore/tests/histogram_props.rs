//! Property tests for the log-scale streaming [`Histogram`]
//! (DESIGN.md §14): the merge is an exact element-wise integer add,
//! so it must behave like a commutative, associative monoid over
//! arbitrary value streams, and quantiles must be order-independent,
//! monotone, and within the layout's relative-error bound. These are
//! the algebraic facts the sharded simulator leans on when it rolls
//! per-site registries into one VO summary in site order — any
//! grouping of sites into shards has to produce bit-identical state.

use gridvm_simcore::hist::Histogram;
use proptest::prelude::*;

/// Values that fit the default layout (`max_exp = 48`).
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1u64 << 48), 0..256)
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// `merge` is commutative on the full struct state (buckets,
    /// count, total, min, max) — not just on derived quantiles.
    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// `merge` is associative: any shard tree produces the same
    /// bits as a flat left fold.
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb;
        right_tail.merge(&hc);
        let mut right = ha;
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
    }

    /// Splitting one stream across any shard count and merging the
    /// per-shard histograms is bit-identical to recording the whole
    /// stream into one histogram — the invariant behind
    /// shard/thread-count invariance of merged metrics.
    #[test]
    fn sharded_merge_matches_single_recorder(vs in values(), shards in 1usize..9) {
        let whole = hist_of(&vs);
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::default()).collect();
        for (i, &v) in vs.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = Histogram::default();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged, whole);
    }

    /// Quantiles are monotone in `q`, pinned to exact `min`/`max` at
    /// the extremes, and bracket the mean.
    #[test]
    fn quantiles_are_monotone_and_clamped(vs in proptest::collection::vec(0u64..(1u64 << 48), 1..256)) {
        let h = hist_of(&vs);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut prev = h.quantile(0.0);
        for &q in &qs {
            let cur = h.quantile(q);
            prop_assert!(cur >= prev, "quantile({q}) regressed: {cur} < {prev}");
            prev = cur;
        }
        // The bottom estimate sits in min's bucket (upper-bound
        // representative, so within the layout's relative error of
        // the exact min); the top clamps to the exact max.
        let bottom = h.quantile(0.0);
        prop_assert!(bottom >= h.min() && bottom <= h.min() + h.min() / 32 + 1);
        prop_assert_eq!(h.quantile(1.0), h.max());
        prop_assert!(h.mean() >= h.min() as f64 && h.mean() <= h.max() as f64);
    }

    /// Every quantile is within the layout's relative-error bound of
    /// the exact order statistic: the bucket representative is the
    /// bucket's upper bound, so the estimate never undershoots and
    /// overshoots by at most one part in `2^sub_bits` (1/32 for the
    /// default layout), saturated by the exact-max clamp.
    #[test]
    fn quantiles_track_exact_order_statistics(
        vs in proptest::collection::vec(0u64..(1u64 << 48), 1..256),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&vs);
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[target - 1];
        let est = h.quantile(q);
        prop_assert!(est >= exact, "estimate {est} under exact {exact}");
        prop_assert!(
            est <= exact + exact / 32 + 1,
            "estimate {est} beyond error bound of exact {exact}"
        );
    }

    /// `record_n` is exactly `n` repeated `record`s.
    #[test]
    fn record_n_matches_repeated_record(v in 0u64..(1u64 << 48), n in 0u64..512) {
        let mut bulk = Histogram::default();
        bulk.record_n(v, n);
        let mut loop_h = Histogram::default();
        for _ in 0..n {
            loop_h.record(v);
        }
        prop_assert_eq!(bulk, loop_h);
    }
}
