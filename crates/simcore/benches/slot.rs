//! Criterion bench: the slot-layer containers in isolation — the
//! SlotMap handle churn and DenseMap lookup shapes that sit under the
//! vnet/vfs/sched/storage hot paths, with the BTreeMap equivalents
//! alongside for an A/B on the same workload.

use std::collections::BTreeMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::slot::{DenseMap, Handle, SlotMap};

/// Reproducible op stream: (selector, payload) pairs.
fn ops(n: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from(7);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_slotmap(c: &mut Criterion) {
    let stream = ops(100_000);

    c.bench_function("slot: 100k insert/remove/get churn, ~1k live", |b| {
        b.iter(|| {
            let mut map: SlotMap<(), u64> = SlotMap::new();
            let mut live: Vec<Handle<()>> = Vec::new();
            let mut sum = 0u64;
            for op in &stream {
                match (op % 4, live.is_empty()) {
                    (0, _) | (_, true) => live.push(map.insert(*op)),
                    (1, false) => {
                        let h = live.swap_remove((op >> 2) as usize % live.len());
                        sum ^= map.remove(h).expect("live handle");
                    }
                    (_, false) => {
                        let h = live[(op >> 2) as usize % live.len()];
                        sum ^= *map.get(h).expect("live handle");
                    }
                }
            }
            black_box(sum)
        })
    });

    c.bench_function("slot[btree]: same churn via BTreeMap", |b| {
        b.iter(|| {
            let mut map: BTreeMap<u64, u64> = BTreeMap::new();
            let mut live: Vec<u64> = Vec::new();
            let mut next = 0u64;
            let mut sum = 0u64;
            for op in &stream {
                match (op % 4, live.is_empty()) {
                    (0, _) | (_, true) => {
                        map.insert(next, *op);
                        live.push(next);
                        next += 1;
                    }
                    (1, false) => {
                        let k = live.swap_remove((op >> 2) as usize % live.len());
                        sum ^= map.remove(&k).expect("live key");
                    }
                    (_, false) => {
                        let k = live[(op >> 2) as usize % live.len()];
                        sum ^= *map.get(&k).expect("live key");
                    }
                }
            }
            black_box(sum)
        })
    });
}

fn bench_densemap(c: &mut Criterion) {
    let stream = ops(100_000);

    c.bench_function("dense: 100k get/insert over 2k-key universe", |b| {
        b.iter(|| {
            let mut map: DenseMap<u64> = DenseMap::new();
            let mut sum = 0u64;
            for op in &stream {
                let key = op % 2048;
                match map.get_mut(key) {
                    Some(v) => {
                        *v = v.wrapping_add(*op);
                        sum ^= *v;
                    }
                    None => {
                        map.insert(key, *op);
                    }
                }
            }
            black_box(sum)
        })
    });

    c.bench_function("dense[btree]: same mix via BTreeMap", |b| {
        b.iter(|| {
            let mut map: BTreeMap<u64, u64> = BTreeMap::new();
            let mut sum = 0u64;
            for op in &stream {
                let key = op % 2048;
                match map.get_mut(&key) {
                    Some(v) => {
                        *v = v.wrapping_add(*op);
                        sum ^= *v;
                    }
                    None => {
                        map.insert(key, *op);
                    }
                }
            }
            black_box(sum)
        })
    });
}

criterion_group!(benches, bench_slotmap, bench_densemap);
criterion_main!(benches);
