//! Criterion bench: the event-queue hot path in isolation — the
//! push/pop/cancel mixes every experiment binary funnels through —
//! plus the metrics counter fast path.
//!
//! These sizes (100k events) match the acceptance bar for the indexed
//! d-ary heap: run `cargo bench -p gridvm-simcore` before and after a
//! queue change and compare medians.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridvm_simcore::event::EventQueue;
use gridvm_simcore::lru::LruSet;
use gridvm_simcore::metrics::Counter;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimTime;

/// Pseudo-random but reproducible event times.
fn times(n: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed_from(42);
    (0..n)
        .map(|_| SimTime::from_nanos(rng.next_u64() % 1_000_000))
        .collect()
}

fn bench_queue(c: &mut Criterion) {
    let ts = times(100_000);

    c.bench_function("queue: push+pop 100k random times", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, t) in ts.iter().enumerate() {
                q.push(*t, i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });

    // A/B: the same workload against both storage layouts, regardless
    // of the crate's `wheel` feature default.
    c.bench_function("queue[wheel]: push+pop 100k random times", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_wheel();
            for (i, t) in ts.iter().enumerate() {
                q.push(*t, i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });

    c.bench_function("queue[heap-only]: push+pop 100k random times", |b| {
        b.iter(|| {
            let mut q = EventQueue::heap_only();
            for (i, t) in ts.iter().enumerate() {
                q.push(*t, i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });

    // A/B: the single-event-in-flight chain (the Engine::run steady
    // state of every chained-event workload) against both layouts.
    c.bench_function("queue[wheel]: 100k single-event chain", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_wheel();
            q.push(SimTime::ZERO, 0usize);
            for i in 0..100_000usize {
                let (t, _, _) = q.pop().expect("chain stays alive");
                q.push(SimTime::from_nanos(t.as_nanos() + 10_000), i);
            }
            q.len()
        })
    });

    c.bench_function("queue[heap-only]: 100k single-event chain", |b| {
        b.iter(|| {
            let mut q = EventQueue::heap_only();
            q.push(SimTime::ZERO, 0usize);
            for i in 0..100_000usize {
                let (t, _, _) = q.pop().expect("chain stays alive");
                q.push(SimTime::from_nanos(t.as_nanos() + 10_000), i);
            }
            q.len()
        })
    });

    c.bench_function("queue: push 100k / cancel every 3rd / drain", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let ids: Vec<_> = ts.iter().enumerate().map(|(i, t)| q.push(*t, i)).collect();
                (q, ids)
            },
            |(mut q, ids)| {
                for id in ids.iter().step_by(3) {
                    q.cancel(*id);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("queue: steady-state 100k pop+push (sim loop shape)", |b| {
        // The discrete-event steady state: keep ~1k events pending,
        // pop the earliest and push a successor — the exact shape of
        // Engine::run on a long simulation.
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, t) in ts.iter().take(1_000).enumerate() {
                q.push(*t, i);
            }
            let mut horizon: u64 = 1_000_000;
            for i in 0..100_000usize {
                let (t, _, _) = q.pop().expect("queue stays warm");
                horizon = horizon.max(t.as_nanos() + 1);
                q.push(SimTime::from_nanos(horizon + (i as u64 * 7919) % 10_000), i);
            }
            q.len()
        })
    });

    c.bench_function("queue: cancel-after-fire churn 100k", |b| {
        // Cancel handles whose events already fired: the tombstone
        // leak's worst case in the seed implementation.
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut fired = Vec::with_capacity(100_000);
            for (i, t) in ts.iter().enumerate() {
                let id = q.push(*t, i);
                fired.push(id);
                if i % 2 == 1 {
                    q.pop();
                    q.pop();
                }
            }
            for id in fired {
                q.cancel(id);
            }
            q.len()
        })
    });

    c.bench_function("metrics: 100k counter adds by name", |b| {
        b.iter(|| {
            gridvm_simcore::metrics::reset();
            for _ in 0..100_000 {
                gridvm_simcore::metrics::counter_add("bench.by_name", 1);
            }
            gridvm_simcore::metrics::take().counter("bench.by_name")
        })
    });

    c.bench_function("metrics: 100k counter adds via handle", |b| {
        static BENCH_HANDLE: Counter = Counter::new("bench.by_handle");
        b.iter(|| {
            gridvm_simcore::metrics::reset();
            for _ in 0..100_000 {
                BENCH_HANDLE.add(1);
            }
            gridvm_simcore::metrics::take().counter("bench.by_handle")
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru: 100k touch-or-insert, capacity 4096 of 8192", |b| {
        // ~50% hit rate churn: the buffer-cache shape.
        b.iter_batched(
            || LruSet::new(4096),
            |mut lru| {
                for i in 0..100_000u64 {
                    let key = i % 8192;
                    if !lru.touch(&key) {
                        lru.insert(key);
                    }
                }
                lru.len()
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("lru: 100k insert/remove mix, capacity 1024", |b| {
        b.iter_batched(
            || LruSet::new(1024),
            |mut lru| {
                for i in 0..100_000u64 {
                    lru.insert(i % 3000);
                    if i % 5 == 0 {
                        lru.remove(&((i + 1500) % 3000));
                    }
                }
                lru.len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_queue, bench_lru);
criterion_main!(benches);
