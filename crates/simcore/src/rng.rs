//! Deterministic, splittable random number generation.
//!
//! The suite never calls the OS entropy source: every experiment takes
//! a single `u64` seed and derives per-component generators with
//! [`SimRng::split`], so adding a component to one part of a
//! simulation does not perturb the random streams of another.
//!
//! The generator is **xoshiro256++**, seeded through SplitMix64, both
//! implemented here so the suite has no behavioural dependency on an
//! external crate's stream stability.

use std::fmt;

/// A deterministic pseudo-random generator (xoshiro256++).
///
/// ```
/// use gridvm_simcore::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("state", &self.s).finish()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is valid; the internal state is expanded through
    /// SplitMix64 so even seed `0` yields a well-mixed stream.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent generator for a named subcomponent.
    ///
    /// The derived stream is a deterministic function of this
    /// generator's *seed lineage* and `label`, and drawing from the
    /// child does not advance the parent.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix the label hash with the current state without advancing it.
        let mut sm = h ^ self.s[0].rotate_left(17) ^ self.s[2];
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: zero bound");
        // Lemire-style rejection to avoid modulo bias. The rejection
        // threshold is `2^64 mod bound`, which is < bound — so a low
        // word at or above `bound` is accepted without ever computing
        // the threshold, keeping the 64-bit division off the common
        // path. The accepted draw sequence is identical to always
        // computing it.
        let r = self.next_u64();
        let wide = u128::from(r) * u128::from(bound);
        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
        if lo >= bound {
            return hi;
        }
        let threshold = bound.wrapping_neg() % bound;
        if lo >= threshold {
            return hi;
        }
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(r) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_in: empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn next_f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p={p} out of [0,1]");
        self.next_f64() < p
    }

    /// An exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: non-positive mean {mean}");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// A standard normal variate (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: negative std dev {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// A Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed; used for file sizes and load-burst durations.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: bad parameters");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// A Zipf-like rank in `[0, n)` with skew `theta >= 0`
    /// (`theta = 0` is uniform). Used for block popularity in the
    /// file-system cache experiments.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf: empty universe");
        assert!(theta >= 0.0, "zipf: negative skew");
        if theta == 0.0 {
            return self.next_below(n as u64) as usize;
        }
        // Inverse-CDF by bisection over the generalized harmonic sums
        // would be exact but slow; the standard approximation below
        // (Gray et al.) is accurate enough for cache-locality modeling.
        let zeta: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let mut u = self.next_f64() * zeta;
        for i in 1..=n {
            u -= 1.0 / (i as f64).powf(theta);
            if u <= 0.0 {
                return i - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick: empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ, {same} collisions");
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let root = SimRng::seed_from(99);
        let mut c1 = root.split("disk");
        let mut c2 = root.split("disk");
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = root.split("net");
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let _ = b.split("child");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut r = SimRng::seed_from(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.next_below(5) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_in_full_range_and_point() {
        let mut r = SimRng::seed_from(13);
        assert_eq!(r.next_in(42, 42), 42);
        let x = r.next_in(10, 20);
        assert!((10..=20).contains(&x));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed_from(17);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::seed_from(19);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from(23);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut r = SimRng::seed_from(29);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if r.zipf(100, 1.0) < 10 {
                low += 1;
            }
        }
        // With theta=1 the first 10 of 100 ranks carry well over half
        // the mass; uniform would give ~10%.
        assert!(low > n / 3, "low-rank draws: {low}");
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let mut r = SimRng::seed_from(31);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if r.zipf(100, 0.0) < 10 {
                low += 1;
            }
        }
        assert!((700..1_300).contains(&low), "low-rank draws: {low}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::seed_from(37);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left input in order (astronomically unlikely)"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(41);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
