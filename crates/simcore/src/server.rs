//! Analytic service primitives: FIFO servers and token-bucket-free
//! bandwidth pipes.
//!
//! Much of the gridvm model (disks, NFS daemons, network links,
//! middleware daemons) is well described as "a queue in front of a
//! resource with a deterministic service time per request". Rather
//! than spawning an engine event per request, components keep a
//! [`FifoServer`] and *compute* when a request would complete; the
//! caller then schedules a single completion event. This keeps event
//! counts proportional to requests, not bytes, while preserving exact
//! FIFO queueing behaviour.

use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, ByteSize};

/// A single-channel FIFO queueing server.
///
/// `admit(now, service)` returns the interval during which the request
/// is served, accounting for all previously admitted requests.
///
/// ```
/// use gridvm_simcore::server::FifoServer;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut disk = FifoServer::new();
/// let t0 = SimTime::ZERO;
/// let a = disk.admit(t0, SimDuration::from_millis(10));
/// let b = disk.admit(t0, SimDuration::from_millis(10));
/// assert_eq!(a.start, t0);
/// assert_eq!(b.start, a.finish); // queued behind a
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FifoServer {
    free_at: SimTime,
    served: u64,
    busy: SimDuration,
}

/// The service interval granted to one admitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceGrant {
    /// When service begins (>= admission time).
    pub start: SimTime,
    /// When service completes.
    pub finish: SimTime,
}

impl ServiceGrant {
    /// Total time from admission to completion.
    pub fn latency_from(&self, admitted: SimTime) -> SimDuration {
        self.finish.duration_since(admitted)
    }

    /// Time spent waiting before service began.
    pub fn queueing_from(&self, admitted: SimTime) -> SimDuration {
        self.start.saturating_duration_since(admitted)
    }
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Admits a request at `now` needing `service` of server time;
    /// returns when it starts and finishes.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> ServiceGrant {
        let start = self.free_at.max(now);
        let finish = start + service;
        self.free_at = finish;
        self.served += 1;
        self.busy += service;
        ServiceGrant { start, finish }
    }

    /// The instant the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the server would start a request immediately at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Number of requests admitted so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over `[SimTime::ZERO, now]`, in `[0, 1]`
    /// (1 if `now` is zero and nothing was served).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / elapsed).min(1.0)
    }
}

/// A bandwidth-limited pipe with fixed per-message latency: the
/// standard "latency + size/bandwidth, serialized" link/disk model.
///
/// ```
/// use gridvm_simcore::server::Pipe;
/// use gridvm_simcore::time::{SimDuration, SimTime};
/// use gridvm_simcore::units::{Bandwidth, ByteSize};
///
/// let mut pipe = Pipe::new(SimDuration::from_millis(1), Bandwidth::from_mib_per_sec(100.0));
/// let g = pipe.send(SimTime::ZERO, ByteSize::from_mib(1));
/// // 1ms latency + 10ms serialization
/// assert!((g.finish.as_secs_f64() - 0.011).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pipe {
    latency: SimDuration,
    bandwidth: Bandwidth,
    server: FifoServer,
    bytes: ByteSize,
}

impl Pipe {
    /// Creates a pipe with the given one-way latency and bandwidth.
    pub fn new(latency: SimDuration, bandwidth: Bandwidth) -> Self {
        Pipe {
            latency,
            bandwidth,
            server: FifoServer::new(),
            bytes: ByteSize::ZERO,
        }
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Sends `size` bytes at `now`: serialization is FIFO through the
    /// pipe, and the fixed latency is added after serialization
    /// completes (store-and-forward).
    pub fn send(&mut self, now: SimTime, size: ByteSize) -> ServiceGrant {
        let serialize = self.bandwidth.transfer_time(size);
        let g = self.server.admit(now, serialize);
        self.bytes += size;
        ServiceGrant {
            start: g.start,
            finish: g.finish + self.latency,
        }
    }

    /// The time a `size`-byte message would take on an idle pipe.
    pub fn unloaded_time(&self, size: ByteSize) -> SimDuration {
        self.latency + self.bandwidth.transfer_time(size)
    }

    /// Total bytes pushed through so far.
    pub fn bytes_sent(&self) -> ByteSize {
        self.bytes
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.server.served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let g = s.admit(SimTime::from_secs(5), ms(100));
        assert_eq!(g.start, SimTime::from_secs(5));
        assert_eq!(g.finish, SimTime::from_secs(5) + ms(100));
        assert_eq!(g.queueing_from(SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FifoServer::new();
        let t = SimTime::ZERO;
        let a = s.admit(t, ms(10));
        let b = s.admit(t, ms(20));
        let c = s.admit(t, ms(5));
        assert_eq!(b.start, a.finish);
        assert_eq!(c.start, b.finish);
        assert_eq!(c.finish, t + ms(35));
        assert_eq!(c.queueing_from(t), ms(30));
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn server_idles_between_bursts() {
        let mut s = FifoServer::new();
        s.admit(SimTime::ZERO, ms(10));
        assert!(s.is_idle_at(SimTime::from_secs(1)));
        let g = s.admit(SimTime::from_secs(1), ms(10));
        assert_eq!(g.start, SimTime::from_secs(1));
        // busy 20ms over 1.01s
        let u = s.utilization(g.finish);
        assert!((u - 0.02 / 1.01).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn pipe_adds_latency_after_serialization() {
        let mut p = Pipe::new(ms(50), Bandwidth::from_mib_per_sec(1.0));
        let g = p.send(SimTime::ZERO, ByteSize::from_mib(2));
        assert!((g.finish.as_secs_f64() - 2.05).abs() < 1e-9);
        assert_eq!(p.bytes_sent(), ByteSize::from_mib(2));
        assert_eq!(p.messages_sent(), 1);
    }

    #[test]
    fn pipe_serializes_messages_but_latency_overlaps() {
        let mut p = Pipe::new(ms(100), Bandwidth::from_mib_per_sec(1.0));
        let a = p.send(SimTime::ZERO, ByteSize::from_mib(1));
        let b = p.send(SimTime::ZERO, ByteSize::from_mib(1));
        // serialization back-to-back: 1s then 2s; latency applies to each.
        assert!((a.finish.as_secs_f64() - 1.1).abs() < 1e-9);
        assert!((b.finish.as_secs_f64() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn unloaded_time_ignores_queue() {
        let mut p = Pipe::new(ms(10), Bandwidth::from_mib_per_sec(10.0));
        p.send(SimTime::ZERO, ByteSize::from_gib(1)); // long queue
        let t = p.unloaded_time(ByteSize::from_mib(10));
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// FIFO invariants: starts are non-decreasing, no overlap, and
        /// total busy time equals the sum of service times.
        #[test]
        fn fifo_never_overlaps(reqs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)) {
            let mut s = FifoServer::new();
            let mut sorted = reqs.clone();
            sorted.sort_by_key(|(t, _)| *t);
            let mut last_finish = SimTime::ZERO;
            let mut total = SimDuration::ZERO;
            for (t, svc) in sorted {
                let now = SimTime::from_nanos(t);
                let d = SimDuration::from_nanos(svc);
                let g = s.admit(now, d);
                prop_assert!(g.start >= now);
                prop_assert!(g.start >= last_finish);
                prop_assert_eq!(g.finish, g.start + d);
                last_finish = g.finish;
                total += d;
            }
            prop_assert_eq!(s.busy_time(), total);
        }
    }
}
