//! A fixed-capacity LRU set with O(1) touch, insert, remove and evict.
//!
//! This is the shared recency structure under the block caches in
//! `gridvm-vfs` (proxy block cache) and `gridvm-storage` (host buffer
//! cache). Both previously kept a `BTreeMap` from recency stamp to
//! key, paying O(log n) per access; [`LruSet`] replaces that with an
//! intrusive doubly-linked list threaded through an index arena, so
//! every operation is a hash lookup plus pointer surgery.
//!
//! Determinism: recency order is a pure function of the operation
//! sequence (no hashing or iteration order ever influences which key
//! is evicted), so replications stay bit-identical across thread
//! counts.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

/// Multiplicative mixer for small fixed-width keys (block addresses,
/// `(file, block)` pairs). The keys are program-generated, so SipHash's
/// DoS resistance is wasted on the per-access hot path.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }
}

#[derive(Clone, Debug)]
struct Node<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// A bounded set of keys with least-recently-used eviction, all
/// operations O(1).
///
/// ```
/// use gridvm_simcore::lru::LruSet;
///
/// let mut c = LruSet::new(2);
/// c.insert(1u64);
/// c.insert(2);
/// assert!(c.touch(&1));            // hit, refreshes recency
/// assert_eq!(c.insert(3), Some(2)); // evicts 2, the LRU key
/// assert!(!c.contains(&2));
/// assert!(c.contains(&1));
/// ```
#[derive(Clone, Debug)]
pub struct LruSet<K> {
    capacity: usize,
    map: HashMap<K, u32, BuildHasherDefault<FastHasher>>,
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    /// Most-recently-used node.
    head: u32,
    /// Least-recently-used node (the eviction victim).
    tail: u32,
}

impl<K: Eq + Hash + Copy> LruSet<K> {
    /// Creates a set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity LruSet");
        LruSet {
            capacity,
            map: HashMap::default(),
            nodes: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Capacity in keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Residency check; never affects recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// The current eviction victim (least-recently-used key), if any.
    pub fn lru(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail as usize].key)
    }

    /// Detaches node `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links node `i` in as most-recently-used.
    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// If `key` is resident, marks it most-recently-used and returns
    /// `true`.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.map.get(key) {
            Some(&i) => {
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `key` as most-recently-used. If it was already resident
    /// it is refreshed instead. When the set is full, the
    /// least-recently-used key is evicted and returned.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if self.touch(&key) {
            return None;
        }
        let mut evicted = None;
        let slot = if self.map.len() == self.capacity {
            // Reuse the victim's node slot for the new key.
            let i = self.tail;
            self.unlink(i);
            let victim = self.nodes[i as usize].key;
            self.map.remove(&victim);
            evicted = Some(victim);
            self.nodes[i as usize].key = key;
            i
        } else if let Some(i) = self.free.pop() {
            self.nodes[i as usize].key = key;
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            i
        };
        self.push_front(slot);
        self.map.insert(key, slot);
        evicted
    }

    /// Removes `key` (e.g. on invalidation). Returns whether it was
    /// resident.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                true
            }
            None => false,
        }
    }

    /// Drops every key.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Re-verifies the set's structural invariants from first
    /// principles (runtime audit layer; see [`crate::audit`]):
    /// intrusive-list link integrity (`prev`/`next` agree, the walk
    /// from `head` reaches `tail` in exactly `len` steps, so no cycles
    /// or orphans), map↔node agreement, and capacity/arena accounting.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        use crate::audit::violated;
        if self.map.len() > self.capacity {
            return violated(
                "lru-capacity",
                format!(
                    "{} resident keys exceed capacity {}",
                    self.map.len(),
                    self.capacity
                ),
            );
        }
        if self.nodes.len() != self.map.len() + self.free.len() {
            return violated(
                "lru-arena",
                format!(
                    "{} arena nodes != {} resident + {} free",
                    self.nodes.len(),
                    self.map.len(),
                    self.free.len()
                ),
            );
        }
        // Walk head→tail: each hop's back-pointer must agree, every
        // visited key must map back to its own node index, and the walk
        // must terminate at `tail` after exactly len steps (a longer
        // walk means a cycle, a shorter one an orphaned node).
        let mut visited = 0usize;
        let mut prev = NIL;
        let mut i = self.head;
        while i != NIL {
            if visited == self.map.len() {
                return violated(
                    "lru-link",
                    format!(
                        "recency list longer than {} resident keys (cycle?)",
                        visited
                    ),
                );
            }
            let n = &self.nodes[i as usize];
            if n.prev != prev {
                return violated(
                    "lru-link",
                    format!(
                        "node {i}: prev says {} but list arrived from {prev}",
                        n.prev
                    ),
                );
            }
            if self.map.get(&n.key) != Some(&i) {
                return violated("lru-map", format!("node {i}'s key does not map back to it"));
            }
            prev = i;
            i = n.next;
            visited += 1;
        }
        if prev != self.tail {
            return violated(
                "lru-link",
                format!("walk ended at {prev} but tail says {}", self.tail),
            );
        }
        if visited != self.map.len() {
            return violated(
                "lru-link",
                format!("walk visited {visited} nodes, map holds {}", self.map.len()),
            );
        }
        Ok(())
    }

    /// Keys in most-recently-used-first order (diagnostics and tests;
    /// O(len)).
    pub fn iter_mru(&self) -> impl Iterator<Item = &K> + '_ {
        let mut i = self.head;
        std::iter::from_fn(move || {
            (i != NIL).then(|| {
                let n = &self.nodes[i as usize];
                i = n.next;
                &n.key
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The eviction-order unit tests previously lived on
    // `gridvm_storage::cache::BufferCache` and `gridvm_vfs::proxy`;
    // they now exercise the shared type directly.

    #[test]
    fn lru_eviction_order() {
        let mut c = LruSet::new(3);
        c.insert(1u64);
        c.insert(2);
        c.insert(3);
        c.touch(&1); // 2 is now LRU
        assert_eq!(c.lru(), Some(&2));
        let evicted = c.insert(4);
        assert_eq!(evicted, Some(2));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert!(c.contains(&4));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruSet::new(2);
        c.insert(1u64);
        c.insert(2);
        assert_eq!(c.insert(1), None, "already resident");
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3), Some(2), "1 was refreshed, 2 evicts");
    }

    #[test]
    fn explicit_removal_and_clear() {
        let mut c = LruSet::new(2);
        c.insert(1u64);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        c.insert(2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lru(), None);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = LruSet::new(5);
        for i in 0..100u64 {
            c.insert(i);
        }
        assert_eq!(c.len(), 5);
        for i in 95..100u64 {
            assert!(c.contains(&i));
        }
    }

    #[test]
    fn removal_recycles_slots() {
        let mut c = LruSet::new(4);
        for round in 0..100u64 {
            c.insert(round);
            if round % 2 == 0 {
                c.remove(&round);
            }
        }
        assert!(c.len() <= 4);
        // The arena never grows past capacity despite 100 inserts.
        assert!(c.nodes.len() <= 4);
    }

    #[test]
    fn iter_mru_reports_recency_order() {
        let mut c = LruSet::new(3);
        c.insert(1u64);
        c.insert(2);
        c.insert(3);
        c.touch(&1);
        let order: Vec<u64> = c.iter_mru().copied().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn tuple_keys_work() {
        let mut c = LruSet::new(2);
        c.insert((1u64, 10u64));
        c.insert((1, 11));
        assert_eq!(c.insert((2, 10)), Some((1, 10)));
        assert!(c.contains(&(1, 11)));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = LruSet::<u64>::new(0);
    }

    #[test]
    fn audit_passes_through_mixed_operations() {
        let mut c = LruSet::new(4);
        for round in 0..64u64 {
            c.insert(round % 9);
            c.touch(&(round % 5));
            if round % 3 == 0 {
                c.remove(&(round % 7));
            }
            c.audit().expect("every operation preserves invariants");
        }
    }

    #[test]
    fn audit_detects_broken_back_link() {
        let mut c = LruSet::new(4);
        c.insert(1u64);
        c.insert(2);
        c.insert(3);
        // Sever a prev pointer: forward and backward traversals now
        // disagree, which is exactly the corruption a buggy unlink
        // would leave behind.
        let mid = c.nodes[c.head as usize].next;
        c.nodes[mid as usize].prev = NIL;
        let err = c.audit().expect_err("broken back link must be detected");
        assert_eq!(err.invariant, "lru-link", "{err}");
    }

    #[test]
    fn audit_detects_map_node_disagreement() {
        let mut c = LruSet::new(4);
        c.insert(1u64);
        c.insert(2);
        let head = c.head;
        let stale = c.nodes[head as usize].key;
        c.map.insert(stale, 99); // map now points into nowhere
        let err = c.audit().expect_err("stale map entry must be detected");
        assert_eq!(err.invariant, "lru-map", "{err}");
    }

    #[test]
    fn audit_detects_cycle() {
        let mut c = LruSet::new(4);
        c.insert(1u64);
        c.insert(2);
        c.insert(3);
        // Point the tail back at the head: the recency walk never
        // reaches NIL.
        let tail = c.tail;
        c.nodes[tail as usize].next = c.head;
        let err = c.audit().expect_err("cycle must be detected");
        assert_eq!(err.invariant, "lru-link", "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap as StdHashMap};

    /// Reference model: the stamp-based `BTreeMap` LRU the block
    /// caches used before this type existed.
    struct StampLru {
        capacity: usize,
        resident: StdHashMap<u64, u64>,
        by_stamp: BTreeMap<u64, u64>,
        clock: u64,
    }

    impl StampLru {
        fn new(capacity: usize) -> Self {
            StampLru {
                capacity,
                resident: StdHashMap::new(),
                by_stamp: BTreeMap::new(),
                clock: 0,
            }
        }

        fn touch(&mut self, key: u64) -> bool {
            self.clock += 1;
            if let Some(stamp) = self.resident.get_mut(&key) {
                self.by_stamp.remove(stamp);
                *stamp = self.clock;
                self.by_stamp.insert(self.clock, key);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, key: u64) -> Option<u64> {
            if self.touch(key) {
                return None;
            }
            let mut evicted = None;
            if self.resident.len() == self.capacity {
                let (&oldest, &victim) = self.by_stamp.iter().next().expect("non-empty");
                self.by_stamp.remove(&oldest);
                self.resident.remove(&victim);
                evicted = Some(victim);
            }
            self.resident.insert(key, self.clock);
            self.by_stamp.insert(self.clock, key);
            evicted
        }

        fn remove(&mut self, key: u64) -> bool {
            match self.resident.remove(&key) {
                Some(stamp) => {
                    self.by_stamp.remove(&stamp);
                    true
                }
                None => false,
            }
        }
    }

    proptest! {
        /// Every operation returns exactly what the stamp-based
        /// reference returns — same hits, same eviction victims, same
        /// removals — under random touch/insert/remove interleavings.
        #[test]
        fn matches_btreemap_reference(
            cap in 1usize..12,
            ops in proptest::collection::vec((0u64..32, 0u8..10), 1..300),
        ) {
            let mut lru = LruSet::new(cap);
            let mut model = StampLru::new(cap);
            for (key, action) in ops {
                match action {
                    0..=4 => prop_assert_eq!(lru.insert(key), model.insert(key)),
                    5..=7 => prop_assert_eq!(lru.touch(&key), model.touch(key)),
                    _ => prop_assert_eq!(lru.remove(&key), model.remove(key)),
                }
                prop_assert_eq!(lru.len(), model.resident.len());
                prop_assert!(lru.len() <= cap);
                prop_assert_eq!(
                    lru.lru().copied(),
                    model.by_stamp.values().next().copied()
                );
            }
        }

        /// Sequential scan larger than capacity has zero reuse (LRU's
        /// pathological case) — verifies strict LRU, not approximate.
        #[test]
        fn sequential_scan_thrashes(cap in 1usize..8, rounds in 2usize..5) {
            let n = cap as u64 + 1;
            let mut c = LruSet::new(cap);
            let mut hits = 0;
            for _ in 0..rounds {
                for i in 0..n {
                    if c.touch(&i) {
                        hits += 1;
                    } else {
                        c.insert(i);
                    }
                }
            }
            prop_assert_eq!(hits, 0, "strict LRU must thrash on scan of cap+1");
        }
    }
}
