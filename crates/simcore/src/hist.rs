//! Fixed-bucket log-scale histograms for streaming, mergeable
//! distribution summaries.
//!
//! The name-keyed [`Metrics`](crate::metrics::Metrics) registry and
//! its Welford timers summarize *moments*; macro-scale experiments
//! (the `ext_vo_scale` virtual-organization run) need *tails* — p99
//! and p999 session slowdown over 10⁵–10⁶ sessions — without keeping
//! a sample per session. A [`Histogram`] is the standard answer:
//! HDR-style logarithmic buckets with a fixed sub-bucket resolution,
//! so memory is a constant ~11 KiB per named series regardless of how
//! many values are recorded, relative quantile error is bounded by
//! the sub-bucket width (~3% at the default 5 sub-bucket bits), and —
//! because every field is an integer — merging two histograms is an
//! element-wise `u64` add: exactly associative and commutative, hence
//! bit-identical however the sharded simulator packs sites into
//! shards and shards onto threads.
//!
//! ```
//! use gridvm_simcore::hist::Histogram;
//!
//! let mut h = Histogram::default();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 1000);
//! assert_eq!(h.max(), 1000);
//! // Bounded relative error: p50 lands within one sub-bucket of 500.
//! let p50 = h.p50();
//! assert!((468..=532).contains(&p50), "p50 = {p50}");
//! ```

use std::fmt;

/// Default sub-bucket resolution bits: 32 sub-buckets per power of
/// two, ≈3.1% worst-case relative quantile error.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// Default top exponent: values up to `2^48 - 1` (≈3.2 simulated days
/// in nanoseconds) are representable.
pub const DEFAULT_MAX_EXP: u32 = 48;

/// A streaming log-scale histogram over `u64` values.
///
/// The layout is fixed at construction: `sub_bits` resolution bits
/// (each power-of-two decade splits into `2^sub_bits` equal-width
/// sub-buckets) and a top exponent `max_exp` (values must be below
/// `2^max_exp`). Two histograms merge only when their layouts match;
/// all state is integral, so merge is exactly associative and
/// commutative and merged results are bit-identical for any grouping
/// order — the property the sharded metrics roll-up relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    sub_bits: u32,
    max_exp: u32,
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    /// The registry layout: [`DEFAULT_SUB_BITS`] / [`DEFAULT_MAX_EXP`].
    fn default() -> Self {
        Histogram::new(DEFAULT_SUB_BITS, DEFAULT_MAX_EXP)
    }
}

impl Histogram {
    /// Creates an empty histogram with the given layout: `2^sub_bits`
    /// sub-buckets per power-of-two decade, values below `2^max_exp`.
    ///
    /// # Panics
    ///
    /// Panics when `sub_bits` is zero or above 8, or when `max_exp`
    /// is not in `(sub_bits, 63]` — layouts outside that range are
    /// either useless (no resolution) or overflow bucket indexing.
    pub fn new(sub_bits: u32, max_exp: u32) -> Self {
        assert!(
            (1..=8).contains(&sub_bits),
            "Histogram sub_bits must be in 1..=8, got {sub_bits}"
        );
        assert!(
            sub_bits < max_exp && max_exp <= 63,
            "Histogram max_exp must be in ({sub_bits}, 63], got {max_exp}"
        );
        let buckets = ((max_exp - sub_bits + 1) << sub_bits) as usize;
        Histogram {
            sub_bits,
            max_exp,
            buckets: vec![0; buckets],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The layout as `(sub_bits, max_exp)`.
    pub fn layout(&self) -> (u32, u32) {
        (self.sub_bits, self.max_exp)
    }

    /// Number of buckets the layout allocates (constant per layout).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index of a value. Values below `2^sub_bits` map
    /// exactly (one value per bucket); larger values map into the
    /// `2^sub_bits` equal-width sub-buckets of their power-of-two
    /// decade.
    fn index(&self, v: u64) -> usize {
        let b = self.sub_bits;
        if v < (1 << b) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        ((((msb - b + 1) << b) | ((v >> (msb - b)) as u32 - (1 << b))) as usize)
            .min(self.buckets.len() - 1)
    }

    /// The largest value a bucket covers — the representative
    /// returned by quantile queries, so quantiles never understate.
    fn representative(&self, index: usize) -> u64 {
        let b = self.sub_bits;
        let decade = (index as u32) >> b;
        if decade == 0 {
            return index as u64;
        }
        let offset = (index as u64) & ((1 << b) - 1);
        let msb = decade + b - 1;
        (1u64 << msb) + ((offset + 1) << (msb - b)) - 1
    }

    /// Records one value.
    ///
    /// # Panics
    ///
    /// Panics when `v >= 2^max_exp` — a value above the top bucket
    /// means the layout was mis-sized for the quantity and silently
    /// clamping it would corrupt the tail quantiles the histogram
    /// exists to report.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records a value `n` times (one bucket touch — how the bench
    /// loop and pre-aggregated rollups feed bulk counts).
    ///
    /// # Panics
    ///
    /// Panics when `v >= 2^max_exp`; see [`record`](Self::record).
    pub fn record_n(&mut self, v: u64, n: u64) {
        assert!(
            v < (1u64 << self.max_exp),
            "histogram value {v} above top bucket (max_exp={}); \
             size the layout for the quantity instead of clamping the tail",
            self.max_exp
        );
        if n == 0 {
            return;
        }
        let idx = self.index(v);
        self.buckets[idx] += n;
        self.count += n;
        self.total += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn min(&self) -> u64 {
        assert!(self.count > 0, "min of empty Histogram");
        self.min
    }

    /// Exact maximum recorded value.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn max(&self) -> u64 {
        assert!(self.count > 0, "max of empty Histogram");
        self.max
    }

    /// Mean of recorded values (exact: integers are summed in a
    /// `u128` and divided once, so the mean does not drift with
    /// record or merge order).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.total as f64) / (self.count as f64)
    }

    /// The value at quantile `q` (in `[0, 1]`): the representative of
    /// the bucket holding the `ceil(q · count)`-th smallest recorded
    /// value, clamped to the exact observed `[min, max]`. Monotone in
    /// `q`; relative error is bounded by one sub-bucket width.
    ///
    /// # Panics
    ///
    /// Panics when empty or when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(self.count > 0, "quantile of empty Histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return self.representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median ([`quantile`](Self::quantile) at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds another histogram into this one: element-wise bucket
    /// add, count/total add, min/max fold. Pure integer arithmetic,
    /// so the result is bit-identical for any merge grouping or order
    /// — the property the per-site → VO-level metrics rollup and the
    /// shard/thread invariance tests pin.
    ///
    /// # Panics
    ///
    /// Panics when the layouts differ: merging buckets that cover
    /// different value ranges would silently misfile counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.sub_bits == other.sub_bits && self.max_exp == other.max_exp,
            "merge of mismatched Histogram bucket layouts: \
             ({}, {}) vs ({}, {})",
            self.sub_bits,
            self.max_exp,
            other.sub_bits,
            other.max_exp
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} min={} p50={} p99={} p999={} max={}",
            self.count,
            self.min,
            self.p50(),
            self.p99(),
            self.p999(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::default();
        for v in 0..32u64 {
            h.record(v);
        }
        // The linear region holds one value per bucket.
        for q in [0.1, 0.5, 0.9] {
            let got = h.quantile(q);
            let want = ((q * 32.0).ceil() as u64).max(1) - 1;
            assert_eq!(got, want, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::default();
        h.record(1_000_000);
        let q = h.quantile(0.5);
        // Representative is the bucket upper bound clamped to max.
        assert_eq!(q, 1_000_000);
        let mut h = Histogram::default();
        h.record(1_000_000);
        h.record(1_000_001);
        let q = h.p50();
        assert!(q >= 1_000_000 && q as f64 <= 1_000_001.0 * 1.033, "q={q}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::default();
        let mut x = 1u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 20);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile({i}%) = {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = Histogram::default();
        let mut parts = [Histogram::default(), Histogram::default()];
        for v in 1..2000u64 {
            all.record(v * 37);
            parts[(v % 2) as usize].record(v * 37);
        }
        let mut merged = Histogram::default();
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, all);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record_n(12345, 7);
        a.record_n(99, 0);
        for _ in 0..7 {
            b.record(12345);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn display_summarizes() {
        let mut h = Histogram::default();
        assert_eq!(h.to_string(), "n=0");
        h.record(10);
        h.record(1000);
        let s = h.to_string();
        assert!(s.contains("n=2") && s.contains("min=10"), "{s}");
    }

    #[test]
    #[should_panic(expected = "above top bucket")]
    fn value_above_top_bucket_panics() {
        let mut h = Histogram::new(5, 16);
        h.record(1 << 16);
    }

    #[test]
    #[should_panic(expected = "mismatched Histogram bucket layouts")]
    fn mismatched_layout_merge_panics() {
        let mut a = Histogram::new(5, 48);
        let b = Histogram::new(6, 48);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn empty_quantile_panics() {
        Histogram::default().quantile(0.5);
    }

    #[test]
    fn boundary_values_file_correctly() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1 << 20, (1 << 48) - 1] {
            let mut h = Histogram::default();
            h.record(v);
            assert_eq!(h.count(), 1);
            assert_eq!(h.quantile(1.0), v, "single value is its own max");
        }
    }
}
