//! Seeded, deterministic fault injection.
//!
//! The paper's operational claim — ISA-level VMs make grid sessions
//! *recoverable units* — only means something if sessions survive
//! faults injected *mid-flight*. This module is the single source of
//! those faults: a [`FaultPlan`] is an explicit schedule of typed
//! [`FaultEvent`]s, built by hand or materialized from seeded random
//! processes ([`FaultPlan::seeded`]), that every layer of the stack
//! consults instead of rolling its own dice. Same seed + same plan ⇒
//! the same faults at the same simulated times, for any thread count.
//!
//! Consumption semantics are explicit: a [`FaultFeed`] wraps a plan
//! with a consumed-bitmap so each injected fault fires **at most
//! once** — retry loops cannot spin forever on one event, and replays
//! are bit-identical.
//!
//! For event-driven worlds, [`FaultPlan::schedule_into`] plants each
//! event in an [`Engine`](crate::engine::Engine) queue; the world
//! applies it through the [`FaultSink`] trait.

use crate::engine::Engine;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A typed fault, targeting one layer of the stack.
///
/// All payload fields are integers (percentages, durations) so plans
/// are `Eq`/hashable and digests are exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The physical host dies; everything running on it is lost.
    HostCrash,
    /// The host degrades: work takes `percent` % longer.
    HostSlowdown {
        /// Added runtime, percent of nominal.
        percent: u32,
    },
    /// The link partitions and heals after `heal_after`.
    LinkPartition {
        /// Outage duration.
        heal_after: SimDuration,
    },
    /// One in-flight exchange on the link is lost.
    LinkLoss,
    /// A latency spike adds `extra` to one exchange.
    LatencySpike {
        /// Extra one-way latency.
        extra: SimDuration,
    },
    /// One storage operation fails with an I/O error.
    StorageIoError,
    /// The disk degrades: accesses take `percent` % longer.
    StorageSlow {
        /// Added access time, percent of nominal.
        percent: u32,
    },
    /// One NFS/proxy RPC times out.
    NfsTimeout,
}

/// The architectural layer a fault kind targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultLayer {
    /// Physical host (crash, slowdown).
    Host,
    /// Virtual-network link/tunnel (partition, loss, latency).
    Link,
    /// Block storage (I/O error, slow disk).
    Storage,
    /// Virtual file system / NFS proxy (RPC timeout).
    Vfs,
}

impl FaultKind {
    /// The layer this kind targets.
    pub fn layer(&self) -> FaultLayer {
        match self {
            FaultKind::HostCrash | FaultKind::HostSlowdown { .. } => FaultLayer::Host,
            FaultKind::LinkPartition { .. }
            | FaultKind::LinkLoss
            | FaultKind::LatencySpike { .. } => FaultLayer::Link,
            FaultKind::StorageIoError | FaultKind::StorageSlow { .. } => FaultLayer::Storage,
            FaultKind::NfsTimeout => FaultLayer::Vfs,
        }
    }

    /// Stable metrics-counter name for this kind.
    pub fn counter_name(&self) -> &'static str {
        match self {
            FaultKind::HostCrash => "fault.host_crash",
            FaultKind::HostSlowdown { .. } => "fault.host_slowdown",
            FaultKind::LinkPartition { .. } => "fault.link_partition",
            FaultKind::LinkLoss => "fault.link_loss",
            FaultKind::LatencySpike { .. } => "fault.latency_spike",
            FaultKind::StorageIoError => "fault.storage_io_error",
            FaultKind::StorageSlow { .. } => "fault.storage_slow",
            FaultKind::NfsTimeout => "fault.nfs_timeout",
        }
    }
}

/// One scheduled fault: when, where, what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection time.
    pub at: SimTime,
    /// Target label, chosen by convention per deployment (e.g. a host
    /// name `"V0"`, the inter-host link `"lan"`, a data path `"nfs"`).
    pub target: String,
    /// What happens.
    pub kind: FaultKind,
}

/// One seeded random fault process: a Poisson arrival stream of one
/// fault kind over a set of targets.
#[derive(Clone, Debug)]
pub struct FaultProcess {
    /// The fault each arrival injects (payload fields used verbatim).
    pub kind: FaultKind,
    /// Mean inter-arrival time of the (exponential) process.
    pub mean_interval: SimDuration,
    /// Targets; each arrival picks one uniformly.
    pub targets: Vec<String>,
}

/// A deterministic fault schedule.
///
/// ```
/// use gridvm_simcore::fault::{FaultKind, FaultPlan};
/// use gridvm_simcore::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .with("V0", SimTime::from_secs(40), FaultKind::HostCrash);
/// assert_eq!(plan.events().len(), 1);
/// assert_eq!(plan.events()[0].target, "V0");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the happy path).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one explicit fault, keeping the schedule sorted by time
    /// (stable: same-time events keep insertion order).
    pub fn with(mut self, target: impl Into<String>, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            at,
            target: target.into(),
            kind,
        });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Materializes a plan from seeded random processes over a finite
    /// horizon. Each process draws its own split RNG stream, so adding
    /// a process does not perturb the arrivals of another, and the
    /// same `(seed, horizon, processes)` always yields the same plan.
    pub fn seeded(seed: u64, horizon: SimDuration, processes: &[FaultProcess]) -> Self {
        let root = SimRng::seed_from(seed);
        let mut events = Vec::new();
        for (i, p) in processes.iter().enumerate() {
            if p.targets.is_empty() || p.mean_interval.is_zero() {
                continue;
            }
            let mut rng = root.split(&format!("fault-process.{i}"));
            let mean = p.mean_interval.as_secs_f64();
            let mut t = SimDuration::from_secs_f64(rng.exponential(mean));
            while t < horizon {
                let target = rng.pick(&p.targets).clone();
                events.push(FaultEvent {
                    at: SimTime::ZERO + t,
                    target,
                    kind: p.kind,
                });
                t += SimDuration::from_secs_f64(rng.exponential(mean));
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Merges another plan into this one (stable time order).
    pub fn merged(mut self, other: &FaultPlan) -> Self {
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The schedule, sorted by injection time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `target` has a [`FaultKind::HostCrash`] at or before
    /// `now` — i.e. the host is already down from the perspective of a
    /// resource selector (which may not peek at *future* faults).
    pub fn host_down(&self, target: &str, now: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == FaultKind::HostCrash && e.at <= now && e.target == target)
    }

    /// Order-sensitive FNV-1a digest of the whole schedule; two plans
    /// agree iff they inject the same faults at the same times in the
    /// same order.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.events {
            h.mix(&e.at.as_nanos().to_le_bytes());
            h.mix(e.target.as_bytes());
            h.mix(format!("{:?}", e.kind).as_bytes());
        }
        h.finish()
    }

    /// Plants every event into an engine queue; when the event fires,
    /// the world applies it through [`FaultSink`].
    pub fn schedule_into<W: FaultSink>(&self, engine: &mut Engine<W>) {
        for e in self.events.iter().cloned() {
            engine.schedule_at(e.at, move |w: &mut W, _| w.apply_fault(&e));
        }
    }
}

/// A world that can absorb injected faults from an engine-scheduled
/// plan.
pub trait FaultSink {
    /// Applies one fault at its scheduled time.
    fn apply_fault(&mut self, event: &FaultEvent);
}

/// A consuming cursor over a [`FaultPlan`]: each event fires at most
/// once, so retry loops converge and replays stay deterministic.
#[derive(Clone, Debug)]
pub struct FaultFeed {
    plan: FaultPlan,
    consumed: Vec<bool>,
}

impl FaultFeed {
    /// Wraps a plan (cloned; plans are small).
    pub fn new(plan: &FaultPlan) -> Self {
        FaultFeed {
            consumed: vec![false; plan.events.len()],
            plan: plan.clone(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Takes (consumes) the earliest unconsumed event with
    /// `start <= at < end` matching `pred`, if any.
    ///
    /// Returns a borrow of the event rather than a clone: polling
    /// loops call this once per recovery window, and the event's
    /// `target: String` made every miss-then-match poll an
    /// allocation. Callers that need to retain the event clone it
    /// explicitly.
    pub fn take_matching(
        &mut self,
        start: SimTime,
        end: SimTime,
        pred: impl Fn(&FaultEvent) -> bool,
    ) -> Option<&FaultEvent> {
        let mut found = None;
        for (i, e) in self.plan.events.iter().enumerate() {
            if self.consumed[i] {
                continue;
            }
            if e.at >= end {
                break; // sorted: nothing later can match the window
            }
            if e.at >= start && pred(e) {
                found = Some(i);
                break;
            }
        }
        let i = found?;
        self.consumed[i] = true;
        Some(&self.plan.events[i])
    }

    /// Takes the earliest unconsumed event for `target` whose kind's
    /// layer matches, within `[start, end)`. Borrows like
    /// [`take_matching`](FaultFeed::take_matching).
    pub fn take_for(
        &mut self,
        target: &str,
        layer: FaultLayer,
        start: SimTime,
        end: SimTime,
    ) -> Option<&FaultEvent> {
        self.take_matching(start, end, |e| {
            e.target == target && e.kind.layer() == layer
        })
    }

    /// Peeks (without consuming) at the earliest unconsumed event in
    /// `[start, end)` matching `pred`.
    pub fn peek_matching(
        &self,
        start: SimTime,
        end: SimTime,
        pred: impl Fn(&FaultEvent) -> bool,
    ) -> Option<&FaultEvent> {
        self.plan
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.consumed[*i])
            .map(|(_, e)| e)
            .take_while(|e| e.at < end)
            .find(|e| e.at >= start && pred(e))
    }

    /// How many events have not fired yet.
    pub fn remaining(&self) -> usize {
        self.consumed.iter().filter(|c| !**c).count()
    }
}

/// Incremental FNV-1a (the digest primitive shared by trace logs and
/// fault plans).
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Offset-basis start state.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes into the digest.
    pub fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn explicit_plans_stay_time_sorted() {
        let plan = FaultPlan::new()
            .with("b", t(30), FaultKind::StorageIoError)
            .with("a", t(10), FaultKind::HostCrash)
            .with("c", t(30), FaultKind::NfsTimeout);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Stable: the two t=30 events keep insertion order.
        assert_eq!(plan.events()[1].target, "b");
        assert_eq!(plan.events()[2].target, "c");
    }

    #[test]
    fn seeded_plans_reproduce_and_diverge() {
        let procs = [
            FaultProcess {
                kind: FaultKind::HostCrash,
                mean_interval: SimDuration::from_secs(120),
                targets: vec!["V0".into(), "V1".into()],
            },
            FaultProcess {
                kind: FaultKind::NfsTimeout,
                mean_interval: SimDuration::from_secs(40),
                targets: vec!["nfs".into()],
            },
        ];
        let horizon = SimDuration::from_secs(3_600);
        let a = FaultPlan::seeded(7, horizon, &procs);
        let b = FaultPlan::seeded(7, horizon, &procs);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = FaultPlan::seeded(8, horizon, &procs);
        assert_ne!(a.digest(), c.digest());
        assert!(!a.is_empty(), "an hour at these rates produces arrivals");
        assert!(a.events().iter().all(|e| e.at < SimTime::ZERO + horizon));
    }

    #[test]
    fn adding_a_process_does_not_perturb_existing_streams() {
        let base = [FaultProcess {
            kind: FaultKind::HostCrash,
            mean_interval: SimDuration::from_secs(300),
            targets: vec!["V0".into()],
        }];
        let extended = [
            base[0].clone(),
            FaultProcess {
                kind: FaultKind::LinkLoss,
                mean_interval: SimDuration::from_secs(60),
                targets: vec!["lan".into()],
            },
        ];
        let horizon = SimDuration::from_secs(7_200);
        let a = FaultPlan::seeded(3, horizon, &base);
        let b = FaultPlan::seeded(3, horizon, &extended);
        let crashes_a: Vec<_> = a
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::HostCrash)
            .collect();
        let crashes_b: Vec<_> = b
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::HostCrash)
            .collect();
        assert_eq!(crashes_a, crashes_b);
    }

    #[test]
    fn feed_consumes_each_event_once() {
        let plan = FaultPlan::new()
            .with("nfs", t(5), FaultKind::NfsTimeout)
            .with("nfs", t(6), FaultKind::NfsTimeout);
        let mut feed = FaultFeed::new(&plan);
        assert_eq!(feed.remaining(), 2);
        let first = feed
            .take_for("nfs", FaultLayer::Vfs, t(0), t(10))
            .expect("first event in window");
        assert_eq!(first.at, t(5));
        let second = feed
            .take_for("nfs", FaultLayer::Vfs, t(0), t(10))
            .expect("second event in window");
        assert_eq!(second.at, t(6));
        assert!(feed.take_for("nfs", FaultLayer::Vfs, t(0), t(10)).is_none());
        assert_eq!(feed.remaining(), 0);
    }

    #[test]
    fn feed_windows_and_layers_filter() {
        let plan = FaultPlan::new()
            .with("V0", t(10), FaultKind::HostCrash)
            .with("lan", t(20), FaultKind::LinkLoss);
        let mut feed = FaultFeed::new(&plan);
        // Wrong layer / wrong window: nothing fires.
        assert!(feed.take_for("V0", FaultLayer::Link, t(0), t(60)).is_none());
        assert!(feed
            .take_for("V0", FaultLayer::Host, t(11), t(60))
            .is_none());
        assert!(feed
            .peek_matching(t(0), t(60), |e| e.kind == FaultKind::LinkLoss)
            .is_some());
        assert!(feed.take_for("V0", FaultLayer::Host, t(0), t(60)).is_some());
        assert_eq!(feed.remaining(), 1);
    }

    #[test]
    fn host_down_only_sees_the_past() {
        let plan = FaultPlan::new().with("V1", t(100), FaultKind::HostCrash);
        assert!(!plan.host_down("V1", t(99)));
        assert!(plan.host_down("V1", t(100)));
        assert!(!plan.host_down("V0", t(500)));
    }

    #[test]
    fn kinds_map_to_layers_and_counters() {
        assert_eq!(FaultKind::HostCrash.layer(), FaultLayer::Host);
        assert_eq!(
            FaultKind::LinkPartition {
                heal_after: SimDuration::from_secs(1)
            }
            .layer(),
            FaultLayer::Link
        );
        assert_eq!(FaultKind::StorageIoError.layer(), FaultLayer::Storage);
        assert_eq!(FaultKind::NfsTimeout.layer(), FaultLayer::Vfs);
        assert_eq!(FaultKind::HostCrash.counter_name(), "fault.host_crash");
    }

    #[test]
    fn engine_scheduled_plan_applies_through_the_sink() {
        #[derive(Default)]
        struct World {
            applied: Vec<(SimTime, String)>,
        }
        impl FaultSink for World {
            fn apply_fault(&mut self, event: &FaultEvent) {
                self.applied.push((event.at, event.target.clone()));
            }
        }
        let plan = FaultPlan::new()
            .with("V0", t(3), FaultKind::HostCrash)
            .with("lan", t(1), FaultKind::LinkLoss);
        let mut engine = Engine::new();
        plan.schedule_into(&mut engine);
        let mut world = World::default();
        engine.run(&mut world);
        assert_eq!(
            world.applied,
            vec![(t(1), "lan".to_owned()), (t(3), "V0".to_owned())]
        );
        assert_eq!(engine.now(), t(3));
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = FaultPlan::new().with("x", t(1), FaultKind::LinkLoss);
        let b = FaultPlan::new().with("x", t(2), FaultKind::LinkLoss);
        let c = FaultPlan::new().with("y", t(1), FaultKind::LinkLoss);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(FaultPlan::new().digest(), Fnv::new().finish());
    }

    #[test]
    fn merged_plans_interleave_in_time_order() {
        let a = FaultPlan::new().with("x", t(5), FaultKind::LinkLoss);
        let b = FaultPlan::new().with("y", t(2), FaultKind::NfsTimeout);
        let m = a.merged(&b);
        assert_eq!(m.events()[0].target, "y");
        assert_eq!(m.events()[1].target, "x");
    }
}
