//! Runtime invariant audit layer.
//!
//! The static half of the determinism story is `gridvm-audit` (the
//! workspace linter); this module is the runtime half. It gives the
//! kernel's data structures `audit()` methods that re-verify their
//! structural invariants from first principles:
//!
//! - **event queue**: d-ary heap ordering, `heap_idx` back-pointer
//!   integrity, payload liveness, slot-arena/free-list consistency
//!   (each slot lives in exactly one of heap or free list), and
//!   sequence-counter sanity — see [`crate::event::EventQueue::audit`];
//! - **engine**: everything above plus causality (no pending event
//!   earlier than the clock) — see [`crate::engine::Engine::audit`];
//! - **LRU set**: intrusive-list link integrity (next/prev agree,
//!   head/tail terminate, no cycles), map↔node agreement, and
//!   capacity/arena accounting — see [`crate::lru::LruSet::audit`];
//! - **slot containers**: free-list/occupancy partition, generation
//!   sanity and live-count agreement in
//!   [`crate::slot::SlotMap::audit`], and dense↔sparse back-pointer
//!   agreement in [`crate::slot::DenseMap::audit`].
//!
//! The module is compiled under `debug_assertions` (so every dev-
//! profile test run exercises it) or the `audit` cargo feature (to opt
//! a release build in); release builds without the feature carry zero
//! audit code. [`Engine::step`](crate::engine::Engine::step)
//! additionally self-audits every [`AUTO_AUDIT_INTERVAL`] events, so
//! long-running tests sweep the invariants continuously without O(n)
//! work per event.

use std::fmt;

/// How many executed events between automatic engine self-audits.
/// Power of two so the trigger is a mask test on the hot path.
pub const AUTO_AUDIT_INTERVAL: u64 = 1024;

/// A broken structural invariant, reported by an `audit()` method.
///
/// Carrying a description instead of panicking at the detection site
/// lets tests assert on *which* invariant a deliberate corruption
/// trips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// Short invariant name (e.g. `"heap-order"`, `"lru-link"`).
    pub invariant: &'static str,
    /// What exactly is inconsistent, with indices/values.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit violation [{}]: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for AuditViolation {}

/// Result type for audit checks.
pub type AuditResult = Result<(), AuditViolation>;

/// Shorthand used by the audit implementations.
pub(crate) fn violated(invariant: &'static str, detail: String) -> AuditResult {
    Err(AuditViolation { invariant, detail })
}
