//! # gridvm-simcore
//!
//! Deterministic discrete-event simulation kernel for the `gridvm`
//! reproduction of *"A Case For Grid Computing On Virtual Machines"*
//! (Figueiredo, Dinda, Fortes — ICDCS 2003).
//!
//! Every stochastic and time-dependent behaviour in the suite flows
//! through this crate so that a whole-grid experiment is reproducible
//! from a single seed:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`SimTime`],
//!   [`SimDuration`]) as newtypes, never bare integers.
//! * [`units`] — domain quantities: [`ByteSize`](units::ByteSize),
//!   [`CpuWork`](units::CpuWork), [`Bandwidth`](units::Bandwidth),
//!   [`Share`](units::Share).
//! * [`rng`] — a seedable, splittable PRNG ([`SimRng`](rng::SimRng),
//!   xoshiro256++) plus the distributions the workload and load-trace
//!   generators need.
//! * [`event`] + [`engine`] — the event queue and executor. Events are
//!   [`Event<W>`](engine::Event) handlers over a caller-supplied world
//!   type — function pointers with up to two inline argument words
//!   stored directly in recycled arena slots, with a counted `Box`
//!   fallback for closures with larger captures — ordered by
//!   `(time, sequence)` so same-time events run in schedule order
//!   (deterministic tie-breaking). A timing-wheel front-end stages
//!   near-future events in O(1) buckets ahead of the 4-ary heap.
//! * [`fault`] — seeded, deterministic fault injection:
//!   [`FaultPlan`](fault::FaultPlan) schedules typed faults
//!   (host crash/slowdown, link partition/loss/latency, storage
//!   errors, NFS timeouts) that every layer consults; a
//!   [`FaultFeed`](fault::FaultFeed) guarantees each fault fires at
//!   most once.
//! * [`stats`] — online statistics (Welford), histograms and series
//!   summaries used by every experiment harness.
//! * [`hist`] — streaming log-scale [`Histogram`](hist::Histogram)s
//!   with integer-exact merge: constant memory per named series,
//!   p50/p99/p999 extraction, bit-identical rollups at any
//!   shard/thread count.
//! * [`sample`] — deterministic sampling: the seeded
//!   [`Reservoir`](sample::Reservoir) and the stratified per-category
//!   keep decision behind sampled trace logs.
//! * [`metrics`] — counter/gauge/timer registries recorded into a
//!   thread-local per-replication context and merged across
//!   replications; pre-resolved [`metrics::Counter`] handles keep
//!   hot-loop increments off the string-keyed path.
//! * [`lookahead`] — the all-pairs minimum-latency closure
//!   ([`LookaheadMatrix`](lookahead::LookaheadMatrix)) behind the
//!   sharded synchronizer's per-(src,dst) window protocol.
//! * [`lru`] — the shared O(1) intrusive LRU set
//!   ([`LruSet`](lru::LruSet)) under the proxy and buffer-cache block
//!   caches.
//! * [`slot`] — the dense-index hot-state layer: a generation-stamped
//!   slot arena ([`SlotMap`](slot::SlotMap)) with typed
//!   [`Handle<Tag>`](slot::Handle) keys, and a paged
//!   [`DenseMap`](slot::DenseMap) for small integer key universes —
//!   O(1) per-entity lookups with hash-free, deterministic iteration.
//! * [`replication`] — the [`ReplicationRunner`], which fans N
//!   independent replications across OS threads while keeping results
//!   bit-identical for any thread count.
//! * [`shard`] — conservative parallel simulation *within* one
//!   replication: per-site event queues synchronized by a lookahead
//!   barrier protocol ([`shard::ShardedSim`]), with cross-site sends
//!   through deterministic mailboxes — results bit-identical at any
//!   shard/thread count.
//! * [`server`] — analytic FIFO/processor-sharing service primitives
//!   used to model disks, links and RPC endpoints without spawning an
//!   event per byte.
//! * [`trace`] — a lightweight category-tagged trace recorder.
//!
//! ## Example
//!
//! ```
//! use gridvm_simcore::engine::Engine;
//! use gridvm_simcore::time::{SimDuration, SimTime};
//!
//! #[derive(Default)]
//! struct World { ticks: u32 }
//!
//! let mut engine = Engine::new();
//! let mut world = World::default();
//! engine.schedule_in(SimDuration::from_secs(1), |w: &mut World, en| {
//!     w.ticks += 1;
//!     en.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.ticks += 1);
//! });
//! engine.run(&mut world);
//! assert_eq!(world.ticks, 2);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_secs(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(any(debug_assertions, feature = "audit"))]
pub mod audit;
pub mod engine;
pub mod event;
pub mod fault;
pub mod hist;
pub mod lookahead;
pub mod lru;
pub mod metrics;
pub mod replication;
pub mod rng;
pub mod sample;
pub mod server;
pub mod shard;
pub mod slot;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use engine::Engine;
pub use fault::{FaultFeed, FaultKind, FaultPlan};
pub use hist::Histogram;
pub use lookahead::LookaheadMatrix;
pub use lru::LruSet;
pub use metrics::Metrics;
pub use replication::{ReplicationCtx, ReplicationRunner};
pub use rng::SimRng;
pub use sample::Reservoir;
pub use shard::{ShardWorld, ShardedSim, SiteId, SiteState};
pub use stats::OnlineStats;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize, CpuWork, Share};
