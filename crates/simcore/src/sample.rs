//! Deterministic sampling primitives: a seeded reservoir and the
//! stratified hash-based keep decision behind trace sampling.
//!
//! Macro-scale runs produce event streams far larger than memory; the
//! observability layer keeps a *representative, reproducible* subset
//! instead. Both primitives here are pure functions of their seed and
//! the input sequence — no wall clock, no global RNG — so two runs of
//! the same world keep exactly the same items, and the golden-trace
//! tests can pin digests over the sampled stream.

use crate::rng::SimRng;

/// A fixed-capacity uniform sample over a stream of unknown length
/// (Vitter's Algorithm R), seeded so the kept set is a pure function
/// of `(seed, input sequence)`.
///
/// ```
/// use gridvm_simcore::sample::Reservoir;
///
/// let mut r = Reservoir::new(4, 42);
/// for v in 0..1000 {
///     r.offer(v);
/// }
/// assert_eq!(r.len(), 4);
/// assert_eq!(r.seen(), 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: SimRng,
}

impl<T> Reservoir<T> {
    /// An empty reservoir keeping at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a reservoir that can keep
    /// nothing silently discards the whole stream, which is never
    /// what a sampling caller meant.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "Reservoir capacity must be positive");
        Reservoir {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: SimRng::seed_from(seed),
        }
    }

    /// Offers one stream item; each of the `seen` items so far ends
    /// up retained with equal probability `capacity / seen`.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let j = self.rng.next_below(self.seen);
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// The retained sample, in slot order (not stream order once the
    /// reservoir has wrapped).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Retained item count (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The stratified Bernoulli keep decision used by sampled trace logs:
/// item `seq` of stratum `category` under `seed` is kept iff a hash
/// of the triple lands below `rate_per_mille`. Deterministic, O(1),
/// stateless — every shard makes identical decisions for identical
/// streams, so sampled digests are shard/thread invariant.
pub fn keep_per_mille(seed: u64, category: &str, seq: u64, rate_per_mille: u32) -> bool {
    if rate_per_mille >= 1000 {
        return true;
    }
    if rate_per_mille == 0 {
        return false;
    }
    let mut h = crate::fault::Fnv::new();
    h.mix(&seed.to_le_bytes());
    h.mix(category.as_bytes());
    h.mix(&seq.to_le_bytes());
    (h.finish() % 1000) < u64::from(rate_per_mille)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_deterministic_in_its_seed() {
        let collect = |seed| {
            let mut r = Reservoir::new(8, seed);
            for v in 0..10_000u64 {
                r.offer(v);
            }
            r.items().to_vec()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8), "seed matters");
    }

    #[test]
    fn reservoir_keeps_everything_below_capacity() {
        let mut r = Reservoir::new(16, 1);
        for v in 0..10u64 {
            r.offer(v);
        }
        assert_eq!(r.items(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(r.capacity(), 16);
        assert!(!r.is_empty());
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Offer 0..n many times with different seeds; every decile of
        // the stream must be represented overall — Algorithm R does
        // not favour the head or the tail.
        let mut decile_hits = [0u32; 10];
        for seed in 0..200u64 {
            let mut r = Reservoir::new(10, seed);
            for v in 0..1000u64 {
                r.offer(v);
            }
            for &v in r.items() {
                decile_hits[(v / 100) as usize] += 1;
            }
        }
        for (i, &hits) in decile_hits.iter().enumerate() {
            assert!(
                (100..400).contains(&hits),
                "decile {i} has {hits} hits across 200 seeds \
                 (expected ~200 each)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_reservoir_panics() {
        let _: Reservoir<u8> = Reservoir::new(0, 1);
    }

    #[test]
    fn keep_decision_edges_and_rate() {
        assert!(keep_per_mille(1, "x", 0, 1000));
        assert!(!keep_per_mille(1, "x", 0, 0));
        let kept = (0..10_000u64)
            .filter(|&i| keep_per_mille(99, "vo", i, 100))
            .count();
        // 10% nominal rate; the hash is uniform enough for ±3%.
        assert!((700..1300).contains(&kept), "kept {kept} of 10000");
        assert_eq!(
            keep_per_mille(5, "a", 3, 500),
            keep_per_mille(5, "a", 3, 500),
            "pure function"
        );
    }
}
