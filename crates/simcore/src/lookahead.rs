//! Per-(src,dst) lookahead for the conservative synchronizer: the
//! all-pairs minimum-latency closure of a site topology.
//!
//! The global-lookahead protocol in [`crate::shard`] collapses a whole
//! topology to one number — the minimum inter-site link latency — and
//! bounds *every* site's window by it. That throws away exactly the
//! structure a wide-area virtual organization has: a message from a
//! site 40 ms away cannot affect you for 40 ms, no matter how close
//! your metro neighbors are. A [`LookaheadMatrix`] keeps the full
//! per-pair bound: entry `(s, d)` is the minimum latency over every
//! path from `s` to `d`, so no interaction originating at `s` —
//! direct or relayed — can reach `d` sooner.
//!
//! Two derived quantities make the per-site window protocol sound
//! (see `DESIGN.md` §15 for the full safety argument):
//!
//! * the **closure property** `la(a,c) ≤ la(a,b) + la(b,c)` holds by
//!   construction (shortest paths), which is what makes per-site
//!   horizons monotone across windows;
//! * each site's **self round-trip** `rt(i) = min_d (la(i,d) +
//!   la(d,i))` bounds the earliest instant a site's own outgoing
//!   message can echo back, so a site whose peers are all idle still
//!   stops before anything it causes can return.

use crate::shard::SiteId;
use crate::time::SimDuration;

/// Sentinel for a pair with no connecting path: nothing sent at the
/// source can ever reach the destination, so the bound is infinite.
const UNREACHABLE: u64 = u64::MAX;

/// The all-pairs minimum-latency closure of a site topology, in
/// nanoseconds — the per-(src,dst) lookahead the sharded window
/// protocol computes per-site horizons from.
///
/// Construct with [`LookaheadMatrix::shortest_paths`] over the
/// topology's direct link latencies (see
/// `SiteTopology::lookahead_matrix` in `gridvm-vnet`), then install on
/// a sim with `ShardedSim::per_pair_lookahead`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookaheadMatrix {
    n: usize,
    /// Row-major `la[src * n + dst]` nanoseconds; `UNREACHABLE` when
    /// no path connects the pair, `0` on the diagonal.
    la: Vec<u64>,
    /// Per-site minimum round trip `min over d != i of (la(i,d) +
    /// la(d,i))`.
    rt: Vec<u64>,
}

impl LookaheadMatrix {
    /// Builds the matrix from direct link latencies by running
    /// Floyd–Warshall to the all-pairs shortest-path closure.
    /// `direct(a, b)` returns the one-way latency of the direct link
    /// between two distinct sites, or `None` when they are not
    /// directly connected.
    ///
    /// # Panics
    ///
    /// Panics on a zero-latency direct link: a zero-cost path would
    /// collapse the conservative synchronizer's safe-advance window,
    /// exactly like a zero global lookahead.
    pub fn shortest_paths(
        n: usize,
        direct: impl Fn(SiteId, SiteId) -> Option<SimDuration>,
    ) -> Self {
        let mut la = vec![UNREACHABLE; n * n];
        for i in 0..n {
            la[i * n + i] = 0;
        }
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                if let Some(lat) = direct(SiteId(a as u32), SiteId(b as u32)) {
                    assert!(
                        lat > SimDuration::ZERO,
                        "zero-latency link {a}->{b} would leave no lookahead"
                    );
                    la[a * n + b] = lat.as_nanos();
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let ik = la[i * n + k];
                if ik == UNREACHABLE {
                    continue;
                }
                for j in 0..n {
                    let through = ik.saturating_add(la[k * n + j]);
                    if through < la[i * n + j] {
                        la[i * n + j] = through;
                    }
                }
            }
        }
        let rt = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&d| d != i)
                    .map(|d| la[i * n + d].saturating_add(la[d * n + i]))
                    .min()
                    .unwrap_or(UNREACHABLE)
            })
            .collect();
        LookaheadMatrix { n, la, rt }
    }

    /// Number of sites the matrix covers.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// Minimum latency over every path from `src` to `dst`; `None`
    /// when no path connects them (or for the zero diagonal asked of
    /// a pair with `src == dst`).
    pub fn lookahead(&self, src: SiteId, dst: SiteId) -> Option<SimDuration> {
        if src == dst {
            return None;
        }
        match self.la[src.index() * self.n + dst.index()] {
            UNREACHABLE => None,
            ns => Some(SimDuration::from_nanos(ns)),
        }
    }

    /// The pairwise bound in nanoseconds (`u64::MAX` = unreachable) —
    /// the hot-path accessor the window protocol folds per site.
    #[inline]
    pub fn lookahead_nanos(&self, src: usize, dst: usize) -> u64 {
        self.la[src * self.n + dst]
    }

    /// The site's minimum round trip `min over d of (la(site,d) +
    /// la(d,site))` in nanoseconds (`u64::MAX` when the site has no
    /// reachable peer): the earliest a message the site sends now can
    /// cause anything to arrive back.
    #[inline]
    pub fn round_trip_nanos(&self, site: usize) -> u64 {
        self.rt[site]
    }

    /// The minimum off-diagonal entry — the matrix's global lookahead,
    /// equal to `SiteTopology::lookahead()` for the same topology.
    /// `None` when no pair is connected.
    pub fn min_lookahead(&self) -> Option<SimDuration> {
        (0..self.n)
            .flat_map(|a| (0..self.n).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| self.la[a * self.n + b])
            .filter(|&ns| ns != UNREACHABLE)
            .min()
            .map(SimDuration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn closure_takes_the_cheaper_relay_path() {
        // 0-1 direct is 10ms, but 0-2-1 costs 3 + 3: the matrix must
        // report the relayed bound, because a message can take it.
        let direct = |a: SiteId, b: SiteId| match (a.0.min(b.0), a.0.max(b.0)) {
            (0, 1) => Some(ms(10)),
            (0, 2) | (1, 2) => Some(ms(3)),
            _ => None,
        };
        let m = LookaheadMatrix::shortest_paths(3, direct);
        assert_eq!(m.lookahead(SiteId(0), SiteId(1)), Some(ms(6)));
        assert_eq!(m.lookahead(SiteId(1), SiteId(0)), Some(ms(6)));
        assert_eq!(m.lookahead(SiteId(0), SiteId(2)), Some(ms(3)));
        assert_eq!(m.min_lookahead(), Some(ms(3)));
        // Symmetric links: round trip is twice the nearest peer.
        assert_eq!(m.round_trip_nanos(0), 2 * ms(3).as_nanos());
    }

    #[test]
    fn triangle_closure_holds_everywhere() {
        // The monotonicity proof in DESIGN.md §15 leans on
        // la(a,c) <= la(a,b) + la(b,c); Floyd–Warshall guarantees it,
        // and this pins that guarantee against refactors.
        let direct =
            |a: SiteId, b: SiteId| Some(ms(5 + (u64::from(a.0) * 7 + u64::from(b.0) * 13) % 12));
        let n = 6;
        let m = LookaheadMatrix::shortest_paths(n, direct);
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let ab = m.lookahead_nanos(a, b);
                    let bc = m.lookahead_nanos(b, c);
                    assert!(
                        m.lookahead_nanos(a, c) <= ab.saturating_add(bc),
                        "closure violated at {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_unreachable() {
        // Two islands: {0,1} and {2}.
        let direct =
            |a: SiteId, b: SiteId| ((a.0.min(b.0), a.0.max(b.0)) == (0, 1)).then_some(ms(4));
        let m = LookaheadMatrix::shortest_paths(3, direct);
        assert_eq!(m.lookahead(SiteId(0), SiteId(2)), None);
        assert_eq!(m.lookahead_nanos(0, 2), u64::MAX);
        assert_eq!(m.round_trip_nanos(2), u64::MAX);
        assert_eq!(m.round_trip_nanos(0), 2 * ms(4).as_nanos());
        assert_eq!(m.min_lookahead(), Some(ms(4)));
    }

    #[test]
    fn single_site_has_no_pairs() {
        let m = LookaheadMatrix::shortest_paths(1, |_, _| None);
        assert_eq!(m.sites(), 1);
        assert_eq!(m.min_lookahead(), None);
        assert_eq!(m.round_trip_nanos(0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "no lookahead")]
    fn zero_latency_links_are_rejected() {
        let _ = LookaheadMatrix::shortest_paths(2, |_, _| Some(SimDuration::ZERO));
    }
}
