//! Virtual time: absolute instants ([`SimTime`]) and spans
//! ([`SimDuration`]) with nanosecond resolution.
//!
//! All simulated clocks in the suite are `u64` nanoseconds wrapped in
//! newtypes so instants and spans cannot be confused, and so arithmetic
//! that would silently overflow or go negative panics loudly instead.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use gridvm_simcore::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use gridvm_simcore::time::SimDuration;
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 2.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event may be scheduled at or beyond this.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Constructs an instant a whole number of seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (lossy above 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `other` to `self`, or [`SimDuration::ZERO`] when
    /// `other` is later.
    pub fn saturating_duration_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Addition that clamps at [`SimTime::MAX`] instead of panicking.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "from_secs_f64: invalid duration {secs}"
        );
        let nanos = secs * 1e9;
        assert!(
            nanos <= u64::MAX as f64,
            "from_secs_f64: duration {secs}s overflows"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Raw nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (lossy above 2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN, or the result overflows.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: scheduled past the end of representable time"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted before the origin"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        // sub-nanosecond rounds to nearest
        assert_eq!(SimDuration::from_secs_f64(0.6e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn duration_from_negative_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn duration_since_backwards_panics() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::from_secs(1).saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
