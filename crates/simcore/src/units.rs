//! Domain quantities used across the suite: byte sizes, CPU work,
//! bandwidth, and fractional shares.
//!
//! These are newtypes ([C-NEWTYPE]) so that, e.g., a disk size can
//! never be passed where a CPU-work amount is expected.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::time::SimDuration;

/// A size in bytes (disk images, memory snapshots, file blocks,
/// network payloads).
///
/// ```
/// use gridvm_simcore::units::ByteSize;
/// let img = ByteSize::from_gib(2);
/// assert_eq!(img.as_u64(), 2 * 1024 * 1024 * 1024);
/// assert_eq!(img.to_string(), "2.00GiB");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Constructs from a raw byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Constructs from binary kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Constructs from binary mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Constructs from binary gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Bytes as a float, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of fixed-size blocks needed to cover this size
    /// (rounding up).
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero bytes.
    pub fn blocks(self, block: ByteSize) -> u64 {
        assert!(!block.is_zero(), "blocks: zero block size");
        self.0.div_ceil(block.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("ByteSize underflow"))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b >= KIB * KIB * KIB {
            write!(f, "{:.2}GiB", b / (KIB * KIB * KIB))
        } else if b >= KIB * KIB {
            write!(f, "{:.2}MiB", b / (KIB * KIB))
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// An amount of CPU work, measured in abstract *cycles*.
///
/// A host core retires cycles at its [`clock rate`](CpuWork::at_rate);
/// dividing work by a rate yields the busy time needed on a dedicated
/// core.
///
/// ```
/// use gridvm_simcore::units::CpuWork;
/// let w = CpuWork::from_cycles(2_000_000_000);
/// // at 1 GHz this takes 2 seconds of dedicated CPU
/// assert_eq!(w.at_rate(1e9).as_secs_f64(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuWork(u64);

impl CpuWork {
    /// No work.
    pub const ZERO: CpuWork = CpuWork(0);

    /// Constructs from a raw cycle count.
    pub const fn from_cycles(cycles: u64) -> Self {
        CpuWork(cycles)
    }

    /// The work a core at `hz` retires in `d` of dedicated time.
    pub fn from_duration(d: SimDuration, hz: f64) -> Self {
        CpuWork((d.as_secs_f64() * hz).round() as u64)
    }

    /// The raw cycle count.
    pub const fn as_cycles(self) -> u64 {
        self.0
    }

    /// True when there is no work.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The dedicated-core time needed at `hz` cycles per second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    pub fn at_rate(self, hz: f64) -> SimDuration {
        assert!(hz > 0.0, "at_rate: non-positive clock rate {hz}");
        SimDuration::from_secs_f64(self.0 as f64 / hz)
    }

    /// Scales the work by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> CpuWork {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "mul_f64: invalid factor {factor}"
        );
        CpuWork((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: CpuWork) -> CpuWork {
        CpuWork(self.0.saturating_sub(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: CpuWork) -> CpuWork {
        CpuWork(self.0.min(other.0))
    }
}

impl Add for CpuWork {
    type Output = CpuWork;
    fn add(self, rhs: CpuWork) -> CpuWork {
        CpuWork(self.0.checked_add(rhs.0).expect("CpuWork overflow"))
    }
}

impl AddAssign for CpuWork {
    fn add_assign(&mut self, rhs: CpuWork) {
        *self = *self + rhs;
    }
}

impl Sub for CpuWork {
    type Output = CpuWork;
    fn sub(self, rhs: CpuWork) -> CpuWork {
        CpuWork(self.0.checked_sub(rhs.0).expect("CpuWork underflow"))
    }
}

impl Sum for CpuWork {
    fn sum<I: Iterator<Item = CpuWork>>(iter: I) -> CpuWork {
        iter.fold(CpuWork::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for CpuWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gcyc", self.0 as f64 / 1e9)
    }
}

/// A data rate in bytes per second (disk and network throughput).
///
/// ```
/// use gridvm_simcore::units::{Bandwidth, ByteSize};
/// let bw = Bandwidth::from_mib_per_sec(10.0);
/// let t = bw.transfer_time(ByteSize::from_mib(20));
/// assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Constructs from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics unless `bps` is strictly positive and finite.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "Bandwidth must be positive, got {bps}"
        );
        Bandwidth(bps)
    }

    /// Constructs from binary mebibytes per second.
    pub fn from_mib_per_sec(mibps: f64) -> Self {
        Bandwidth::from_bytes_per_sec(mibps * 1024.0 * 1024.0)
    }

    /// Constructs from decimal megabits per second (network
    /// convention).
    pub fn from_mbit_per_sec(mbps: f64) -> Self {
        Bandwidth::from_bytes_per_sec(mbps * 1e6 / 8.0)
    }

    /// Raw bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to push `size` through at this rate.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(size.as_f64() / self.0)
    }

    /// The smaller of two rates (bottleneck composition).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MiB/s", self.0 / (1024.0 * 1024.0))
    }
}

/// A fractional share of a resource, in `[0, 1]`.
///
/// Used for CPU reservations and proportional-share scheduling
/// weights.
///
/// ```
/// use gridvm_simcore::units::Share;
/// let half = Share::new(0.5);
/// assert_eq!(half.complement(), Share::new(0.5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Share(f64);

impl Share {
    /// The empty share.
    pub const ZERO: Share = Share(0.0);
    /// The whole resource.
    pub const FULL: Share = Share(1.0);

    /// Constructs a share.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` lies in `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "Share must be in [0,1], got {fraction}"
        );
        Share(fraction)
    }

    /// The fraction as a float in `[0, 1]`.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `1 - self`.
    pub fn complement(self) -> Share {
        Share(1.0 - self.0)
    }

    /// Saturating addition, clamped to [`Share::FULL`].
    pub fn saturating_add(self, other: Share) -> Share {
        Share((self.0 + other.0).min(1.0))
    }

    /// True when the share is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Default for Share {
    fn default() -> Self {
        Share::ZERO
    }
}

impl fmt::Display for Share {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesize_block_count_rounds_up() {
        let sz = ByteSize::from_bytes(10_000);
        let blk = ByteSize::from_kib(4);
        assert_eq!(sz.blocks(blk), 3);
        assert_eq!(ByteSize::from_kib(8).blocks(blk), 2);
        assert_eq!(ByteSize::ZERO.blocks(blk), 0);
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn bytesize_zero_block_panics() {
        let _ = ByteSize::from_kib(1).blocks(ByteSize::ZERO);
    }

    #[test]
    fn bytesize_display_scales() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::from_gib(1).to_string(), "1.00GiB");
    }

    #[test]
    fn cpuwork_rate_round_trip() {
        let d = SimDuration::from_secs(3);
        let w = CpuWork::from_duration(d, 800e6);
        assert_eq!(w.as_cycles(), 2_400_000_000);
        assert_eq!(w.at_rate(800e6), d);
    }

    #[test]
    fn cpuwork_scaling() {
        let w = CpuWork::from_cycles(1000);
        assert_eq!(w.mul_f64(1.5).as_cycles(), 1500);
        assert_eq!(w.mul_f64(0.0), CpuWork::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_mbit_per_sec(100.0);
        // 100 Mbit/s = 12.5 MB/s decimal
        let t = bw.transfer_time(ByteSize::from_bytes(12_500_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }

    #[test]
    fn share_bounds() {
        assert_eq!(Share::new(0.3).complement().as_f64(), 0.7);
        assert_eq!(Share::new(0.8).saturating_add(Share::new(0.8)), Share::FULL);
        assert!(Share::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn share_rejects_out_of_range() {
        let _ = Share::new(1.5);
    }

    #[test]
    fn sums_accumulate() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(6));
        let work: CpuWork = (1..=3).map(CpuWork::from_cycles).sum();
        assert_eq!(work.as_cycles(), 6);
    }
}
