//! Dense slot-indexed hot state: the shared container layer under the
//! per-entity maps of `gridvm-vnet`, `gridvm-vfs`, `gridvm-sched` and
//! `gridvm-storage`.
//!
//! PR 3 bought determinism by moving hash containers to `BTreeMap`,
//! which put an O(log n) pointer chase on every hot-path lookup
//! (overlay routing, VFS block maps, scheduler run queues, DHCP
//! leases). This module buys the speed back without giving the
//! determinism up:
//!
//! - [`SlotMap`] — a generation-stamped slot arena with a free list:
//!   O(1) insert/remove/get, deterministic iteration in slot order,
//!   and typed [`Handle<Tag>`] keys so a VFS inode handle cannot be
//!   confused with a vnet node id at compile time. Dereferencing a
//!   freed generation fails loudly with a typed [`StaleHandle`] error
//!   and bumps the `slot.stale_derefs` counter instead of silently
//!   reading recycled state.
//! - [`DenseMap`] — dense values plus a paged sparse index for small
//!   integer key universes (task ids, node ids, block addresses):
//!   O(1) get/insert/remove and cache-friendly full scans in
//!   insertion order.
//!
//! Determinism: neither container ever consults a hasher; iteration
//! order is a pure function of the operation sequence, so
//! replications stay bit-identical across thread counts. External
//! string/name keys are expected to resolve into handles once at the
//! frontend boundary (the same pattern as pre-resolved
//! [`metrics::Counter`](crate::metrics::Counter) handles), keeping
//! ordered maps only where order is semantic.

use std::fmt;
use std::marker::PhantomData;

use crate::metrics::Counter;

/// Sentinel index meaning "no slot".
const NIL: u32 = u32::MAX;

/// Stale or out-of-range handle dereferences observed across every
/// slot map (each one is a caller holding a handle past its entity's
/// removal — loud by design).
static STALE_DEREFS: Counter = Counter::new("slot.stale_derefs");

/// A typed handle into a [`SlotMap`]: a slot index plus the
/// generation stamp the slot had when the value was inserted.
///
/// The `Tag` type parameter exists only at compile time: a
/// `Handle<Inode>` and a `Handle<OverlayNode>` are different types
/// even though both are eight bytes, so handles cannot cross
/// subsystem boundaries by accident.
pub struct Handle<Tag> {
    idx: u32,
    gen: u32,
    _tag: PhantomData<fn() -> Tag>,
}

// Manual impls: derives would bound `Tag`, which is phantom.
impl<Tag> Clone for Handle<Tag> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Tag> Copy for Handle<Tag> {}
impl<Tag> PartialEq for Handle<Tag> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && self.gen == other.gen
    }
}
impl<Tag> Eq for Handle<Tag> {}
impl<Tag> PartialOrd for Handle<Tag> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<Tag> Ord for Handle<Tag> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.idx, self.gen).cmp(&(other.idx, other.gen))
    }
}
impl<Tag> std::hash::Hash for Handle<Tag> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pack().hash(state);
    }
}
impl<Tag> fmt::Debug for Handle<Tag> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}v{}", self.idx, self.gen)
    }
}

impl<Tag> Handle<Tag> {
    /// The slot index (dense, reused across generations).
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The generation stamp.
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Packs the handle into one word: `generation << 32 | index`.
    /// Lets existing `u64`-shaped public ids (e.g. NFS file handles)
    /// carry a generation without changing their type.
    pub fn pack(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.idx)
    }

    /// Rebuilds a handle from [`pack`](Handle::pack)'s encoding.
    pub fn from_pack(packed: u64) -> Self {
        Handle {
            idx: (packed & u64::from(u32::MAX)) as u32,
            gen: (packed >> 32) as u32,
            _tag: PhantomData,
        }
    }
}

/// A dereference of a handle whose slot has since been freed (or that
/// never belonged to this map).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleHandle {
    /// The handle's slot index.
    pub index: u32,
    /// The generation the handle was issued under.
    pub held: u32,
    /// The slot's current generation (`None` when the index is out of
    /// range for the map).
    pub current: Option<u32>,
}

impl fmt::Display for StaleHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.current {
            Some(cur) => write!(
                f,
                "stale handle: slot {} generation {} (slot is at generation {})",
                self.index, self.held, cur
            ),
            None => write!(
                f,
                "stale handle: slot {} generation {} (no such slot)",
                self.index, self.held
            ),
        }
    }
}

impl std::error::Error for StaleHandle {}

#[derive(Clone, Debug)]
enum Entry<T> {
    Occupied(T),
    /// Next free slot index, or [`NIL`].
    Free(u32),
}

#[derive(Clone, Debug)]
struct Slot<T> {
    /// Bumped when the slot is freed, so handles issued for earlier
    /// occupancies detectably mismatch.
    gen: u32,
    entry: Entry<T>,
}

/// A generation-stamped slot arena: O(1) insert/remove/get with
/// typed handles and deterministic iteration in slot order.
///
/// ```
/// use gridvm_simcore::slot::SlotMap;
///
/// struct Guest;
/// let mut vms: SlotMap<Guest, &str> = SlotMap::new();
/// let a = vms.insert("rh72");
/// let b = vms.insert("debian");
/// assert_eq!(vms.get(a), Ok(&"rh72"));
/// vms.remove(a).unwrap();
/// assert!(vms.get(a).is_err(), "freed generation fails loudly");
/// let c = vms.insert("suse"); // reuses slot 0 under a new generation
/// assert_eq!(c.index(), 0);
/// assert_ne!(c.generation(), a.generation());
/// assert_eq!(vms.get(b), Ok(&"debian"));
/// ```
pub struct SlotMap<Tag, T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
    _tag: PhantomData<fn() -> Tag>,
}

// Manual impls: derives would bound `Tag`, which is phantom.
impl<Tag, T: Clone> Clone for SlotMap<Tag, T> {
    fn clone(&self) -> Self {
        SlotMap {
            slots: self.slots.clone(),
            free_head: self.free_head,
            len: self.len,
            _tag: PhantomData,
        }
    }
}

impl<Tag, T: fmt::Debug> fmt::Debug for SlotMap<Tag, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<Tag, T> Default for SlotMap<Tag, T> {
    fn default() -> Self {
        SlotMap::new()
    }
}

impl<Tag, T> SlotMap<Tag, T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SlotMap {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
            _tag: PhantomData,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no value is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a value, reusing the most recently freed slot if one
    /// exists, and returns its handle.
    pub fn insert(&mut self, value: T) -> Handle<Tag> {
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            match slot.entry {
                Entry::Free(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            slot.entry = Entry::Occupied(value);
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "slot arena full");
            self.slots.push(Slot {
                gen: 0,
                entry: Entry::Occupied(value),
            });
            (self.slots.len() - 1) as u32
        };
        self.len += 1;
        Handle {
            idx,
            gen: self.slots[idx as usize].gen,
            _tag: PhantomData,
        }
    }

    fn stale(&self, handle: Handle<Tag>) -> StaleHandle {
        STALE_DEREFS.add(1);
        StaleHandle {
            index: handle.idx,
            held: handle.gen,
            current: self.slots.get(handle.idx as usize).map(|s| s.gen),
        }
    }

    /// True when `handle` refers to a live value (never counts as a
    /// stale dereference — it is the query form).
    pub fn contains(&self, handle: Handle<Tag>) -> bool {
        self.slots
            .get(handle.idx as usize)
            .is_some_and(|s| s.gen == handle.gen && matches!(s.entry, Entry::Occupied(_)))
    }

    /// Borrows the value behind `handle`.
    ///
    /// # Errors
    ///
    /// [`StaleHandle`] when the slot was freed since the handle was
    /// issued (or never belonged to this map); also bumps the
    /// `slot.stale_derefs` counter.
    pub fn get(&self, handle: Handle<Tag>) -> Result<&T, StaleHandle> {
        match self.slots.get(handle.idx as usize) {
            Some(slot) if slot.gen == handle.gen => match &slot.entry {
                Entry::Occupied(v) => Ok(v),
                Entry::Free(_) => Err(self.stale(handle)),
            },
            _ => Err(self.stale(handle)),
        }
    }

    /// Mutably borrows the value behind `handle`.
    ///
    /// # Errors
    ///
    /// [`StaleHandle`], as for [`get`](SlotMap::get).
    pub fn get_mut(&mut self, handle: Handle<Tag>) -> Result<&mut T, StaleHandle> {
        match self.slots.get(handle.idx as usize) {
            Some(slot) if slot.gen == handle.gen && matches!(slot.entry, Entry::Occupied(_)) => {
                match &mut self.slots[handle.idx as usize].entry {
                    Entry::Occupied(v) => Ok(v),
                    Entry::Free(_) => unreachable!("occupancy checked above"),
                }
            }
            _ => Err(self.stale(handle)),
        }
    }

    /// Removes and returns the value behind `handle`, bumping the
    /// slot's generation so the handle (and any copy of it) is stale
    /// from now on.
    ///
    /// # Errors
    ///
    /// [`StaleHandle`], as for [`get`](SlotMap::get).
    pub fn remove(&mut self, handle: Handle<Tag>) -> Result<T, StaleHandle> {
        match self.slots.get(handle.idx as usize) {
            Some(slot) if slot.gen == handle.gen && matches!(slot.entry, Entry::Occupied(_)) => {
                let slot = &mut self.slots[handle.idx as usize];
                let old = std::mem::replace(&mut slot.entry, Entry::Free(self.free_head));
                slot.gen = slot.gen.wrapping_add(1);
                self.free_head = handle.idx;
                self.len -= 1;
                match old {
                    Entry::Occupied(v) => Ok(v),
                    Entry::Free(_) => unreachable!("occupancy checked above"),
                }
            }
            _ => Err(self.stale(handle)),
        }
    }

    /// Iterates live `(handle, value)` pairs in slot order — a pure
    /// function of the operation sequence, never of any hash.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<Tag>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.entry {
                Entry::Occupied(v) => Some((
                    Handle {
                        idx: i as u32,
                        gen: s.gen,
                        _tag: PhantomData,
                    },
                    v,
                )),
                Entry::Free(_) => None,
            })
    }

    /// Mutable variant of [`iter`](SlotMap::iter).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle<Tag>, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let gen = s.gen;
            match &mut s.entry {
                Entry::Occupied(v) => Some((
                    Handle {
                        idx: i as u32,
                        gen,
                        _tag: PhantomData,
                    },
                    v,
                )),
                Entry::Free(_) => None,
            }
        })
    }

    /// Re-verifies the arena's structural invariants from first
    /// principles: the free list and the occupied slots partition the
    /// arena (every slot is in exactly one), the free list is
    /// acyclic and in range, and the live count agrees.
    ///
    /// # Errors
    ///
    /// An [`AuditViolation`](crate::audit::AuditViolation) naming the
    /// broken invariant.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        use crate::audit::violated;
        // Walk the free list: bounded, in range, and only free slots.
        let mut on_free_list = vec![false; self.slots.len()];
        let mut cur = self.free_head;
        let mut steps = 0usize;
        while cur != NIL {
            if steps > self.slots.len() {
                return violated(
                    "slot-free-cycle",
                    format!(
                        "free list longer than the arena ({} slots)",
                        self.slots.len()
                    ),
                );
            }
            let Some(slot) = self.slots.get(cur as usize) else {
                return violated(
                    "slot-free-range",
                    format!("free list points at slot {cur} beyond {}", self.slots.len()),
                );
            };
            if on_free_list[cur as usize] {
                return violated(
                    "slot-free-cycle",
                    format!("slot {cur} on the free list twice"),
                );
            }
            on_free_list[cur as usize] = true;
            cur = match slot.entry {
                Entry::Free(next) => next,
                Entry::Occupied(_) => {
                    return violated(
                        "slot-partition",
                        format!("free list points at occupied slot {cur}"),
                    )
                }
            };
            steps += 1;
        }
        // Partition: every free slot is on the list, every occupied
        // slot is not, and the live count matches.
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            match slot.entry {
                Entry::Occupied(_) => {
                    if on_free_list[i] {
                        return violated(
                            "slot-partition",
                            format!("occupied slot {i} is also on the free list"),
                        );
                    }
                    live += 1;
                }
                Entry::Free(_) => {
                    if !on_free_list[i] {
                        return violated(
                            "slot-partition",
                            format!("free slot {i} unreachable from the free list"),
                        );
                    }
                }
            }
        }
        if live != self.len {
            return violated(
                "slot-count",
                format!("{} occupied slots but len {}", live, self.len),
            );
        }
        Ok(())
    }

    /// Test-only corruption hook: severs the free list at its head so
    /// the audit's partition check must notice. Compiled only with the
    /// audit layer.
    #[cfg(any(debug_assertions, feature = "audit"))]
    #[doc(hidden)]
    pub fn corrupt_free_list_for_test(&mut self) {
        let beyond = self.slots.len() as u32;
        if let Some(slot) = self.slots.get_mut(self.free_head as usize) {
            // Point the head's next past the end of the arena.
            slot.entry = Entry::Free(beyond);
        }
    }
}

/// Page size of the sparse index, in keys. Pages allocate lazily, so
/// a sparse key universe costs one `Option` per 64-key span plus one
/// 256-byte page per span actually used.
const PAGE: usize = 64;

/// A map from small integer keys to densely stored values: O(1)
/// get/insert/remove, full scans over a contiguous value array.
///
/// The key universe is expected to be *dense-ish and bounded*
/// (sequential task ids, overlay node ids, block addresses bounded by
/// the device size). For sparse external keys (MACs, strings),
/// resolve to a handle at the boundary instead.
///
/// Iteration order is insertion order as perturbed by removals
/// (`swap_remove`) — a pure function of the operation sequence, never
/// of any hash, so it is deterministic across thread counts. Callers
/// that need key order must sort explicitly (and should be cold).
///
/// ```
/// use gridvm_simcore::slot::DenseMap;
///
/// let mut m: DenseMap<&str> = DenseMap::new();
/// m.insert(3, "three");
/// m.insert(40, "forty");
/// assert_eq!(m.get(3), Some(&"three"));
/// assert_eq!(m.remove(3), Some("three"));
/// assert_eq!(m.get(3), None);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DenseMap<T> {
    /// Paged key → dense-index lookup; [`NIL`] marks absent keys.
    sparse: Vec<Option<Box<[u32; PAGE]>>>,
    /// The values, with their keys, packed contiguously.
    dense: Vec<(u64, T)>,
}

impl<T> Default for DenseMap<T> {
    fn default() -> Self {
        DenseMap::new()
    }
}

impl<T> DenseMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            sparse: Vec::new(),
            dense: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    fn slot_of(&self, key: u64) -> Option<u32> {
        let page = (key / PAGE as u64) as usize;
        let within = (key % PAGE as u64) as usize;
        match self.sparse.get(page) {
            Some(Some(p)) => {
                let v = p[within];
                (v != NIL).then_some(v)
            }
            _ => None,
        }
    }

    fn set_slot(&mut self, key: u64, value: u32) {
        let page = (key / PAGE as u64) as usize;
        let within = (key % PAGE as u64) as usize;
        if page >= self.sparse.len() {
            self.sparse.resize_with(page + 1, || None);
        }
        let p = self.sparse[page].get_or_insert_with(|| Box::new([NIL; PAGE]));
        p[within] = value;
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.slot_of(key).is_some()
    }

    /// Borrows the value for `key`.
    pub fn get(&self, key: u64) -> Option<&T> {
        self.slot_of(key).map(|i| &self.dense[i as usize].1)
    }

    /// Mutably borrows the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        match self.slot_of(key) {
            Some(i) => Some(&mut self.dense[i as usize].1),
            None => None,
        }
    }

    /// Inserts or replaces the value for `key`; returns the previous
    /// value, if any.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        if let Some(i) = self.slot_of(key) {
            return Some(std::mem::replace(&mut self.dense[i as usize].1, value));
        }
        assert!(self.dense.len() < NIL as usize, "dense map full");
        let idx = self.dense.len() as u32;
        self.dense.push((key, value));
        self.set_slot(key, idx);
        None
    }

    /// Removes and returns the value for `key`. The last entry moves
    /// into the vacated dense position (its sparse pointer is fixed
    /// up), keeping the value array contiguous.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let idx = self.slot_of(key)? as usize;
        let (_, value) = self.dense.swap_remove(idx);
        if idx < self.dense.len() {
            let moved_key = self.dense[idx].0;
            self.set_slot(moved_key, idx as u32);
        }
        self.set_slot(key, NIL);
        Some(value)
    }

    /// Drops every entry (keeps the allocated pages).
    pub fn clear(&mut self) {
        for (key, _) in self.dense.drain(..) {
            let page = (key / PAGE as u64) as usize;
            let within = (key % PAGE as u64) as usize;
            if let Some(Some(p)) = self.sparse.get_mut(page) {
                p[within] = NIL;
            }
        }
    }

    /// Iterates `(key, &value)` in dense (operation-sequence) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.dense.iter().map(|(k, v)| (*k, v))
    }

    /// Mutable variant of [`iter`](DenseMap::iter).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.dense.iter_mut().map(|(k, v)| (*k, v))
    }

    /// The keys in ascending order — for the cold paths where key
    /// order is semantic (ordered dumps, order-sensitive float sums).
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.dense.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys
    }

    /// Re-verifies dense↔sparse agreement: every sparse pointer hits
    /// a dense entry carrying the pointing key, every dense entry's
    /// key points back at it, and the non-NIL pointer count equals
    /// the dense length.
    ///
    /// # Errors
    ///
    /// An [`AuditViolation`](crate::audit::AuditViolation) naming the
    /// broken invariant.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        use crate::audit::violated;
        let mut pointed = 0usize;
        for (page_no, page) in self.sparse.iter().enumerate() {
            let Some(page) = page else { continue };
            for (within, &idx) in page.iter().enumerate() {
                if idx == NIL {
                    continue;
                }
                pointed += 1;
                let key = (page_no * PAGE + within) as u64;
                match self.dense.get(idx as usize) {
                    Some((k, _)) if *k == key => {}
                    Some((k, _)) => {
                        return violated(
                            "dense-backptr",
                            format!("sparse[{key}] points at dense[{idx}] which holds key {k}"),
                        )
                    }
                    None => {
                        return violated(
                            "dense-backptr",
                            format!(
                                "sparse[{key}] points at dense[{idx}] beyond len {}",
                                self.dense.len()
                            ),
                        )
                    }
                }
            }
        }
        if pointed != self.dense.len() {
            return violated(
                "dense-count",
                format!(
                    "{} sparse pointers but {} dense entries",
                    pointed,
                    self.dense.len()
                ),
            );
        }
        for (i, (key, _)) in self.dense.iter().enumerate() {
            if self.slot_of(*key) != Some(i as u32) {
                return violated(
                    "dense-backptr",
                    format!("dense[{i}] holds key {key} whose sparse pointer disagrees"),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestTag;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: SlotMap<TestTag, u32> = SlotMap::new();
        let a = m.insert(10);
        let b = m.insert(20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a), Ok(&10));
        assert_eq!(m.get(b), Ok(&20));
        *m.get_mut(a).unwrap() += 1;
        assert_eq!(m.remove(a), Ok(11));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        m.audit().unwrap();
    }

    #[test]
    fn freed_generation_is_stale_and_counted() {
        crate::metrics::reset();
        let mut m: SlotMap<TestTag, &str> = SlotMap::new();
        let h = m.insert("doomed");
        m.remove(h).unwrap();
        let err = m.get(h).unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(err.held, 0);
        assert_eq!(err.current, Some(1));
        assert!(err.to_string().contains("stale handle"));
        assert!(m.get_mut(h).is_err());
        assert!(m.remove(h).is_err());
        let snap = crate::metrics::take();
        assert_eq!(snap.counter("slot.stale_derefs"), 3);
    }

    #[test]
    fn slot_reuse_issues_a_fresh_generation() {
        let mut m: SlotMap<TestTag, u32> = SlotMap::new();
        let a = m.insert(1);
        m.remove(a).unwrap();
        let b = m.insert(2);
        assert_eq!(b.index(), a.index(), "slot is reused");
        assert_ne!(b.generation(), a.generation());
        assert!(m.get(a).is_err(), "old handle stays stale");
        assert_eq!(m.get(b), Ok(&2));
        m.audit().unwrap();
    }

    #[test]
    fn handles_pack_and_unpack() {
        let mut m: SlotMap<TestTag, u8> = SlotMap::new();
        let a = m.insert(1);
        m.remove(a).unwrap();
        let b = m.insert(2);
        let packed = b.pack();
        assert_eq!(packed >> 32, 1, "generation rides the high word");
        let back: Handle<TestTag> = Handle::from_pack(packed);
        assert_eq!(back, b);
        assert_eq!(m.get(back), Ok(&2));
        assert_eq!(format!("{b:?}"), "slot#0v1");
    }

    #[test]
    fn out_of_range_handle_is_stale() {
        let m: SlotMap<TestTag, u8> = SlotMap::new();
        let phantom: Handle<TestTag> = Handle::from_pack(7);
        let err = m.get(phantom).unwrap_err();
        assert_eq!(err.current, None);
        assert!(err.to_string().contains("no such slot"));
        assert!(!m.contains(phantom));
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut m: SlotMap<TestTag, u32> = SlotMap::new();
        let a = m.insert(0);
        let _b = m.insert(1);
        let _c = m.insert(2);
        m.remove(a).unwrap();
        let d = m.insert(3); // reuses slot 0
        let vals: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![3, 1, 2], "slot order, not insertion order");
        assert_eq!(m.iter().next().unwrap().0, d);
        for (_, v) in m.iter_mut() {
            *v += 10;
        }
        assert_eq!(m.get(d), Ok(&13));
    }

    #[test]
    fn audit_detects_a_broken_free_list() {
        let mut m: SlotMap<TestTag, u32> = SlotMap::new();
        let a = m.insert(1);
        let _b = m.insert(2);
        m.remove(a).unwrap();
        m.audit().unwrap();
        m.corrupt_free_list_for_test();
        let err = m.audit().unwrap_err();
        assert_eq!(err.invariant, "slot-free-range");
        assert!(err.to_string().contains("free list"));
    }

    #[test]
    fn dense_map_roundtrip_and_swap_remove_fixup() {
        let mut m: DenseMap<u32> = DenseMap::new();
        assert!(m.is_empty());
        m.insert(5, 50);
        m.insert(900, 9000); // far page
        m.insert(6, 60);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(900), Some(&9000));
        // Removing a middle entry moves the last one into its place.
        assert_eq!(m.remove(5), Some(50));
        assert_eq!(m.get(6), Some(&60));
        assert_eq!(m.get(900), Some(&9000));
        assert_eq!(m.get(5), None);
        m.audit().unwrap();
        *m.get_mut(6).unwrap() = 61;
        assert_eq!(m.insert(6, 62), Some(61), "insert replaces");
        assert_eq!(m.sorted_keys(), vec![6, 900]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(6), None);
        m.audit().unwrap();
    }

    #[test]
    fn dense_iteration_is_operation_order() {
        let mut m: DenseMap<&str> = DenseMap::new();
        m.insert(9, "nine");
        m.insert(2, "two");
        m.insert(400, "four hundred");
        let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![9, 2, 400], "insertion order, not key order");
        m.remove(9);
        let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![400, 2], "swap_remove moved the tail forward");
        for (_, v) in m.iter_mut() {
            *v = "x";
        }
        assert_eq!(m.get(2), Some(&"x"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    struct PropTag;

    proptest! {
        /// Any interleaving of inserts/removes/gets agrees with a
        /// BTreeMap reference model, freed handles never resolve, and
        /// the audit holds at every step. Ops are tuple-encoded
        /// (kind, value, pick): kind 0 inserts `value`, 1 removes the
        /// pick-th live handle, 2 gets the pick-th live handle, 3
        /// re-derefs the pick-th *freed* handle (generation-reuse
        /// probing: must always be stale).
        #[test]
        fn slotmap_matches_reference_model(
            ops in proptest::collection::vec((0u8..4, 0u32..1000, 0usize..64), 1..200)
        ) {
            let mut m: SlotMap<PropTag, u32> = SlotMap::new();
            let mut model: BTreeMap<Handle<PropTag>, u32> = BTreeMap::new();
            let mut live: Vec<Handle<PropTag>> = Vec::new();
            let mut freed: Vec<Handle<PropTag>> = Vec::new();
            for (kind, v, pick) in ops {
                match kind {
                    0 => {
                        let h = m.insert(v);
                        prop_assert!(!model.contains_key(&h), "handles are never re-issued");
                        model.insert(h, v);
                        live.push(h);
                    }
                    1 if !live.is_empty() => {
                        let h = live.remove(pick % live.len());
                        let got = m.remove(h);
                        prop_assert_eq!(got.ok(), model.remove(&h));
                        freed.push(h);
                    }
                    2 if !live.is_empty() => {
                        let h = live[pick % live.len()];
                        prop_assert_eq!(m.get(h).ok(), model.get(&h));
                        prop_assert!(m.contains(h));
                    }
                    3 if !freed.is_empty() => {
                        let h = freed[pick % freed.len()];
                        prop_assert!(m.get(h).is_err(), "freed handle must stay stale");
                        prop_assert!(!m.contains(h));
                    }
                    _ => {}
                }
                m.audit().unwrap();
                prop_assert_eq!(m.len(), model.len());
            }
            // Deterministic iteration: slot order, and the live set
            // agrees with the model exactly.
            let seen: BTreeMap<Handle<PropTag>, u32> =
                m.iter().map(|(h, v)| (h, *v)).collect();
            prop_assert_eq!(seen, model);
        }

        /// DenseMap agrees with a BTreeMap reference model under any
        /// insert/remove/get interleaving over a small key universe.
        #[test]
        fn densemap_matches_reference_model(
            ops in proptest::collection::vec((0u64..200, 0u32..1000, proptest::bool::ANY), 1..200)
        ) {
            let mut m: DenseMap<u32> = DenseMap::new();
            let mut model: BTreeMap<u64, u32> = BTreeMap::new();
            for (key, v, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(m.insert(key, v), model.insert(key, v));
                } else {
                    prop_assert_eq!(m.remove(key), model.remove(&key));
                }
                prop_assert_eq!(m.len(), model.len());
                prop_assert_eq!(m.get(key), model.get(&key));
                m.audit().unwrap();
            }
            // Same entries, independent of internal order.
            let mut got: Vec<(u64, u32)> = m.iter().map(|(k, v)| (k, *v)).collect();
            got.sort_unstable();
            let want: Vec<(u64, u32)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(m.sorted_keys(), want_keys(&m));
        }
    }

    fn want_keys(m: &DenseMap<u32>) -> Vec<u64> {
        let mut keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }
}
