//! Per-replication metrics: counters, gauges and timers keyed by
//! static names, recorded into an implicit thread-local context and
//! merged across replications.
//!
//! The simulation kernel and the middleware crates record their
//! headline quantities (events executed, world switches, trap counts,
//! cache hits/misses, RPC round-trips) through the free functions in
//! this module. Because the context is thread-local, components need
//! no extra plumbing, recording stays lock-free, and a
//! [`ReplicationRunner`](crate::replication::ReplicationRunner)
//! harvesting one context per replication observes exactly the
//! activity of that replication regardless of how replications are
//! packed onto OS threads.
//!
//! Merging is deterministic: registries are ordered maps keyed by
//! `&'static str`, counters add, gauges and timers fold their
//! per-replication distributions with the same parallel-Welford merge
//! [`OnlineStats`] uses, and the runner merges contexts in
//! replication-index order — so merged results are bit-identical for
//! any `--threads` value.
//!
//! ```
//! use gridvm_simcore::metrics;
//!
//! metrics::reset();
//! metrics::counter_add("vfs.rpc_round_trips", 3);
//! metrics::gauge_set("host.utilization", 0.75);
//! metrics::timer_record("vmm.world_switch_secs", 1.2e-5);
//! let m = metrics::take();
//! assert_eq!(m.counter("vfs.rpc_round_trips"), 3);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::hist::Histogram;
use crate::stats::OnlineStats;

/// Aggregate of one timer: invocation count plus the distribution of
/// recorded durations (in seconds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimerStat {
    stats: OnlineStats,
}

impl TimerStat {
    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Sum of recorded durations, seconds.
    pub fn total_secs(&self) -> f64 {
        self.stats.mean() * self.stats.count() as f64
    }

    /// Distribution of recorded durations.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

/// A registry of named counters, gauges and timers.
///
/// Component code does not usually construct one directly; it records
/// through the module-level free functions and lets the replication
/// runner harvest and merge contexts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, OnlineStats>,
    timers: BTreeMap<&'static str, TimerStat>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.histograms.is_empty()
    }

    /// Total named series tracked (counters + gauges + timers +
    /// histograms). The memory-bound the macro-scale soak tests
    /// assert: a million-session run must keep this proportional to
    /// the *kinds* of quantities measured, never the session count.
    pub fn tracked_entries(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.timers.len() + self.histograms.len()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge for this replication. Within one
    /// replication the last write wins; across merged replications the
    /// gauge reports the distribution of per-replication values.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        let mut s = OnlineStats::new();
        s.record(value);
        self.gauges.insert(name, s);
    }

    /// Records one duration (seconds) against the named timer.
    pub fn timer_record(&mut self, name: &'static str, secs: f64) {
        self.timers.entry(name).or_default().stats.record(secs);
    }

    /// Records one value into the named log-scale histogram (created
    /// with the default [`Histogram`] layout on first touch).
    /// Constant memory per name — the streaming replacement for
    /// unbounded per-sample growth at macro scale.
    ///
    /// # Panics
    ///
    /// Panics when `v` is above the default layout's top bucket; see
    /// [`Histogram::record`].
    pub fn histogram_record(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value distribution, when set.
    pub fn gauge(&self, name: &str) -> Option<&OnlineStats> {
        self.gauges.get(name)
    }

    /// The named timer's aggregate, when recorded.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.get(name)
    }

    /// The named histogram, when recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &OnlineStats)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, v))
    }

    /// All timers, name-ordered.
    pub fn timers(&self) -> impl Iterator<Item = (&'static str, &TimerStat)> + '_ {
        self.timers.iter().map(|(k, v)| (*k, v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another registry into this one: counters add, gauge and
    /// timer distributions merge. Deterministic given the merge order,
    /// which the replication runner fixes to replication-index order.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, s) in &other.gauges {
            self.gauges.entry(name).or_default().merge(s);
        }
        for (name, t) in &other.timers {
            self.timers.entry(name).or_default().stats.merge(&t.stats);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, s) in &self.gauges {
            writeln!(f, "gauge   {name} = {s}")?;
        }
        for (name, t) in &self.timers {
            writeln!(
                f,
                "timer   {name} = n={} total={:.6}s",
                t.count(),
                t.total_secs()
            )?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "hist    {name} = {h}")?;
        }
        Ok(())
    }
}

thread_local! {
    static CONTEXT: RefCell<Metrics> = RefCell::new(Metrics::new());
    /// Flat per-thread cells for pre-resolved [`Counter`] handles:
    /// indexed by registry slot, folded into the named registry on
    /// harvest. Hot-loop increments touch only this vector — no
    /// string hash, no `BTreeMap` walk.
    static FAST_COUNTERS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread snapshot of [`COUNTER_REGISTRY`]: slot → name.
    /// Refreshed (under the registry lock) only when a harvest sees
    /// cells beyond the snapshot, so steady-state harvests — the
    /// sharded synchronizer does one per site per window — stay
    /// entirely lock-free.
    static REGISTRY_CACHE: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Global slot registry backing [`Counter`] handles: slot index →
/// counter name. Locked only on first use of each handle and on
/// harvest, never on the increment path.
static COUNTER_REGISTRY: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// A pre-resolved counter handle for hot loops.
///
/// A `Counter` is declared once as a `static` and resolves its
/// registry slot on first use; after that, [`add`](Counter::add) is an
/// index into a thread-local vector — no string hashing per increment,
/// unlike [`counter_add`]. Values land under the same name in the
/// harvested [`Metrics`], so reports and their merge order are
/// unchanged.
///
/// ```
/// use gridvm_simcore::metrics::{self, Counter};
///
/// static FRAMES: Counter = Counter::new("demo.frames");
///
/// metrics::reset();
/// for _ in 0..3 {
///     FRAMES.add(1);
/// }
/// assert_eq!(metrics::take().counter("demo.frames"), 3);
/// ```
pub struct Counter {
    name: &'static str,
    slot: OnceLock<u32>,
}

impl Counter {
    /// Declares a handle for the named counter. `const`, so it can
    /// initialise a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn slot(&self) -> usize {
        *self.slot.get_or_init(|| {
            let mut reg = COUNTER_REGISTRY.lock().expect("counter registry poisoned");
            reg.push(self.name);
            (reg.len() - 1) as u32
        }) as usize
    }

    /// Adds `delta` to this counter in the current thread's context.
    pub fn add(&self, delta: u64) {
        let slot = self.slot();
        FAST_COUNTERS.with(|f| {
            let mut cells = f.borrow_mut();
            if cells.len() <= slot {
                cells.resize(slot + 1, 0);
            }
            cells[slot] += delta;
        });
    }
}

/// Folds this thread's fast-counter cells into `m` by name and zeroes
/// them.
fn drain_fast(m: &mut Metrics) {
    FAST_COUNTERS.with(|f| {
        let mut cells = f.borrow_mut();
        if cells.iter().all(|&v| v == 0) {
            return;
        }
        REGISTRY_CACHE.with(|rc| {
            let mut cache = rc.borrow_mut();
            if cache.len() < cells.len() {
                let reg = COUNTER_REGISTRY.lock().expect("counter registry poisoned");
                cache.clear();
                cache.extend(reg.iter().copied());
            }
            for (slot, v) in cells.iter_mut().enumerate() {
                if *v != 0 {
                    m.counter_add(cache[slot], *v);
                    *v = 0;
                }
            }
        });
    });
}

/// Clears this thread's metrics context. The replication runner calls
/// this before each replication so contexts never bleed across
/// replications sharing an OS thread.
pub fn reset() {
    CONTEXT.with(|c| *c.borrow_mut() = Metrics::new());
    FAST_COUNTERS.with(|f| f.borrow_mut().iter_mut().for_each(|v| *v = 0));
}

/// [`reset`] plus pre-sizing: grows this thread's fast-counter cells
/// to cover every counter registered so far, so no `Counter::add`
/// mid-replication has to regrow the vector. The replication runner
/// calls this before each replication — by then the first replication
/// (or the process's warm-up) has registered the hot counters.
pub fn reset_presized() {
    CONTEXT.with(|c| *c.borrow_mut() = Metrics::new());
    let registered = COUNTER_REGISTRY
        .lock()
        .expect("counter registry poisoned")
        .len();
    FAST_COUNTERS.with(|f| {
        let mut cells = f.borrow_mut();
        cells.iter_mut().for_each(|v| *v = 0);
        if cells.len() < registered {
            cells.resize(registered, 0);
        }
    });
}

/// Takes this thread's metrics context, leaving an empty one.
/// Pre-resolved [`Counter`] cells are folded in by name.
pub fn take() -> Metrics {
    let mut m = CONTEXT.with(|c| std::mem::take(&mut *c.borrow_mut()));
    drain_fast(&mut m);
    m
}

/// Swaps this thread's context with `m` after folding pre-resolved
/// [`Counter`] cells into the outgoing context — so all activity up
/// to this call stays with the registry that was installed while it
/// happened.
///
/// This is the allocation-free alternative to [`take`] + [`merge`]
/// (Metrics::merge) for code that repeatedly runs work on behalf of
/// different owners on one thread: the sharded synchronizer swaps
/// each site's accumulated registry in before executing its window
/// and back out after, a pair of pointer-sized moves per window
/// instead of a `BTreeMap` rebuild.
pub fn swap(m: &mut Metrics) {
    CONTEXT.with(|c| {
        let mut ctx = c.borrow_mut();
        drain_fast(&mut ctx);
        std::mem::swap(&mut *ctx, m);
    });
}

/// Harvests this thread's metrics activity since the last harvest
/// directly into `m`: pre-resolved [`Counter`] cells fold straight in,
/// and any slow-path context activity (string-keyed counters, gauges,
/// timers, histograms) is folded in and cleared.
///
/// This is the cheapest per-owner harvest — one pass over the cells,
/// no context exchange — for callers that guarantee the ambient
/// context is empty when the owner's activity begins. The sharded
/// synchronizer qualifies: its run saves the ambient context up
/// front, so between harvests the context only ever holds the current
/// owner's slow-path spillover. Callers without that guarantee want
/// [`swap`], which keeps the owner's registry installed while its
/// work runs.
pub fn harvest_into(m: &mut Metrics) {
    drain_fast(m);
    spill_context_into(m);
}

/// Drains this thread's fast-counter cells into a plain slot-indexed
/// accumulator, growing `acc` to cover every cell and zeroing the
/// cells — no name resolution, no map walk, just array adds. The
/// accumulator materializes into named counters via [`fold_cells`],
/// typically once at the end of the owner's run; between the two, the
/// same empty-ambient-context precondition as [`harvest_into`]
/// applies. Callers that also use slow-path metrics pair this with
/// [`spill_context_into`].
pub fn drain_fast_cells(acc: &mut Vec<u64>) {
    FAST_COUNTERS.with(|f| {
        let mut cells = f.borrow_mut();
        if cells.len() > acc.len() {
            acc.resize(cells.len(), 0);
        }
        for (a, v) in acc.iter_mut().zip(cells.iter_mut()) {
            *a += std::mem::take(v);
        }
    });
}

/// Folds a slot-indexed accumulator filled by [`drain_fast_cells`]
/// into `m` by registry name, zeroing it.
pub fn fold_cells(acc: &mut [u64], m: &mut Metrics) {
    if acc.iter().all(|&v| v == 0) {
        return;
    }
    REGISTRY_CACHE.with(|rc| {
        let mut cache = rc.borrow_mut();
        if cache.len() < acc.len() {
            let reg = COUNTER_REGISTRY.lock().expect("counter registry poisoned");
            cache.clear();
            cache.extend(reg.iter().copied());
        }
        for (slot, v) in acc.iter_mut().enumerate() {
            if *v != 0 {
                m.counter_add(cache[slot], *v);
                *v = 0;
            }
        }
    });
}

/// Folds any slow-path context activity (string-keyed counters,
/// gauges, timers, histograms) into `m` and clears it; fast-counter
/// cells are untouched. The context half of [`harvest_into`], for
/// callers that route the fast cells through [`drain_fast_cells`]
/// instead.
pub fn spill_context_into(m: &mut Metrics) {
    CONTEXT.with(|c| {
        let mut ctx = c.borrow_mut();
        if !ctx.is_empty() {
            m.merge(&ctx);
            *ctx = Metrics::new();
        }
    });
}

/// Runs `f` with a read view of this thread's context, including any
/// pre-resolved [`Counter`] activity.
pub fn with_current<R>(f: impl FnOnce(&Metrics) -> R) -> R {
    CONTEXT.with(|c| {
        drain_fast(&mut c.borrow_mut());
        f(&c.borrow())
    })
}

/// Folds a harvested registry back into this thread's context — the
/// inverse of [`take`]. The sharded simulator uses this to restore a
/// caller's ambient context and then fold per-site registries in site
/// order, so a run's merged metrics land in whatever context invoked
/// it (a replication, a test, a bench sample).
pub fn merge_current(m: &Metrics) {
    CONTEXT.with(|c| c.borrow_mut().merge(m));
}

/// Adds `delta` to a counter in this thread's context.
pub fn counter_add(name: &'static str, delta: u64) {
    CONTEXT.with(|c| c.borrow_mut().counter_add(name, delta));
}

/// Sets a gauge in this thread's context.
pub fn gauge_set(name: &'static str, value: f64) {
    CONTEXT.with(|c| c.borrow_mut().gauge_set(name, value));
}

/// Records a duration (seconds) against a timer in this thread's
/// context.
pub fn timer_record(name: &'static str, secs: f64) {
    CONTEXT.with(|c| c.borrow_mut().timer_record(name, secs));
}

/// Records a value into a log-scale histogram in this thread's
/// context. See [`Metrics::histogram_record`].
pub fn histogram_record(name: &'static str, v: u64) {
    CONTEXT.with(|c| c.borrow_mut().histogram_record(name, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_merge() {
        let mut a = Metrics::new();
        a.counter_add("x", 2);
        a.counter_add("x", 3);
        let mut b = Metrics::new();
        b.counter_add("x", 5);
        b.counter_add("y", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 10);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_last_write_then_merge_distributions() {
        let mut a = Metrics::new();
        a.gauge_set("u", 0.25);
        a.gauge_set("u", 0.75); // last write wins within a replication
        let mut b = Metrics::new();
        b.gauge_set("u", 0.25);
        a.merge(&b);
        let g = a.gauge("u").expect("set");
        assert_eq!(g.count(), 2);
        assert!((g.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timers_accumulate() {
        let mut m = Metrics::new();
        m.timer_record("t", 1.0);
        m.timer_record("t", 3.0);
        let t = m.timer("t").expect("recorded");
        assert_eq!(t.count(), 2);
        assert!((t.total_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_sensitive_only_in_float_rounding() {
        // Same multiset of inputs merged in the same order must be
        // bit-identical — the property the runner relies on.
        let build = || {
            let mut parts = Vec::new();
            for i in 0..4 {
                let mut m = Metrics::new();
                m.counter_add("c", i);
                m.gauge_set("g", i as f64 * 0.1);
                m.timer_record("t", i as f64);
                parts.push(m);
            }
            let mut merged = Metrics::new();
            for p in &parts {
                merged.merge(p);
            }
            merged
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn thread_local_context_roundtrip() {
        reset();
        counter_add("ctx.count", 7);
        gauge_set("ctx.gauge", 2.5);
        timer_record("ctx.timer", 0.5);
        with_current(|m| assert_eq!(m.counter("ctx.count"), 7));
        let m = take();
        assert_eq!(m.counter("ctx.count"), 7);
        assert_eq!(m.gauge("ctx.gauge").map(|g| g.count()), Some(1));
        // The context is now empty again.
        with_current(|m| assert!(m.is_empty()));
    }

    #[test]
    fn counter_handles_fold_into_named_registry() {
        static HANDLE: Counter = Counter::new("handle.count");
        reset();
        HANDLE.add(4);
        HANDLE.add(1);
        // Mixing the slow path under the same name accumulates into
        // one named counter.
        counter_add("handle.count", 2);
        with_current(|m| assert_eq!(m.counter("handle.count"), 7));
        let m = take();
        assert_eq!(m.counter("handle.count"), 7);
        with_current(|m| assert!(m.is_empty(), "take drained the fast cells"));
        assert_eq!(HANDLE.name(), "handle.count");
    }

    #[test]
    fn counter_handles_respect_reset() {
        static HANDLE: Counter = Counter::new("handle.reset");
        reset();
        HANDLE.add(9);
        reset();
        assert_eq!(take().counter("handle.reset"), 0);
    }

    #[test]
    fn duplicate_handles_for_one_name_share_the_named_counter() {
        static A: Counter = Counter::new("handle.dup");
        static B: Counter = Counter::new("handle.dup");
        reset();
        A.add(1);
        B.add(2);
        assert_eq!(take().counter("handle.dup"), 3);
    }

    #[test]
    fn merge_current_restores_a_taken_context() {
        reset();
        counter_add("mc.count", 2);
        let snapshot = take();
        with_current(|m| assert!(m.is_empty()));
        merge_current(&snapshot);
        counter_add("mc.count", 1);
        assert_eq!(take().counter("mc.count"), 3);
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Metrics::new();
        m.counter_add("a.count", 1);
        m.gauge_set("b.gauge", 1.0);
        m.timer_record("c.timer", 0.1);
        m.histogram_record("d.hist", 42);
        let s = m.to_string();
        assert!(s.contains("a.count") && s.contains("b.gauge") && s.contains("c.timer"));
        assert!(s.contains("d.hist") && s.contains("p99="), "{s}");
    }

    #[test]
    fn histograms_record_merge_and_stay_bounded() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        let mut whole = Metrics::new();
        for v in 1..=1000u64 {
            whole.histogram_record("lat", v);
            if v % 2 == 0 {
                a.histogram_record("lat", v);
            } else {
                b.histogram_record("lat", v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "split-and-merge is bit-identical");
        let h = a.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // One named series no matter how many values flowed through.
        assert_eq!(a.tracked_entries(), 1);
        assert!(a.histograms().count() == 1);
    }

    #[test]
    fn histogram_free_function_lands_in_context() {
        reset();
        histogram_record("ctx.hist", 7);
        histogram_record("ctx.hist", 9);
        let m = take();
        assert_eq!(m.histogram("ctx.hist").map(|h| h.count()), Some(2));
        assert!(m.histogram("absent").is_none());
    }

    #[test]
    fn tracked_entries_counts_kinds_not_values() {
        let mut m = Metrics::new();
        assert_eq!(m.tracked_entries(), 0);
        for _ in 0..100 {
            m.counter_add("k.count", 1);
            m.gauge_set("k.gauge", 0.5);
            m.timer_record("k.timer", 0.1);
            m.histogram_record("k.hist", 3);
        }
        assert_eq!(m.tracked_entries(), 4);
    }
}
