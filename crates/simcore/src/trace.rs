//! Lightweight category-tagged trace recorder.
//!
//! Components record `(time, category, message)` triples; experiment
//! harnesses and tests filter by category to assert on causal
//! sequences (e.g. "the VM image blocks were fetched before the guest
//! booted"). The recorder is bounded so long simulations cannot
//! exhaust memory.
//!
//! At macro scale even the bounded ring is too much history to keep
//! *usefully* — a million-session run wraps it thousands of times
//! over, so what survives is an arbitrary tail. A sampled log
//! ([`TraceLog::with_sampling`]) keeps a deterministic stratified
//! subset instead: each category keeps `rate_per_mille / 1000` of its
//! entries, chosen by a seeded hash of `(seed, category, sequence)` —
//! a pure function of the stream, so two runs of the same world (at
//! any shard/thread packing) retain byte-identical entries and the
//! golden tests can pin a digest over the sampled stream.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

use crate::sample::keep_per_mille;
use crate::time::SimTime;

use crate::metrics::Counter;

/// Entries discarded by bounded trace logs (hot when a log wraps).
static TRACE_DROPPED: Counter = Counter::new("trace.dropped");

/// Entries retained by sampling trace logs.
static TRACE_SAMPLED: Counter = Counter::new("trace.sampled");

/// Per-category sampling rates for a sampled [`TraceLog`].
///
/// Rates are per-mille (0 = drop all, 1000 = keep all); categories
/// without an explicit override use the default rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplePolicy {
    default_per_mille: u32,
    per_category: BTreeMap<&'static str, u32>,
}

impl SamplePolicy {
    /// A uniform policy: every category samples at `per_mille`.
    pub fn uniform(per_mille: u32) -> Self {
        SamplePolicy {
            default_per_mille: per_mille.min(1000),
            per_category: BTreeMap::new(),
        }
    }

    /// Overrides one category's rate (builder-style). Categories
    /// carrying rare, high-value events (completions, faults) keep
    /// more; chatty step-level categories keep less.
    pub fn with_category(mut self, category: &'static str, per_mille: u32) -> Self {
        self.per_category.insert(category, per_mille.min(1000));
        self
    }

    /// The effective per-mille rate for a category.
    pub fn rate_for(&self, category: &str) -> u32 {
        self.per_category
            .get(category)
            .copied()
            .unwrap_or(self.default_per_mille)
    }
}

/// The sampling state of a sampled log: the policy, the decision
/// seed, and a per-category sequence counter (bounded by the number
/// of distinct categories, not the entry volume).
#[derive(Clone, Debug)]
struct Sampler {
    policy: SamplePolicy,
    seed: u64,
    seq: BTreeMap<&'static str, u64>,
}

/// A single trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// Component-chosen category tag (e.g. `"vmm"`, `"vfs"`).
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.category, self.message)
    }
}

/// A bounded in-memory trace log.
///
/// ```
/// use gridvm_simcore::trace::TraceLog;
/// use gridvm_simcore::time::SimTime;
///
/// let mut log = TraceLog::with_capacity(100);
/// log.record(SimTime::ZERO, "vmm", "vm-1 boot start".to_owned());
/// assert_eq!(log.entries().count(), 1);
/// assert_eq!(log.by_category("vmm").count(), 1);
/// assert_eq!(log.by_category("vfs").count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceLog {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
    sampled: u64,
    enabled: bool,
    sampler: Option<Sampler>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(16_384)
    }
}

impl TraceLog {
    /// Creates a log that keeps at most `capacity` recent entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceLog capacity must be positive");
        TraceLog {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            sampled: 0,
            enabled: true,
            sampler: None,
        }
    }

    /// Creates a sampling log: entries pass the seeded stratified
    /// keep decision ([`keep_per_mille`]) at their category's policy
    /// rate before entering the ring; the rest count as dropped.
    /// Retention is a pure function of `(policy, seed, stream)` —
    /// sampled digests are reproducible and shard/thread invariant.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_sampling(capacity: usize, policy: SamplePolicy, seed: u64) -> Self {
        let mut log = TraceLog::with_capacity(capacity);
        log.sampler = Some(Sampler {
            policy,
            seed,
            seq: BTreeMap::new(),
        });
        log
    }

    /// Like [`with_capacity`](TraceLog::with_capacity), but reserves
    /// the full ring up front so no `record` call regrows the buffer
    /// mid-run. Use when the expected entry volume is known from a
    /// replication hint (event horizon × record rate); plain
    /// `with_capacity` starts small and is the right default for logs
    /// that usually stay far below their bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn preallocated(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceLog capacity must be positive");
        TraceLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            sampled: 0,
            enabled: true,
            sampler: None,
        }
    }

    /// Disables recording (records become no-ops); useful for
    /// benchmark runs.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an entry, evicting the oldest when full. On a sampling
    /// log the entry first passes its category's keep decision;
    /// sampled-out entries count as dropped (surfaced by experiment
    /// summaries, like ring evictions).
    pub fn record(&mut self, time: SimTime, category: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if let Some(s) = &mut self.sampler {
            let seq = s.seq.entry(category).or_insert(0);
            let keep = keep_per_mille(s.seed, category, *seq, s.policy.rate_for(category));
            *seq += 1;
            if !keep {
                self.dropped += 1;
                TRACE_DROPPED.add(1);
                return;
            }
            self.sampled += 1;
            TRACE_SAMPLED.add(1);
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
            // Surfaced by experiment summaries: silently truncated
            // causal history invalidates trace-based assertions.
            TRACE_DROPPED.add(1);
        }
        self.entries.push_back(TraceEntry {
            time,
            category,
            message,
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Retained entries with the given category, oldest first.
    pub fn by_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// How many entries have been discarded — ring evictions plus, on
    /// a sampling log, entries the keep decision rejected.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// How many entries a sampling log has retained through its keep
    /// decision (0 on an unsampled log).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// True when this log samples its input stream.
    pub fn is_sampling(&self) -> bool {
        self.sampler.is_some()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Order-sensitive FNV-1a digest over every retained entry: two
    /// logs agree iff they recorded the same causal history in the
    /// same order. This is the regression anchor the golden-trace
    /// tests pin.
    pub fn digest(&self) -> u64 {
        let mut h = crate::fault::Fnv::new();
        for e in &self.entries {
            h.mix(&e.time.as_nanos().to_le_bytes());
            h.mix(e.category.as_bytes());
            h.mix(e.message.as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::with_capacity(10);
        log.record(t(1), "vmm", "boot".into());
        log.record(t(2), "vfs", "read".into());
        log.record(t(3), "vmm", "ready".into());
        assert_eq!(log.len(), 3);
        let vmm: Vec<_> = log.by_category("vmm").map(|e| e.message.as_str()).collect();
        assert_eq!(vmm, vec!["boot", "ready"]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..5 {
            log.record(t(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let msgs: Vec<_> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn preallocated_log_reserves_full_ring() {
        let log = TraceLog::preallocated(4096);
        assert!(log.entries.capacity() >= 4096, "no regrow mid-run");
        let mut log = log;
        for i in 0..5000 {
            log.record(t(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 4096);
        assert_eq!(log.dropped(), 904);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.set_enabled(false);
        log.record(t(1), "x", "ignored".into());
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn entry_display_is_informative() {
        let e = TraceEntry {
            time: t(2),
            category: "vmm",
            message: "vm-1 resumed".into(),
        };
        let s = e.to_string();
        assert!(s.contains("vmm"));
        assert!(s.contains("vm-1 resumed"));
    }

    #[test]
    fn digest_tracks_content_and_order() {
        let mut a = TraceLog::with_capacity(8);
        let mut b = TraceLog::with_capacity(8);
        for log in [&mut a, &mut b] {
            log.record(t(1), "vmm", "boot".into());
            log.record(t(2), "vfs", "read".into());
        }
        assert_eq!(a.digest(), b.digest());
        let mut c = TraceLog::with_capacity(8);
        c.record(t(2), "vfs", "read".into());
        c.record(t(1), "vmm", "boot".into());
        assert_ne!(a.digest(), c.digest(), "order matters");
        assert_eq!(
            TraceLog::default().digest(),
            TraceLog::with_capacity(1).digest(),
            "empty logs share the offset basis"
        );
    }

    #[test]
    fn sampling_is_seed_deterministic_and_stratified() {
        let run = |seed| {
            let policy = SamplePolicy::uniform(100).with_category("vo", 500);
            let mut log = TraceLog::with_sampling(4096, policy, seed);
            for i in 0..2000u64 {
                log.record(t(i), "vo", format!("s{i}"));
                log.record(t(i), "chatty", format!("c{i}"));
            }
            (log.digest(), log.sampled(), log.dropped(), log.len())
        };
        let a = run(42);
        assert_eq!(a, run(42), "pure function of the seed and stream");
        assert_ne!(a.0, run(43).0, "different seed keeps a different set");
        let (_, sampled, dropped, len) = a;
        assert_eq!(sampled + dropped, 4000, "every record accounted for");
        assert_eq!(len as u64, sampled, "nothing evicted below capacity");
        // "vo" keeps ~50%, "chatty" ~10%: total ~1200 of 4000.
        assert!((900..1500).contains(&sampled), "sampled {sampled}");
    }

    #[test]
    fn sampling_rates_zero_and_full() {
        let mut none = TraceLog::with_sampling(64, SamplePolicy::uniform(0), 1);
        let mut all = TraceLog::with_sampling(64, SamplePolicy::uniform(1000), 1);
        for i in 0..50u64 {
            none.record(t(i), "x", "m".into());
            all.record(t(i), "x", "m".into());
        }
        assert!(none.is_empty());
        assert_eq!(none.dropped(), 50);
        assert_eq!(all.len(), 50);
        assert_eq!(all.sampled(), 50);
        assert_eq!(all.dropped(), 0);
        assert!(all.is_sampling());
        assert!(!TraceLog::default().is_sampling());
        assert_eq!(TraceLog::default().sampled(), 0);
    }

    #[test]
    fn sampled_log_still_bounds_the_ring() {
        let mut log = TraceLog::with_sampling(8, SamplePolicy::uniform(1000), 1);
        for i in 0..20u64 {
            log.record(t(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 8, "ring bound still applies");
        assert_eq!(log.sampled(), 20);
        assert_eq!(log.dropped(), 12, "evictions counted");
    }

    #[test]
    fn policy_rates_resolve_per_category() {
        let p = SamplePolicy::uniform(50).with_category("vo", 1000);
        assert_eq!(p.rate_for("vo"), 1000);
        assert_eq!(p.rate_for("other"), 50);
        let clamped = SamplePolicy::uniform(5000).with_category("c", 9999);
        assert_eq!(clamped.rate_for("c"), 1000);
        assert_eq!(clamped.rate_for("d"), 1000);
    }

    #[test]
    fn clear_preserves_drop_count() {
        let mut log = TraceLog::with_capacity(1);
        log.record(t(0), "x", "a".into());
        log.record(t(1), "x", "b".into());
        assert_eq!(log.dropped(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
