//! Lightweight category-tagged trace recorder.
//!
//! Components record `(time, category, message)` triples; experiment
//! harnesses and tests filter by category to assert on causal
//! sequences (e.g. "the VM image blocks were fetched before the guest
//! booted"). The recorder is bounded so long simulations cannot
//! exhaust memory.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

use crate::metrics::Counter;

/// Entries discarded by bounded trace logs (hot when a log wraps).
static TRACE_DROPPED: Counter = Counter::new("trace.dropped");

/// A single trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// Component-chosen category tag (e.g. `"vmm"`, `"vfs"`).
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.category, self.message)
    }
}

/// A bounded in-memory trace log.
///
/// ```
/// use gridvm_simcore::trace::TraceLog;
/// use gridvm_simcore::time::SimTime;
///
/// let mut log = TraceLog::with_capacity(100);
/// log.record(SimTime::ZERO, "vmm", "vm-1 boot start".to_owned());
/// assert_eq!(log.entries().count(), 1);
/// assert_eq!(log.by_category("vmm").count(), 1);
/// assert_eq!(log.by_category("vfs").count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceLog {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(16_384)
    }
}

impl TraceLog {
    /// Creates a log that keeps at most `capacity` recent entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceLog capacity must be positive");
        TraceLog {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Like [`with_capacity`](TraceLog::with_capacity), but reserves
    /// the full ring up front so no `record` call regrows the buffer
    /// mid-run. Use when the expected entry volume is known from a
    /// replication hint (event horizon × record rate); plain
    /// `with_capacity` starts small and is the right default for logs
    /// that usually stay far below their bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn preallocated(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceLog capacity must be positive");
        TraceLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Disables recording (records become no-ops); useful for
    /// benchmark runs.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn record(&mut self, time: SimTime, category: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
            // Surfaced by experiment summaries: silently truncated
            // causal history invalidates trace-based assertions.
            TRACE_DROPPED.add(1);
        }
        self.entries.push_back(TraceEntry {
            time,
            category,
            message,
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Retained entries with the given category, oldest first.
    pub fn by_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// How many entries have been evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Order-sensitive FNV-1a digest over every retained entry: two
    /// logs agree iff they recorded the same causal history in the
    /// same order. This is the regression anchor the golden-trace
    /// tests pin.
    pub fn digest(&self) -> u64 {
        let mut h = crate::fault::Fnv::new();
        for e in &self.entries {
            h.mix(&e.time.as_nanos().to_le_bytes());
            h.mix(e.category.as_bytes());
            h.mix(e.message.as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::with_capacity(10);
        log.record(t(1), "vmm", "boot".into());
        log.record(t(2), "vfs", "read".into());
        log.record(t(3), "vmm", "ready".into());
        assert_eq!(log.len(), 3);
        let vmm: Vec<_> = log.by_category("vmm").map(|e| e.message.as_str()).collect();
        assert_eq!(vmm, vec!["boot", "ready"]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..5 {
            log.record(t(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let msgs: Vec<_> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn preallocated_log_reserves_full_ring() {
        let log = TraceLog::preallocated(4096);
        assert!(log.entries.capacity() >= 4096, "no regrow mid-run");
        let mut log = log;
        for i in 0..5000 {
            log.record(t(i), "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 4096);
        assert_eq!(log.dropped(), 904);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.set_enabled(false);
        log.record(t(1), "x", "ignored".into());
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn entry_display_is_informative() {
        let e = TraceEntry {
            time: t(2),
            category: "vmm",
            message: "vm-1 resumed".into(),
        };
        let s = e.to_string();
        assert!(s.contains("vmm"));
        assert!(s.contains("vm-1 resumed"));
    }

    #[test]
    fn digest_tracks_content_and_order() {
        let mut a = TraceLog::with_capacity(8);
        let mut b = TraceLog::with_capacity(8);
        for log in [&mut a, &mut b] {
            log.record(t(1), "vmm", "boot".into());
            log.record(t(2), "vfs", "read".into());
        }
        assert_eq!(a.digest(), b.digest());
        let mut c = TraceLog::with_capacity(8);
        c.record(t(2), "vfs", "read".into());
        c.record(t(1), "vmm", "boot".into());
        assert_ne!(a.digest(), c.digest(), "order matters");
        assert_eq!(
            TraceLog::default().digest(),
            TraceLog::with_capacity(1).digest(),
            "empty logs share the offset basis"
        );
    }

    #[test]
    fn clear_preserves_drop_count() {
        let mut log = TraceLog::with_capacity(1);
        log.record(t(0), "x", "a".into());
        log.record(t(1), "x", "b".into());
        assert_eq!(log.dropped(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
