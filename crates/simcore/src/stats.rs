//! Online statistics and summaries for experiment harnesses.
//!
//! The reproduction binaries report the same aggregates the paper
//! does: mean, standard deviation, minimum, maximum (Table 2) and mean
//! ± one standard deviation over 1000 samples (Figure 1). These are
//! accumulated with Welford's numerically stable one-pass algorithm.

use std::fmt;

/// One-pass mean/variance/min/max accumulator (Welford).
///
/// ```
/// use gridvm_simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// assert_eq!((s.min(), s.max()), (2.0, 9.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    // NOT derived: the derive would zero `min`/`max`, and a stats
    // accumulator reached through `Entry::or_default` would then
    // report a spurious 0.0 extremum.
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on a NaN observation — a NaN in an experiment result is
    /// always a bug upstream and must not be silently absorbed.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "OnlineStats::record: NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation (what the paper's tables report).
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty OnlineStats");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty OnlineStats");
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow
/// buckets, used for latency distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    stats: OnlineStats,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `buckets` is zero.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "Histogram: empty range");
        assert!(buckets > 0, "Histogram: zero buckets");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            stats: OnlineStats::new(),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.stats.record(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The bucket counts (excludes under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The running summary statistics of all observations.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Approximate quantile (inclusive linear scan over buckets;
    /// under/overflow counted at the extremes).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0,1]` or the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile: q={q}");
        let n = self.count();
        assert!(n > 0, "quantile of empty histogram");
        let target = (q * n as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + width * (i as f64 + 1.0);
            }
        }
        self.hi
    }
}

/// Formats a labelled series of [`OnlineStats`] as the
/// mean/std/min/max table rows the paper prints (Table 2 layout).
pub fn format_stats_table(rows: &[(&str, &OnlineStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>10} {:>10} {:>10} {:>10}\n",
        "scenario", "mean", "std", "min", "max"
    ));
    for (label, s) in rows {
        out.push_str(&format!(
            "{:<38} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            label,
            s.mean(),
            s.std_dev(),
            s.min(),
            s.max()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0, 0.25];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    #[should_panic(expected = "min of empty")]
    fn empty_min_panics() {
        let _ = OnlineStats::new().min();
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!((s.min(), s.max()), (42.0, 42.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), full.count());
        assert!((left.mean() - full.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - full.sample_variance()).abs() < 1e-8);
        assert_eq!(left.min(), full.min());
        assert_eq!(left.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 2); // 0.0 and 0.5
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        assert!(q25 <= q50 && q50 <= q99);
        assert!((q50 - 50.0).abs() <= 2.0, "median {q50}");
    }

    #[test]
    fn table_formatting_contains_rows() {
        let s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let txt = format_stats_table(&[("VM-restore / DiskFS", &s)]);
        assert!(txt.contains("VM-restore / DiskFS"));
        assert!(txt.contains("mean"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn merge_is_equivalent_to_concat(a in proptest::collection::vec(-1e6f64..1e6, 0..50),
                                         b in proptest::collection::vec(-1e6f64..1e6, 0..50)) {
            let mut merged: OnlineStats = a.iter().copied().collect();
            let rb: OnlineStats = b.iter().copied().collect();
            merged.merge(&rb);
            let joint: OnlineStats = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), joint.count());
            if !joint.is_empty() {
                prop_assert!((merged.mean() - joint.mean()).abs() < 1e-6);
                prop_assert!((merged.population_variance() - joint.population_variance()).abs() < 1e-3);
            }
        }

        #[test]
        fn variance_is_never_negative(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.population_variance() >= 0.0);
            prop_assert!(s.sample_variance() >= 0.0);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.max() >= s.mean() - 1e-9);
        }
    }
}
