//! Sharded conservative parallel simulation: per-site event queues
//! synchronized by a lookahead barrier protocol.
//!
//! The paper's target is a *grid* — many administrative sites, each
//! dynamically instantiating VMs, separated by wide-area links. That
//! topology is exactly what a conservative parallel discrete-event
//! simulation needs: cross-site interactions ride
//! [`NetLink`](https://docs.rs)-style links whose propagation latency
//! bounds how soon one site can affect another. The minimum inter-site
//! latency is the **lookahead**: if every cross-site message sent at
//! time `t` arrives no earlier than `t + lookahead`, then all sites
//! can execute independently up to `t_min + lookahead` (where `t_min`
//! is the global earliest pending event) without ever receiving a
//! message from the past.
//!
//! ## The window protocol
//!
//! A [`ShardedSim`] owns one [`SiteRuntime`] per site — its own
//! [`Engine`] (event queue), world state, [`TraceLog`] segment,
//! [`Metrics`] registry and (by caller convention) seeded RNG stream.
//! `run` repeats:
//!
//! 1. **Drain mailboxes** in fixed site-id order: every pending
//!    cross-site message is scheduled into its destination engine.
//!    A message timestamped before the previous window's horizon is a
//!    *lookahead violation* and panics — it could only exist if a
//!    caller sent "faster than light", i.e. below the declared
//!    minimum link latency.
//! 2. **Compute the horizon** `t_min + lookahead` from the global
//!    earliest pending event.
//! 3. **Execute the window**: each site runs every local event
//!    strictly before the horizon ([`Engine::run_before`]). Sites are
//!    grouped into `shards` by `site_id % shards`, and shards are
//!    claimed by worker threads off an atomic cursor.
//! 4. **Barrier**, then repeat until no events remain anywhere.
//!
//! ## Why results are bit-identical at any shard/thread count
//!
//! The protocol's unit is the **site**, not the shard: the drain
//! order (site id), the horizon (a global minimum) and each site's
//! intra-window execution (its engine's `(time, seq)` order over
//! purely local state) are all independent of how sites are packed
//! into shards or shards onto threads. Shards and threads only decide
//! *which OS thread* runs a site's window — never what the window
//! computes. Traces live per site and digest in site order; metrics
//! are harvested per site-window into per-site registries and merged
//! in site order; the caller's ambient metrics context is saved
//! before the run and restored (then folded) after. A 1-shard,
//! 1-thread run executes the identical windowed schedule, just
//! without worker threads.
//!
//! The cross-thread primitives this module uses (`Mutex`, `Barrier`,
//! atomics) are sanctioned *here only* — the `sync-primitive` audit
//! rule flags them anywhere else in sim-state code, because ad-hoc
//! cross-thread coordination is how scheduling order leaks into
//! results.
//!
//! ```
//! use gridvm_simcore::shard::{ShardWorld, ShardedSim, SiteId, SiteState};
//! use gridvm_simcore::engine::Engine;
//! use gridvm_simcore::time::{SimDuration, SimTime};
//!
//! struct Counter { received: u64 }
//! impl ShardWorld for Counter {
//!     type Msg = u64;
//!     fn deliver(msg: u64, site: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {
//!         site.world.received += msg;
//!     }
//! }
//!
//! let lookahead = SimDuration::from_millis(5);
//! let mut sim = ShardedSim::new(lookahead, (0..2).map(|_| Counter { received: 0 }));
//! sim.with_site(0, |_, en| {
//!     en.schedule_at(SimTime::ZERO, move |site: &mut SiteState<Counter>, en| {
//!         site.send(SiteId(1), en.now() + SimDuration::from_millis(5), 7);
//!     });
//! });
//! sim.run();
//! assert_eq!(sim.with_site(1, |site, _| site.world.received), 7);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::Engine;
use crate::metrics::{self, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

/// Identifies one site — the unit of the conservative protocol and
/// the owner of one event queue, trace segment and RNG stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(
    /// Zero-based site index.
    pub u32,
);

impl SiteId {
    /// The site index as a `usize`, for indexing site tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A per-site world that can run under a [`ShardedSim`].
///
/// `Send` because a site (engine, world, pending events) migrates
/// between the coordinator and worker threads at window boundaries;
/// the protocol guarantees exclusive access within a window.
pub trait ShardWorld: Send + Sized + 'static {
    /// Cross-site message payload, moved through the per-(src,dst)
    /// mailboxes.
    type Msg: Send + 'static;

    /// Applies one delivered message at its arrival instant. Runs as
    /// an ordinary event on the destination site's engine, so it may
    /// schedule follow-ups and send further messages.
    fn deliver(msg: Self::Msg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>);
}

/// The world type each site's [`Engine`] executes over: the caller's
/// per-site state plus the site's identity, trace segment and
/// outbound mailbox.
pub struct SiteState<W: ShardWorld> {
    id: SiteId,
    /// The caller's per-site world state.
    pub world: W,
    /// This site's trace segment. Digested in site-id order by
    /// [`ShardedSim::trace_digest`].
    pub trace: TraceLog,
    outbox: Vec<(SiteId, SimTime, W::Msg)>,
}

impl<W: ShardWorld> SiteState<W> {
    /// This site's identity.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Queues a cross-site message for delivery at the absolute
    /// instant `at`. The message is moved into the destination's
    /// engine at the next barrier; `at` must be at least one lookahead
    /// past the window it was sent in (guaranteed when `at` is
    /// `now + link_latency` and the lookahead is the minimum link
    /// latency) or the drain panics.
    ///
    /// # Panics
    ///
    /// Panics on a self-send: local follow-ups are ordinary scheduled
    /// events, not mailbox traffic, and are not subject to lookahead.
    pub fn send(&mut self, dst: SiteId, at: SimTime, msg: W::Msg) {
        assert!(
            dst != self.id,
            "{}: self-send through the mailbox; schedule a local event instead",
            self.id
        );
        self.outbox.push((dst, at, msg));
    }
}

/// One site's execution state: its engine, world, harvested metrics
/// and the event count of the window just executed.
struct SiteRuntime<W: ShardWorld> {
    en: Engine<SiteState<W>>,
    state: SiteState<W>,
    metrics: Metrics,
    window_events: u64,
}

/// A conservatively synchronized multi-site simulation.
///
/// Results — traces, metrics, digests — are bit-identical for every
/// shard and thread count; see the [module docs](self) for the
/// argument.
pub struct ShardedSim<W: ShardWorld> {
    sites: Vec<Mutex<SiteRuntime<W>>>,
    lookahead: SimDuration,
    shards: usize,
    threads: usize,
    windows: u64,
    messages: u64,
    total_events: u64,
    critical_events: u64,
    coord: Metrics,
    ran: bool,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Creates a sharded simulation over one world per site, with the
    /// given lookahead (the minimum cross-site link latency; see
    /// `SiteTopology::lookahead` in `gridvm-vnet`). Defaults to one
    /// shard and one thread — the same protocol, serially.
    ///
    /// # Panics
    ///
    /// Panics on a zero lookahead: the conservative synchronizer
    /// would have no safe-advance window.
    pub fn new(lookahead: SimDuration, worlds: impl IntoIterator<Item = W>) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "zero lookahead leaves the conservative synchronizer no safe-advance window"
        );
        let sites = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                Mutex::new(SiteRuntime {
                    en: Engine::new(),
                    state: SiteState {
                        id: SiteId(i as u32),
                        world,
                        trace: TraceLog::default(),
                        outbox: Vec::new(),
                    },
                    metrics: Metrics::new(),
                    window_events: 0,
                })
            })
            .collect();
        ShardedSim {
            sites,
            lookahead,
            shards: 1,
            threads: 1,
            windows: 0,
            messages: 0,
            total_events: 0,
            critical_events: 0,
            coord: Metrics::new(),
            ran: false,
        }
    }

    /// Sets the shard count: sites are grouped by `site_id % shards`
    /// for window execution and critical-path accounting. Does not
    /// affect results.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Sets the worker-thread count; `0` means one per available
    /// core. Clamped to the shard count at run time. Does not affect
    /// results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites.len()
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Runs `f` with exclusive access to one site's state and engine
    /// — how callers seed initial events before [`run`](Self::run)
    /// and inspect per-site results after it.
    pub fn with_site<R>(
        &mut self,
        site: usize,
        f: impl FnOnce(&mut SiteState<W>, &mut Engine<SiteState<W>>) -> R,
    ) -> R {
        let rt = self.sites[site].get_mut().expect("site lock poisoned");
        f(&mut rt.state, &mut rt.en)
    }

    /// Barrier windows executed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-site messages delivered through the mailboxes.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Events executed across all sites.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Sum over windows of the busiest shard's event count — the
    /// event-parallel critical path at the configured shard count.
    pub fn critical_path_events(&self) -> u64 {
        self.critical_events
    }

    /// The deterministic, machine-independent parallel-efficiency
    /// model: total events over critical-path events. This is the
    /// speedup an ideal `shards`-way execution of the recorded
    /// window schedule achieves when per-event cost dominates; wall
    /// clock on a given machine approaches it as cores allow.
    pub fn model_speedup(&self) -> f64 {
        if self.critical_events == 0 {
            return 1.0;
        }
        self.total_events as f64 / self.critical_events as f64
    }

    /// Trace entries currently retained across all sites — the
    /// observability memory bound the macro-scale soak tests assert:
    /// with sampled per-site logs (install via
    /// [`with_site`](Self::with_site), setting `site.trace` to a
    /// [`TraceLog::with_sampling`] log) this stays O(sites ×
    /// capacity) no matter how many events the run executes.
    pub fn retained_trace_entries(&mut self) -> usize {
        self.sites
            .iter_mut()
            .map(|s| s.get_mut().expect("site lock poisoned").state.trace.len())
            .sum()
    }

    /// Sum of `trace.sampled` over all sites' logs (0 when no site
    /// samples).
    pub fn sampled_trace_entries(&mut self) -> u64 {
        self.sites
            .iter_mut()
            .map(|s| {
                s.get_mut()
                    .expect("site lock poisoned")
                    .state
                    .trace
                    .sampled()
            })
            .sum()
    }

    /// FNV-1a digest over every site's trace digest, in site-id order
    /// — the sharded golden-trace anchor.
    pub fn trace_digest(&mut self) -> u64 {
        let mut h = crate::fault::Fnv::new();
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            h.mix(&u64::from(rt.state.id.0).to_le_bytes());
            h.mix(&rt.state.trace.digest().to_le_bytes());
        }
        h.finish()
    }

    /// Coordinator metrics (`shard.windows`, `shard.messages`, drain
    /// scheduling) merged with every site's registry in site-id
    /// order.
    pub fn merged_metrics(&mut self) -> Metrics {
        let mut m = self.coord.clone();
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            m.merge(&rt.metrics);
        }
        m
    }

    /// Runs the windowed protocol to completion: until no site has a
    /// pending event and every mailbox is empty.
    ///
    /// The caller's thread-local [`metrics`] context is saved before
    /// the run and restored afterwards with the run's coordinator and
    /// per-site registries folded in (site-id order) — so a sharded
    /// run composes with [`crate::replication::ReplicationRunner`]
    /// harvesting like any other simulation.
    ///
    /// # Panics
    ///
    /// Panics on a second call (a sharded world runs to completion
    /// exactly once) and on lookahead violations — a cross-site
    /// message timestamped inside an already-executed window.
    pub fn run(&mut self) {
        assert!(!self.ran, "ShardedSim::run is single-shot");
        self.ran = true;
        if self.sites.is_empty() {
            return;
        }
        let ambient = metrics::take();
        let shards = self.shards.min(self.sites.len());
        let threads = self.threads.min(shards);
        if threads <= 1 {
            self.run_loop_serial(shards);
        } else {
            self.run_loop_parallel(shards, threads);
        }
        self.coord.counter_add("shard.windows", self.windows);
        self.coord.counter_add("shard.messages", self.messages);
        metrics::merge_current(&ambient);
        metrics::merge_current(&self.coord);
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            metrics::merge_current(&rt.metrics);
        }
    }

    /// The protocol on the caller's thread: identical window schedule,
    /// no worker threads to pay for.
    fn run_loop_serial(&mut self, shards: usize) {
        let mut safe = SimTime::ZERO;
        loop {
            self.messages += drain_segment(&mut self.coord, &self.sites, safe);
            let Some(t_min) = earliest(&self.sites) else {
                break;
            };
            let horizon = t_min + self.lookahead;
            let mut per_shard = vec![0u64; shards];
            for (i, site) in self.sites.iter().enumerate() {
                let mut rt = site.lock().expect("site lock poisoned");
                per_shard[i % shards] += run_site_window(&mut rt, horizon);
            }
            self.account(&per_shard);
            safe = horizon;
        }
    }

    /// The protocol with a persistent worker pool: the coordinator
    /// drains mailboxes and computes horizons; workers claim shards
    /// off an atomic cursor each window. Which thread runs a site
    /// never affects what the site computes.
    fn run_loop_parallel(&mut self, shards: usize, threads: usize) {
        let lookahead = self.lookahead;
        let sites = &self.sites;
        let horizon_nanos = AtomicU64::new(0);
        let running = AtomicBool::new(true);
        let cursor = AtomicUsize::new(0);
        let barrier = Barrier::new(threads + 1);
        let mut windows = 0u64;
        let mut messages = 0u64;
        let mut coord = Metrics::new();
        let mut per_window = Vec::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                // audit:allow(shard-state-escape): scoped worker borrows the epoch barrier; threads join at scope end before any result is read
                scope.spawn(|| loop {
                    barrier.wait();
                    if !running.load(Ordering::Acquire) {
                        break;
                    }
                    let horizon = SimTime::from_nanos(horizon_nanos.load(Ordering::Acquire));
                    loop {
                        let shard = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        let mut i = shard;
                        while i < sites.len() {
                            let mut rt = sites[i].lock().expect("site lock poisoned");
                            rt.window_events = run_site_window(&mut rt, horizon);
                            i += shards;
                        }
                    }
                    barrier.wait();
                });
            }
            let mut safe = SimTime::ZERO;
            loop {
                messages += drain_segment(&mut coord, sites, safe);
                let Some(t_min) = earliest(sites) else {
                    break;
                };
                let horizon = t_min + lookahead;
                horizon_nanos.store(horizon.as_nanos(), Ordering::Release);
                cursor.store(0, Ordering::Relaxed);
                barrier.wait(); // open the window
                barrier.wait(); // every site has executed
                let mut per_shard = vec![0u64; shards];
                for (i, site) in sites.iter().enumerate() {
                    let mut rt = site.lock().expect("site lock poisoned");
                    per_shard[i % shards] += rt.window_events;
                    rt.window_events = 0;
                }
                per_window.push(per_shard);
                windows += 1;
                safe = horizon;
            }
            running.store(false, Ordering::Release);
            barrier.wait(); // release workers into the exit check
        });
        self.windows += windows;
        self.messages += messages;
        self.coord.merge(&coord);
        for per_shard in &per_window {
            self.account_counts(per_shard);
        }
    }

    fn account(&mut self, per_shard: &[u64]) {
        self.windows += 1;
        self.account_counts(per_shard);
    }

    fn account_counts(&mut self, per_shard: &[u64]) {
        self.total_events += per_shard.iter().sum::<u64>();
        self.critical_events += per_shard.iter().max().copied().unwrap_or(0);
    }
}

impl<W: ShardWorld> fmt::Debug for ShardedSim<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSim")
            .field("sites", &self.sites.len())
            .field("lookahead", &self.lookahead)
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .field("windows", &self.windows)
            .finish()
    }
}

/// Moves every queued cross-site message into its destination engine,
/// in (source site, send order) order — the fixed merge order the
/// determinism contract relies on. Returns how many were delivered.
///
/// The coordinator's metrics activity (message-event scheduling) is
/// captured into `coord` so the window executions' per-site contexts
/// never mix with it.
fn drain_segment<W: ShardWorld>(
    coord: &mut Metrics,
    sites: &[Mutex<SiteRuntime<W>>],
    safe: SimTime,
) -> u64 {
    metrics::reset_presized();
    let mut delivered = 0u64;
    for src in 0..sites.len() {
        let outbox = {
            let mut rt = sites[src].lock().expect("site lock poisoned");
            std::mem::take(&mut rt.state.outbox)
        };
        for (dst, at, msg) in outbox {
            assert!(
                at >= safe,
                "lookahead violation: site{src} sent a message for {at}, inside the \
                 already-executed window ending at {safe}; cross-site sends must be at \
                 least one lookahead (the minimum link latency) in the future"
            );
            let mut rt = sites[dst.index()].lock().expect("site lock poisoned");
            rt.en
                .schedule_at(at, move |state: &mut SiteState<W>, en: &mut Engine<_>| {
                    W::deliver(msg, state, en);
                });
            delivered += 1;
        }
    }
    coord.merge(&metrics::take());
    delivered
}

/// Global earliest pending event time across all sites.
fn earliest<W: ShardWorld>(sites: &[Mutex<SiteRuntime<W>>]) -> Option<SimTime> {
    let mut min: Option<SimTime> = None;
    for site in sites {
        let rt = site.lock().expect("site lock poisoned");
        if let Some(t) = rt.en.next_event_time() {
            min = Some(min.map_or(t, |m| m.min(t)));
        }
    }
    min
}

/// Executes one site's share of a window — every local event strictly
/// before `horizon` — against a fresh thread-local metrics context,
/// harvested into the site's own registry. Returns how many events
/// ran.
fn run_site_window<W: ShardWorld>(rt: &mut SiteRuntime<W>, horizon: SimTime) -> u64 {
    if rt.en.next_event_time().is_none_or(|t| t >= horizon) {
        return 0;
    }
    metrics::reset_presized();
    let ran = rt.en.run_before(&mut rt.state, horizon);
    let harvested = metrics::take();
    rt.metrics.merge(&harvested);
    ran
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::derive_seed_sharded;
    use crate::rng::SimRng;

    const LAT: SimDuration = SimDuration::from_millis(5);

    struct PingWorld {
        rng: SimRng,
        peers: u32,
        received: u64,
    }

    impl ShardWorld for PingWorld {
        type Msg = u64;
        fn deliver(msg: u64, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
            site.world.received += 1;
            metrics::counter_add("ping.received", 1);
            site.trace
                .record(en.now(), "ping", format!("got token {msg}"));
        }
    }

    fn tick(left: u64, site: &mut SiteState<PingWorld>, en: &mut Engine<SiteState<PingWorld>>) {
        metrics::counter_add("ping.ticks", 1);
        let jitter = site.world.rng.next_below(400);
        if left.is_multiple_of(3) {
            let dst = SiteId((site.id().0 + 1) % site.world.peers);
            site.send(dst, en.now() + LAT, left);
        }
        if left > 0 {
            en.schedule_arg_in(SimDuration::from_micros(800 + jitter), left - 1, tick);
        } else {
            site.trace
                .record(en.now(), "ping", format!("{} drained", site.id()));
        }
    }

    fn build(n: u32, ticks: u64) -> ShardedSim<PingWorld> {
        let mut sim = ShardedSim::new(
            LAT,
            (0..n).map(|i| PingWorld {
                rng: SimRng::seed_from(derive_seed_sharded(0xabad_5eed, 0, u64::from(i))),
                peers: n,
                received: 0,
            }),
        );
        for i in 0..n as usize {
            sim.with_site(i, |site, en| {
                let offset = SimDuration::from_micros(100 + 37 * u64::from(site.id().0));
                en.schedule_event_at(
                    SimTime::ZERO + offset,
                    crate::engine::Event::Arg(ticks, tick),
                );
            });
        }
        sim
    }

    fn fingerprint(mut sim: ShardedSim<PingWorld>) -> (u64, u64, u64, u64, Metrics) {
        metrics::reset();
        sim.run();
        metrics::reset();
        (
            sim.trace_digest(),
            sim.windows(),
            sim.messages(),
            sim.total_events(),
            sim.merged_metrics(),
        )
    }

    #[test]
    fn results_are_invariant_across_shard_and_thread_counts() {
        let want = fingerprint(build(5, 40));
        assert!(want.1 > 1, "protocol actually windowed: {} windows", want.1);
        assert!(want.2 > 0, "messages flowed");
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let got = fingerprint(build(5, 40).shards(shards).threads(threads));
                assert_eq!(got.0, want.0, "digest at shards={shards} threads={threads}");
                assert_eq!(got.1, want.1, "windows at shards={shards}");
                assert_eq!(got.2, want.2, "messages at shards={shards}");
                assert_eq!(got.3, want.3, "events at shards={shards}");
                assert_eq!(
                    got.4, want.4,
                    "metrics at shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn messages_arrive_and_are_counted() {
        let mut sim = build(3, 30);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("ping.received"), sim.messages());
        assert_eq!(m.counter("shard.windows"), sim.windows());
        let received: u64 = (0..3)
            .map(|i| sim.with_site(i, |s, _| s.world.received))
            .sum();
        assert_eq!(received, sim.messages());
        // 30 ticks → sends at every third countdown value (11 per
        // site), delivered exactly once each.
        assert_eq!(sim.messages(), 3 * 11);
    }

    #[test]
    fn run_folds_metrics_into_the_callers_context() {
        metrics::reset();
        metrics::counter_add("ambient.before", 2);
        let mut sim = build(2, 10);
        sim.run();
        let m = metrics::take();
        assert_eq!(m.counter("ambient.before"), 2, "ambient context survives");
        assert_eq!(m.counter("shard.windows"), sim.windows());
        assert!(m.counter("ping.ticks") >= 2 * 10);
        assert!(
            m.counter("sim.events_executed") >= m.counter("ping.ticks"),
            "engine accounting rides along"
        );
    }

    #[test]
    fn critical_path_accounting_models_shard_parallelism() {
        let mut serial = build(4, 30);
        metrics::reset();
        serial.run();
        metrics::reset();
        assert_eq!(
            serial.critical_path_events(),
            serial.total_events(),
            "one shard is its own critical path"
        );
        assert!((serial.model_speedup() - 1.0).abs() < 1e-12);

        let mut sharded = build(4, 30).shards(4);
        metrics::reset();
        sharded.run();
        metrics::reset();
        assert_eq!(sharded.total_events(), serial.total_events());
        assert!(
            sharded.model_speedup() > 2.0,
            "4 near-symmetric sites across 4 shards: got {:.2}",
            sharded.model_speedup()
        );
        assert!(sharded.model_speedup() <= 4.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn sends_below_the_lookahead_panic() {
        struct Hasty;
        impl ShardWorld for Hasty {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Hasty, Hasty]);
        sim.with_site(0, |_, en| {
            // Two windows of local work so the second send's timestamp
            // lands inside an already-executed window.
            en.schedule_at(SimTime::ZERO, |site: &mut SiteState<Hasty>, en| {
                site.send(SiteId(1), en.now(), ());
                en.schedule_in(LAT + LAT, |site: &mut SiteState<Hasty>, en| {
                    site.send(SiteId(1), en.now() - LAT, ());
                });
            });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_sends_panic() {
        struct Selfish;
        impl ShardWorld for Selfish {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Selfish]);
        sim.with_site(0, |_, en| {
            en.schedule_at(SimTime::ZERO, |site: &mut SiteState<Selfish>, en| {
                site.send(SiteId(0), en.now() + LAT, ());
            });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "safe-advance window")]
    fn zero_lookahead_is_rejected() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let _ = ShardedSim::new(SimDuration::ZERO, [Idle]);
    }

    #[test]
    #[should_panic(expected = "single-shot")]
    fn running_twice_panics() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Idle]);
        sim.run();
        sim.run();
    }

    #[test]
    fn empty_and_idle_worlds_terminate() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut none: ShardedSim<Idle> = ShardedSim::new(LAT, []);
        none.run();
        assert_eq!(none.windows(), 0);
        let mut quiet = ShardedSim::new(LAT, [Idle, Idle]).shards(2).threads(2);
        quiet.run();
        assert_eq!(quiet.windows(), 0);
        assert_eq!(quiet.total_events(), 0);
    }
}
