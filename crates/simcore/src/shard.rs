//! Sharded conservative parallel simulation: per-site event queues
//! synchronized by a lookahead barrier protocol.
//!
//! The paper's target is a *grid* — many administrative sites, each
//! dynamically instantiating VMs, separated by wide-area links. That
//! topology is exactly what a conservative parallel discrete-event
//! simulation needs: cross-site interactions ride
//! [`NetLink`](https://docs.rs)-style links whose propagation latency
//! bounds how soon one site can affect another. If every cross-site
//! message sent at time `t` arrives no earlier than `t + latency`,
//! then each site can execute independently up to the earliest instant
//! any *other* site's pending work could reach it — its **horizon** —
//! without ever receiving a message from the past.
//!
//! ## The window protocol
//!
//! A [`ShardedSim`] owns one [`SiteRuntime`] per site — its own
//! [`Engine`] (event queue), world state, [`TraceLog`] segment,
//! [`Metrics`] registry and (by caller convention) seeded RNG stream.
//! `run` repeats:
//!
//! 1. **Drain mailboxes** in fixed site-id order: every pending
//!    cross-site message is scheduled into its destination engine.
//!    Outboxes are kept per destination, so the drain swaps each
//!    non-empty (src,dst) batch out under the source's lock and then
//!    locks each destination once per batch — not once per message —
//!    recycling buffer capacity through a double-buffer swap so
//!    steady-state traffic allocates nothing. A message timestamped
//!    before its destination's already-executed horizon is a
//!    *lookahead violation* and panics — it could only exist if a
//!    caller sent "faster than light", i.e. below the declared
//!    minimum link latency.
//! 2. **Compute horizons.** Under the default *global* lookahead, all
//!    sites share `t_min + lookahead` (`t_min` the global earliest
//!    pending event; `lookahead` the minimum link latency anywhere).
//!    With a [`LookaheadMatrix`] installed
//!    ([`ShardedSim::per_pair_lookahead`]), each site gets its own
//!    horizon `min over active sources s of (t_s + lookahead(s→i))` —
//!    on topologies mixing metro and WAN latencies, per-site horizons
//!    are far wider than the global minimum, cutting barrier windows
//!    by multiples.
//! 3. **Execute the window**: each site runs every local event
//!    strictly before its horizon ([`Engine::run_before`]). Under
//!    per-pair lookahead a site additionally self-limits against its
//!    *own* sends: execution proceeds in chunks never more than the
//!    site's minimum round trip past its next event, and each queued
//!    outgoing message caps the window at `arrival +
//!    lookahead(dst→site)` — the earliest instant that send could
//!    echo back. A site that sends nothing runs all the way to its
//!    cross-source horizon in one window. Sites are grouped into
//!    `shards` by `site_id % shards`, and shards are claimed by
//!    worker threads off an atomic cursor.
//! 4. **Barrier**, then repeat until no events remain anywhere.
//!
//! ## Why results are bit-identical at any shard/thread count
//!
//! The protocol's unit is the **site**, not the shard: the drain
//! order (ascending source site id; per-destination batches preserve
//! each destination's arrival order), the horizons (computed by the
//! coordinator from per-site event times and the topology alone) and
//! each site's intra-window execution (its engine's `(time, seq)`
//! order over purely local state) are all independent of how sites
//! are packed into shards or shards onto threads. Shards and threads
//! only decide *which OS thread* runs a site's window — never what
//! the window computes. Traces live per site and digest in site
//! order; metrics are harvested per site-window into per-site
//! slot-indexed accumulators (plain array adds; names materialize
//! once per run) and merged in site order; the caller's ambient
//! metrics context is saved before the run and restored (then
//! folded) after. A 1-shard, 1-thread run executes the identical
//! windowed schedule, just without worker threads.
//!
//! ## Allocation-free delivery
//!
//! Delivery schedules each message through the engine's 32-byte
//! inline event machinery when the world's
//! [`encode_msg`](ShardWorld::encode_msg) packs it into two machine
//! words ([`Event::Arg2`](crate::engine::Event)); only messages that
//! decline encoding fall back to a boxed closure, counted by
//! `sim.events_boxed`. Together with the double-buffered outboxes
//! (reallocations counted by `shard.outbox_regrown`), steady-state
//! mailbox traffic makes zero allocator calls.
//!
//! The cross-thread primitives this module uses (`Mutex`, `Barrier`,
//! atomics) are sanctioned *here only* — the `sync-primitive` audit
//! rule flags them anywhere else in sim-state code, because ad-hoc
//! cross-thread coordination is how scheduling order leaks into
//! results.
//!
//! ```
//! use gridvm_simcore::shard::{ShardWorld, ShardedSim, SiteId, SiteState};
//! use gridvm_simcore::engine::Engine;
//! use gridvm_simcore::time::{SimDuration, SimTime};
//!
//! struct Counter { received: u64 }
//! impl ShardWorld for Counter {
//!     type Msg = u64;
//!     fn deliver(msg: u64, site: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {
//!         site.world.received += msg;
//!     }
//!     // Pack the payload into the inline event words: delivery
//!     // never touches the allocator.
//!     fn encode_msg(msg: u64) -> Result<[u64; 2], u64> { Ok([msg, 0]) }
//!     fn decode_msg(words: [u64; 2]) -> u64 { words[0] }
//! }
//!
//! let lookahead = SimDuration::from_millis(5);
//! let mut sim = ShardedSim::new(lookahead, (0..2).map(|_| Counter { received: 0 }));
//! sim.with_site(0, |_, en| {
//!     en.schedule_at(SimTime::ZERO, move |site: &mut SiteState<Counter>, en| {
//!         site.send(SiteId(1), en.now() + SimDuration::from_millis(5), 7);
//!     });
//! });
//! sim.run();
//! assert_eq!(sim.with_site(1, |site, _| site.world.received), 7);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::Engine;
use crate::lookahead::LookaheadMatrix;
use crate::metrics::{self, Counter, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

/// Outbox buffers that regrew after their first allocation — a
/// non-zero count means the pre-size hint
/// ([`ShardedSim::outbox_capacity`]) is below the real per-window
/// batch size and steady-state sends are hitting the allocator.
static OUTBOX_REGROWN: Counter = Counter::new("shard.outbox_regrown");

/// Default per-(src,dst) outbox capacity reserved on first use when
/// the caller installs no hint.
const DEFAULT_OUTBOX_HINT: usize = 8;

/// Identifies one site — the unit of the conservative protocol and
/// the owner of one event queue, trace segment and RNG stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(
    /// Zero-based site index.
    pub u32,
);

impl SiteId {
    /// The site index as a `usize`, for indexing site tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A per-site world that can run under a [`ShardedSim`].
///
/// `Send` because a site (engine, world, pending events) migrates
/// between the coordinator and worker threads at window boundaries;
/// the protocol guarantees exclusive access within a window.
pub trait ShardWorld: Send + Sized + 'static {
    /// Cross-site message payload, moved through the per-(src,dst)
    /// mailboxes.
    type Msg: Send + 'static;

    /// Applies one delivered message at its arrival instant. Runs as
    /// an ordinary event on the destination site's engine, so it may
    /// schedule follow-ups and send further messages.
    fn deliver(msg: Self::Msg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>);

    /// Packs a message into two inline event words so the mailbox
    /// drain can deliver it allocation-free through
    /// [`Event::Arg2`](crate::engine::Event); return `Err(msg)` to
    /// decline (the default), falling back to a boxed closure counted
    /// by `sim.events_boxed`. Implementations must round-trip:
    /// `decode_msg(encode_msg(m)?) == m`.
    fn encode_msg(msg: Self::Msg) -> Result<[u64; 2], Self::Msg> {
        Err(msg)
    }

    /// Reverses [`encode_msg`](Self::encode_msg). Only called with
    /// words that `encode_msg` returned `Ok`; the default is
    /// unreachable because the default `encode_msg` never does.
    fn decode_msg(words: [u64; 2]) -> Self::Msg {
        let _ = words;
        unreachable!("decode_msg called on a world whose encode_msg never returns Ok")
    }

    /// Called once per site when the run completes, before the site's
    /// metrics are folded into the caller's context. Worlds that tally
    /// per-event statistics can keep them in plain fields — one
    /// integer add per event — and publish them here through
    /// [`Counter`](crate::metrics::Counter) handles, instead of paying
    /// a thread-local counter add on every event. The default
    /// publishes nothing.
    fn flush_metrics(&mut self) {}
}

/// The delivery trampoline for inline-encoded messages: a plain `fn`
/// item, so it fits [`Event::Arg2`](crate::engine::Event) as a
/// function pointer with the encoded words as its argument.
fn deliver_inline<W: ShardWorld>(
    words: [u64; 2],
    state: &mut SiteState<W>,
    en: &mut Engine<SiteState<W>>,
) {
    W::deliver(W::decode_msg(words), state, en);
}

/// The world type each site's [`Engine`] executes over: the caller's
/// per-site state plus the site's identity, trace segment and
/// outbound mailboxes.
pub struct SiteState<W: ShardWorld> {
    id: SiteId,
    /// The caller's per-site world state.
    pub world: W,
    /// This site's trace segment. Digested in site-id order by
    /// [`ShardedSim::trace_digest`].
    pub trace: TraceLog,
    /// One outbox per destination site, so the drain can move a whole
    /// (src,dst) batch under one destination lock. Capacity is
    /// recycled across windows by the drain's double-buffer swap.
    outboxes: Vec<Vec<(SimTime, W::Msg)>>,
    /// Destinations with a non-empty outbox, in first-touch order.
    dirty: Vec<u32>,
    /// Capacity reserved on an outbox's first allocation.
    outbox_hint: usize,
    /// Per-pair mode only: `echo_row[d]` is the return lookahead
    /// `la(d → self)` in nanoseconds, so a send's earliest possible
    /// echo is `arrival + echo_row[dst]`. Empty under global
    /// lookahead.
    echo_row: Vec<u64>,
    /// Minimum echo bound over the messages queued this window;
    /// `u64::MAX` when the outbox is clean (reset at every drain).
    echo_min: u64,
}

impl<W: ShardWorld> SiteState<W> {
    /// This site's identity.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Queues a cross-site message for delivery at the absolute
    /// instant `at`. The message is moved into the destination's
    /// engine at the next barrier; `at` must be at least one link
    /// latency past the window it was sent in (guaranteed when `at`
    /// is `now + link_latency`, since the synchronizer's per-pair —
    /// or global minimum — lookahead never exceeds any link latency)
    /// or the drain panics.
    ///
    /// # Panics
    ///
    /// Panics on a self-send: local follow-ups are ordinary scheduled
    /// events, not mailbox traffic, and are not subject to lookahead.
    pub fn send(&mut self, dst: SiteId, at: SimTime, msg: W::Msg) {
        assert!(
            dst != self.id,
            "{}: self-send through the mailbox; schedule a local event instead",
            self.id
        );
        let q = &mut self.outboxes[dst.index()];
        if q.is_empty() {
            self.dirty.push(dst.0);
        }
        if q.capacity() == 0 {
            q.reserve(self.outbox_hint.max(1));
        } else if q.len() == q.capacity() {
            OUTBOX_REGROWN.add(1);
        }
        q.push((at, msg));
        if !self.echo_row.is_empty() {
            let echo = at.as_nanos().saturating_add(self.echo_row[dst.index()]);
            self.echo_min = self.echo_min.min(echo);
        }
    }
}

/// One site's execution state: its engine, world, harvested metrics,
/// the horizon the coordinator set for the current window and the
/// event count of the window just executed.
struct SiteRuntime<W: ShardWorld> {
    en: Engine<SiteState<W>>,
    state: SiteState<W>,
    metrics: Metrics,
    /// Slot-indexed fast-counter accumulator: per-window harvests add
    /// cells here ([`harvest_site`]); names materialize once per run
    /// via [`metrics::fold_cells`].
    fast: Vec<u64>,
    /// On entry to a window: the coordinator's cross-source horizon in
    /// nanoseconds (`u64::MAX` = nothing active can reach the site).
    /// On exit: the bound the site actually guaranteed — lowered when
    /// its own sends' echo bounds stopped it early — which becomes the
    /// next drain's violation threshold.
    horizon: u64,
    /// Per-pair mode only: the site's minimum round trip in
    /// nanoseconds, chunking how far execution may outrun the next
    /// pending event before re-checking for new sends.
    rt_self: u64,
    window_events: u64,
}

/// A conservatively synchronized multi-site simulation.
///
/// Results — traces, metrics, digests — are bit-identical for every
/// shard and thread count; see the [module docs](self) for the
/// argument.
pub struct ShardedSim<W: ShardWorld> {
    sites: Vec<Mutex<SiteRuntime<W>>>,
    lookahead: SimDuration,
    matrix: Option<LookaheadMatrix>,
    shards: usize,
    threads: usize,
    windows: u64,
    messages: u64,
    total_events: u64,
    critical_events: u64,
    coord: Metrics,
    ran: bool,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Creates a sharded simulation over one world per site, with the
    /// given lookahead (the minimum cross-site link latency; see
    /// `SiteTopology::lookahead` in `gridvm-vnet`). Defaults to one
    /// shard and one thread — the same protocol, serially — and to
    /// the single global lookahead; install a topology's full
    /// per-pair matrix with
    /// [`per_pair_lookahead`](Self::per_pair_lookahead).
    ///
    /// # Panics
    ///
    /// Panics on a zero lookahead: the conservative synchronizer
    /// would have no safe-advance window.
    pub fn new(lookahead: SimDuration, worlds: impl IntoIterator<Item = W>) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "zero lookahead leaves the conservative synchronizer no safe-advance window"
        );
        let worlds: Vec<W> = worlds.into_iter().collect();
        let n = worlds.len();
        let sites = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                Mutex::new(SiteRuntime {
                    en: Engine::new(),
                    state: SiteState {
                        id: SiteId(i as u32),
                        world,
                        trace: TraceLog::default(),
                        outboxes: (0..n).map(|_| Vec::new()).collect(),
                        dirty: Vec::new(),
                        outbox_hint: DEFAULT_OUTBOX_HINT,
                        echo_row: Vec::new(),
                        echo_min: u64::MAX,
                    },
                    metrics: Metrics::new(),
                    fast: Vec::new(),
                    horizon: 0,
                    rt_self: u64::MAX,
                    window_events: 0,
                })
            })
            .collect();
        ShardedSim {
            sites,
            lookahead,
            matrix: None,
            shards: 1,
            threads: 1,
            windows: 0,
            messages: 0,
            total_events: 0,
            critical_events: 0,
            coord: Metrics::new(),
            ran: false,
        }
    }

    /// Installs a per-(src,dst) lookahead matrix (see
    /// [`LookaheadMatrix`] and `SiteTopology::lookahead_matrix` in
    /// `gridvm-vnet`): the window protocol computes one horizon per
    /// site from the matrix instead of a single global
    /// `t_min + lookahead`, and each site additionally self-limits
    /// against its own sends' echo bounds (see the [module
    /// docs](self)). Horizons stay a pure function of per-site event
    /// times, the site's own sends and the topology, so results
    /// remain bit-identical at any shard/thread count; window
    /// *counts* differ from the global protocol (that is the point),
    /// but the executed event schedule — and therefore traces,
    /// digests and world-level metrics — does not.
    ///
    /// # Panics
    ///
    /// Panics when the matrix does not cover exactly this sim's
    /// sites.
    pub fn per_pair_lookahead(mut self, matrix: LookaheadMatrix) -> Self {
        assert_eq!(
            matrix.sites(),
            self.sites.len(),
            "lookahead matrix covers a different site count than the sim"
        );
        let n = self.sites.len();
        for (i, site) in self.sites.iter_mut().enumerate() {
            let rt = site.get_mut().expect("site lock poisoned");
            rt.rt_self = matrix.round_trip_nanos(i);
            rt.state.echo_row = (0..n).map(|d| matrix.lookahead_nanos(d, i)).collect();
        }
        self.matrix = Some(matrix);
        self
    }

    /// Sets the capacity reserved on each (src,dst) outbox's first
    /// allocation — the replication-level hint that keeps
    /// `shard.outbox_regrown` at zero. Reservation is lazy (on first
    /// send to that destination), so quiet pairs cost nothing.
    pub fn outbox_capacity(mut self, hint: usize) -> Self {
        for site in &mut self.sites {
            site.get_mut()
                .expect("site lock poisoned")
                .state
                .outbox_hint = hint;
        }
        self
    }

    /// Sets the shard count: sites are grouped by `site_id % shards`
    /// for window execution and critical-path accounting. Does not
    /// affect results.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Sets the worker-thread count; `0` means one per available
    /// core. Clamped to the shard count at run time. Does not affect
    /// results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites.len()
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Runs `f` with exclusive access to one site's state and engine
    /// — how callers seed initial events before [`run`](Self::run)
    /// and inspect per-site results after it.
    pub fn with_site<R>(
        &mut self,
        site: usize,
        f: impl FnOnce(&mut SiteState<W>, &mut Engine<SiteState<W>>) -> R,
    ) -> R {
        let rt = self.sites[site].get_mut().expect("site lock poisoned");
        f(&mut rt.state, &mut rt.en)
    }

    /// Barrier windows executed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-site messages delivered through the mailboxes.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Events executed across all sites.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Sum over windows of the busiest shard's event count — the
    /// event-parallel critical path at the configured shard count.
    pub fn critical_path_events(&self) -> u64 {
        self.critical_events
    }

    /// The deterministic, machine-independent parallel-efficiency
    /// model: total events over critical-path events. This is the
    /// speedup an ideal `shards`-way execution of the recorded
    /// window schedule achieves when per-event cost dominates; wall
    /// clock on a given machine approaches it as cores allow.
    pub fn model_speedup(&self) -> f64 {
        if self.critical_events == 0 {
            return 1.0;
        }
        self.total_events as f64 / self.critical_events as f64
    }

    /// Trace entries currently retained across all sites — the
    /// observability memory bound the macro-scale soak tests assert:
    /// with sampled per-site logs (install via
    /// [`with_site`](Self::with_site), setting `site.trace` to a
    /// [`TraceLog::with_sampling`] log) this stays O(sites ×
    /// capacity) no matter how many events the run executes.
    pub fn retained_trace_entries(&mut self) -> usize {
        self.sites
            .iter_mut()
            .map(|s| s.get_mut().expect("site lock poisoned").state.trace.len())
            .sum()
    }

    /// Sum of `trace.sampled` over all sites' logs (0 when no site
    /// samples).
    pub fn sampled_trace_entries(&mut self) -> u64 {
        self.sites
            .iter_mut()
            .map(|s| {
                s.get_mut()
                    .expect("site lock poisoned")
                    .state
                    .trace
                    .sampled()
            })
            .sum()
    }

    /// FNV-1a digest over every site's trace digest, in site-id order
    /// — the sharded golden-trace anchor.
    pub fn trace_digest(&mut self) -> u64 {
        let mut h = crate::fault::Fnv::new();
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            h.mix(&u64::from(rt.state.id.0).to_le_bytes());
            h.mix(&rt.state.trace.digest().to_le_bytes());
        }
        h.finish()
    }

    /// Coordinator metrics (`shard.windows`, `shard.messages`, drain
    /// scheduling) merged with every site's registry in site-id
    /// order.
    pub fn merged_metrics(&mut self) -> Metrics {
        let mut m = self.coord.clone();
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            m.merge(&rt.metrics);
        }
        m
    }

    /// Runs the windowed protocol to completion: until no site has a
    /// pending event and every mailbox is empty.
    ///
    /// The caller's thread-local [`metrics`] context is saved before
    /// the run and restored afterwards with the run's coordinator and
    /// per-site registries folded in (site-id order) — so a sharded
    /// run composes with [`crate::replication::ReplicationRunner`]
    /// harvesting like any other simulation.
    ///
    /// # Panics
    ///
    /// Panics on a second call (a sharded world runs to completion
    /// exactly once) and on lookahead violations — a cross-site
    /// message timestamped inside an already-executed window.
    pub fn run(&mut self) {
        assert!(!self.ran, "ShardedSim::run is single-shot");
        self.ran = true;
        if self.sites.is_empty() {
            return;
        }
        let ambient = metrics::take();
        let shards = self.shards.min(self.sites.len());
        let threads = self.threads.min(shards);
        if threads <= 1 {
            self.run_loop_serial(shards);
        } else {
            self.run_loop_parallel(shards, threads);
        }
        self.coord.counter_add("shard.windows", self.windows);
        self.coord.counter_add("shard.messages", self.messages);
        // Materialize the zero-allocation counters even when nothing
        // incremented them: a steady-state run *proves* its fast path
        // by showing these at 0 rather than omitting them.
        self.coord.counter_add("sim.events_boxed", 0);
        self.coord.counter_add("shard.outbox_regrown", 0);
        metrics::merge_current(&ambient);
        metrics::merge_current(&self.coord);
        for site in &mut self.sites {
            let rt = site.get_mut().expect("site lock poisoned");
            // The world publishes its plain-field tallies into this
            // thread's cells; claiming them before the fold keeps the
            // attribution per-site.
            rt.state.world.flush_metrics();
            metrics::drain_fast_cells(&mut rt.fast);
            metrics::fold_cells(&mut rt.fast, &mut rt.metrics);
            metrics::merge_current(&rt.metrics);
        }
    }

    /// The protocol on the caller's thread: identical window schedule,
    /// no worker threads to pay for — and no lock traffic either,
    /// since exclusive ownership lets every site access go through
    /// `Mutex::get_mut`.
    fn run_loop_serial(&mut self, shards: usize) {
        let n = self.sites.len();
        let mut buf = CoordBuffers::new(n);
        let mut per_shard = vec![0u64; shards];
        loop {
            self.messages += drain_segment_mut(&mut self.coord, &mut self.sites, &mut buf);
            if !gather_times_mut(&mut self.sites, &mut buf.times) {
                break;
            }
            compute_horizons(self.matrix.as_ref(), self.lookahead.as_nanos(), &mut buf);
            per_shard.iter_mut().for_each(|c| *c = 0);
            for (i, site) in self.sites.iter_mut().enumerate() {
                let rt = site.get_mut().expect("site lock poisoned");
                rt.horizon = buf.horizons[i];
                per_shard[i % shards] += run_site_window(rt);
                // The achieved bound (possibly echo-lowered) becomes
                // the next drain's violation threshold; max keeps it
                // monotone if a later horizon computes lower.
                buf.safe[i] = buf.safe[i].max(rt.horizon);
            }
            self.account(&per_shard);
        }
    }

    /// The protocol with a persistent worker pool: the coordinator
    /// drains mailboxes and computes horizons; workers claim shards
    /// off an atomic cursor each window. Which thread runs a site
    /// never affects what the site computes.
    fn run_loop_parallel(&mut self, shards: usize, threads: usize) {
        let lookahead_ns = self.lookahead.as_nanos();
        let matrix = self.matrix.as_ref();
        let sites = &self.sites;
        let running = AtomicBool::new(true);
        let cursor = AtomicUsize::new(0);
        let barrier = Barrier::new(threads + 1);
        let mut windows = 0u64;
        let mut messages = 0u64;
        let mut total = 0u64;
        let mut critical = 0u64;
        let mut coord = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                // audit:allow(shard-state-escape): scoped worker borrows the epoch barrier; threads join at scope end before any result is read
                scope.spawn(|| loop {
                    barrier.wait();
                    if !running.load(Ordering::Acquire) {
                        break;
                    }
                    loop {
                        let shard = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        let mut i = shard;
                        while i < sites.len() {
                            let mut rt = sites[i].lock().expect("site lock poisoned");
                            rt.window_events = run_site_window(&mut rt);
                            i += shards;
                        }
                    }
                    barrier.wait();
                });
            }
            let mut buf = CoordBuffers::new(sites.len());
            let mut per_shard = vec![0u64; shards];
            loop {
                messages += drain_segment(&mut coord, sites, &mut buf);
                if !gather_times(sites, &mut buf.times) {
                    break;
                }
                compute_horizons(matrix, lookahead_ns, &mut buf);
                for (i, site) in sites.iter().enumerate() {
                    site.lock().expect("site lock poisoned").horizon = buf.horizons[i];
                }
                cursor.store(0, Ordering::Relaxed);
                barrier.wait(); // open the window
                barrier.wait(); // every site has executed
                per_shard.iter_mut().for_each(|c| *c = 0);
                for (i, site) in sites.iter().enumerate() {
                    let mut rt = site.lock().expect("site lock poisoned");
                    per_shard[i % shards] += rt.window_events;
                    rt.window_events = 0;
                    buf.safe[i] = buf.safe[i].max(rt.horizon);
                }
                total += per_shard.iter().sum::<u64>();
                critical += per_shard.iter().max().copied().unwrap_or(0);
                windows += 1;
            }
            running.store(false, Ordering::Release);
            barrier.wait(); // release workers into the exit check
        });
        self.windows += windows;
        self.messages += messages;
        self.total_events += total;
        self.critical_events += critical;
        self.coord.merge(&coord);
    }

    fn account(&mut self, per_shard: &[u64]) {
        self.windows += 1;
        self.total_events += per_shard.iter().sum::<u64>();
        self.critical_events += per_shard.iter().max().copied().unwrap_or(0);
    }
}

impl<W: ShardWorld> fmt::Debug for ShardedSim<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSim")
            .field("sites", &self.sites.len())
            .field("lookahead", &self.lookahead)
            .field("per_pair", &self.matrix.is_some())
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .field("windows", &self.windows)
            .finish()
    }
}

/// The coordinator's reusable per-window working set: per-site event
/// times, horizons, the already-executed bounds (`safe`), and the
/// drain's double-buffer scratch. Allocated once per run; every
/// window reuses the capacity.
struct CoordBuffers<M> {
    /// Earliest pending event per site, nanos; `u64::MAX` when idle.
    times: Vec<u64>,
    /// This window's per-site exclusive bound.
    horizons: Vec<u64>,
    /// The running maximum of each site's achieved bounds — site `i`
    /// is guaranteed to have executed everything strictly before
    /// `safe[i]`, so a message arriving earlier is a lookahead
    /// violation.
    safe: Vec<u64>,
    /// Per-destination swap buffers for the drain; capacity circulates
    /// between these and the sites' outboxes.
    scratch: Vec<Vec<M>>,
    /// Swap buffer for a source's dirty-destination list.
    dirty: Vec<u32>,
}

impl<M> CoordBuffers<M> {
    fn new(n: usize) -> Self {
        CoordBuffers {
            times: vec![u64::MAX; n],
            horizons: vec![0; n],
            safe: vec![0; n],
            scratch: (0..n).map(|_| Vec::new()).collect(),
            dirty: Vec::new(),
        }
    }
}

/// Swaps one source's dirty-destination list and its non-empty
/// outboxes out into the coordinator's scratch buffers — the emptied
/// scratch vecs go back in, so buffer capacity circulates instead of
/// being reallocated every window — and re-arms the echo bound.
fn take_outboxes<W: ShardWorld>(
    rt: &mut SiteRuntime<W>,
    buf: &mut CoordBuffers<(SimTime, W::Msg)>,
) {
    std::mem::swap(&mut rt.state.dirty, &mut buf.dirty);
    for &d in &buf.dirty {
        std::mem::swap(
            &mut rt.state.outboxes[d as usize],
            &mut buf.scratch[d as usize],
        );
    }
    // The outbox is clean again, so no queued send bounds the
    // next window's echo check.
    rt.state.echo_min = u64::MAX;
}

/// Schedules one (src,dst) batch into the destination engine, checking
/// each message against the destination's already-executed bound.
/// Returns the batch size.
fn deliver_batch<W: ShardWorld>(
    src: usize,
    rt: &mut SiteRuntime<W>,
    batch: &mut Vec<(SimTime, W::Msg)>,
    safe: u64,
) -> u64 {
    let delivered = batch.len() as u64;
    for (at, msg) in batch.drain(..) {
        assert!(
            at.as_nanos() >= safe,
            "lookahead violation: site{src} sent a message for {at}, inside the \
             already-executed window ending at {}; cross-site sends must be at \
             least one lookahead (the minimum link latency) in the future",
            SimTime::from_nanos(safe)
        );
        match W::encode_msg(msg) {
            Ok(words) => {
                rt.en.schedule_arg2_at(at, words, deliver_inline::<W>);
            }
            Err(msg) => {
                rt.en
                    .schedule_at(at, move |state: &mut SiteState<W>, en: &mut Engine<_>| {
                        W::deliver(msg, state, en);
                    });
            }
        }
    }
    delivered
}

/// Moves every queued cross-site message into its destination engine,
/// in (source site, destination batch) order — ascending source, and
/// within one source each destination's batch in send order, which
/// preserves every *per-destination* arrival order and with it the
/// determinism contract. Each batch locks its destination exactly
/// once. Returns how many messages were delivered.
///
/// The coordinator's metrics activity (message-event scheduling) is
/// harvested into `coord` so the window executions' per-site
/// registries never mix with it.
fn drain_segment<W: ShardWorld>(
    coord: &mut Metrics,
    sites: &[Mutex<SiteRuntime<W>>],
    buf: &mut CoordBuffers<(SimTime, W::Msg)>,
) -> u64 {
    let mut delivered = 0u64;
    for src in 0..sites.len() {
        {
            let mut rt = sites[src].lock().expect("site lock poisoned");
            if rt.state.dirty.is_empty() {
                continue;
            }
            take_outboxes(&mut rt, buf);
        }
        let CoordBuffers {
            dirty,
            scratch,
            safe,
            ..
        } = buf;
        for &d in dirty.iter() {
            let dst = d as usize;
            let mut rt = sites[dst].lock().expect("site lock poisoned");
            delivered += deliver_batch(src, &mut rt, &mut scratch[dst], safe[dst]);
        }
        buf.dirty.clear();
    }
    if delivered > 0 {
        // Message scheduling ran against the (empty) ambient context;
        // fold it into the coordinator's registry so window executions'
        // per-site harvests never mix with it.
        metrics::harvest_into(coord);
    }
    delivered
}

/// [`drain_segment`] for the serial loop: exclusive ownership of the
/// sites means every access is a `get_mut`, not a lock.
fn drain_segment_mut<W: ShardWorld>(
    coord: &mut Metrics,
    sites: &mut [Mutex<SiteRuntime<W>>],
    buf: &mut CoordBuffers<(SimTime, W::Msg)>,
) -> u64 {
    let mut delivered = 0u64;
    for src in 0..sites.len() {
        {
            let rt = sites[src].get_mut().expect("site lock poisoned");
            if rt.state.dirty.is_empty() {
                continue;
            }
            take_outboxes(rt, buf);
        }
        let CoordBuffers {
            dirty,
            scratch,
            safe,
            ..
        } = buf;
        for &d in dirty.iter() {
            let dst = d as usize;
            let rt = sites[dst].get_mut().expect("site lock poisoned");
            delivered += deliver_batch(src, rt, &mut scratch[dst], safe[dst]);
        }
        buf.dirty.clear();
    }
    if delivered > 0 {
        metrics::harvest_into(coord);
    }
    delivered
}

/// Records each site's earliest pending event time into `times`
/// (`u64::MAX` when idle); returns whether any site has work.
fn gather_times<W: ShardWorld>(sites: &[Mutex<SiteRuntime<W>>], times: &mut [u64]) -> bool {
    let mut any = false;
    for (i, site) in sites.iter().enumerate() {
        let mut rt = site.lock().expect("site lock poisoned");
        times[i] = match rt.en.peek_next_time() {
            Some(t) => {
                any = true;
                t.as_nanos()
            }
            None => u64::MAX,
        };
    }
    any
}

/// [`gather_times`] for the serial loop: a lock-free `get_mut` peek
/// at each site's event queue.
fn gather_times_mut<W: ShardWorld>(sites: &mut [Mutex<SiteRuntime<W>>], times: &mut [u64]) -> bool {
    let mut any = false;
    for (i, site) in sites.iter_mut().enumerate() {
        let rt = site.get_mut().expect("site lock poisoned");
        times[i] = match rt.en.peek_next_time() {
            Some(t) => {
                any = true;
                t.as_nanos()
            }
            None => u64::MAX,
        };
    }
    any
}

/// Computes this window's per-site horizons from the gathered event
/// times — a pure function of `times` and the topology, which is what
/// keeps the schedule independent of shard/thread packing.
///
/// Without a matrix every site shares the classic global bound
/// `t_min + lookahead`. With one, site `i`'s horizon is the earliest
/// instant any *other* site's pending work could reach it:
/// `min over active s != i of (t_s + la(s,i))` — `u64::MAX` when no
/// active source can ever reach the site. Constraints arising from
/// the site's *own* sends are enforced during execution
/// ([`run_site_window`]'s echo chunking), where the actual sends are
/// known, rather than assumed worst-case here.
fn compute_horizons<M>(
    matrix: Option<&LookaheadMatrix>,
    lookahead_ns: u64,
    buf: &mut CoordBuffers<M>,
) {
    match matrix {
        None => {
            let t_min = buf.times.iter().copied().min().unwrap_or(u64::MAX);
            buf.horizons.fill(t_min.saturating_add(lookahead_ns));
        }
        Some(m) => {
            for (i, h_out) in buf.horizons.iter_mut().enumerate() {
                let mut h = u64::MAX;
                for (s, &t_s) in buf.times.iter().enumerate() {
                    if t_s == u64::MAX || s == i {
                        continue;
                    }
                    h = h.min(t_s.saturating_add(m.lookahead_nanos(s, i)));
                }
                *h_out = h;
            }
        }
    }
}

/// Executes one site's share of a window against a fresh thread-local
/// metrics context, harvested into the site's own registry. Returns
/// how many events ran.
///
/// Under global lookahead this is a single [`Engine::run_before`] to
/// the coordinator's horizon. Under per-pair lookahead the site
/// self-limits against its own sends: execution proceeds in chunks of
/// at most the site's minimum round trip past its next event (a send
/// can occur at any executed event, and its echo can return no sooner
/// than one round trip later), and after each chunk the queued sends'
/// actual echo bounds — `arrival + la(dst → site)`, tracked by
/// [`SiteState::send`] as `echo_min` — cap the rest of the window. On
/// exit `rt.horizon` is lowered to the bound actually guaranteed, so
/// the next drain's violation check stays exact.
fn run_site_window<W: ShardWorld>(rt: &mut SiteRuntime<W>) -> u64 {
    let h_cross = rt.horizon;
    let Some(next) = rt.en.peek_next_time() else {
        return 0;
    };
    if rt.state.echo_row.is_empty() {
        // Global lookahead: one shared horizon, no echo tracking.
        if next.as_nanos() >= h_cross {
            return 0;
        }
        let ran = if h_cross == u64::MAX {
            let before = rt.en.executed();
            rt.en.run(&mut rt.state);
            rt.en.executed() - before
        } else {
            rt.en
                .run_before(&mut rt.state, SimTime::from_nanos(h_cross))
        };
        harvest_site(rt);
        return ran;
    }
    if next.as_nanos() >= h_cross {
        return 0;
    }
    let rt_self = rt.rt_self;
    let mut ran = 0u64;
    let achieved = loop {
        // Queued sends lower the bound to their earliest possible
        // echo; the outbox was drained at the window boundary, so
        // only this window's own sends contribute.
        let bound = h_cross.min(rt.state.echo_min);
        let Some(next) = rt.en.peek_next_time() else {
            break bound;
        };
        let next_ns = next.as_nanos();
        if next_ns >= bound {
            break bound;
        }
        let chunk = bound.min(next_ns.saturating_add(rt_self));
        if chunk == u64::MAX {
            // Unreachable from every side — no message can ever
            // arrive or echo back; run to completion.
            let before = rt.en.executed();
            rt.en.run(&mut rt.state);
            ran += rt.en.executed() - before;
            break u64::MAX;
        }
        ran += rt.en.run_before(&mut rt.state, SimTime::from_nanos(chunk));
    };
    rt.horizon = achieved;
    harvest_site(rt);
    ran
}

/// Claims the executing thread's metric activity for `rt`'s site.
/// Fast-counter cells drain into the site's slot-indexed accumulator
/// — a plain array add per window, with name resolution deferred to
/// one [`metrics::fold_cells`] at the end of [`ShardedSim::run`] —
/// and any slow-path spillover (string-keyed counters, timers) folds
/// into the site's registry directly.
#[inline]
fn harvest_site<W: ShardWorld>(rt: &mut SiteRuntime<W>) {
    metrics::drain_fast_cells(&mut rt.fast);
    metrics::spill_context_into(&mut rt.metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::derive_seed_sharded;
    use crate::rng::SimRng;

    const LAT: SimDuration = SimDuration::from_millis(5);

    struct PingWorld {
        rng: SimRng,
        peers: u32,
        received: u64,
    }

    impl ShardWorld for PingWorld {
        type Msg = u64;
        fn deliver(msg: u64, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
            site.world.received += 1;
            metrics::counter_add("ping.received", 1);
            site.trace
                .record(en.now(), "ping", format!("got token {msg}"));
        }
        fn encode_msg(msg: u64) -> Result<[u64; 2], u64> {
            Ok([msg, 0])
        }
        fn decode_msg(words: [u64; 2]) -> u64 {
            words[0]
        }
    }

    fn tick(left: u64, site: &mut SiteState<PingWorld>, en: &mut Engine<SiteState<PingWorld>>) {
        metrics::counter_add("ping.ticks", 1);
        let jitter = site.world.rng.next_below(400);
        if left.is_multiple_of(3) {
            let dst = SiteId((site.id().0 + 1) % site.world.peers);
            site.send(dst, en.now() + LAT, left);
        }
        if left > 0 {
            en.schedule_arg_in(SimDuration::from_micros(800 + jitter), left - 1, tick);
        } else {
            site.trace
                .record(en.now(), "ping", format!("{} drained", site.id()));
        }
    }

    fn build(n: u32, ticks: u64) -> ShardedSim<PingWorld> {
        let mut sim = ShardedSim::new(
            LAT,
            (0..n).map(|i| PingWorld {
                rng: SimRng::seed_from(derive_seed_sharded(0xabad_5eed, 0, u64::from(i))),
                peers: n,
                received: 0,
            }),
        );
        for i in 0..n as usize {
            sim.with_site(i, |site, en| {
                let offset = SimDuration::from_micros(100 + 37 * u64::from(site.id().0));
                en.schedule_event_at(
                    SimTime::ZERO + offset,
                    crate::engine::Event::Arg(ticks, tick),
                );
            });
        }
        sim
    }

    /// A uniform all-pairs matrix at the global lookahead: per-pair
    /// protocol, identical horizons — for exercising the per-pair code
    /// path against worlds built on a single latency.
    fn uniform_matrix(n: usize) -> LookaheadMatrix {
        LookaheadMatrix::shortest_paths(n, |_, _| Some(LAT))
    }

    fn fingerprint(mut sim: ShardedSim<PingWorld>) -> (u64, u64, u64, u64, Metrics) {
        metrics::reset();
        sim.run();
        metrics::reset();
        (
            sim.trace_digest(),
            sim.windows(),
            sim.messages(),
            sim.total_events(),
            sim.merged_metrics(),
        )
    }

    #[test]
    fn results_are_invariant_across_shard_and_thread_counts() {
        let want = fingerprint(build(5, 40));
        assert!(want.1 > 1, "protocol actually windowed: {} windows", want.1);
        assert!(want.2 > 0, "messages flowed");
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let got = fingerprint(build(5, 40).shards(shards).threads(threads));
                assert_eq!(got.0, want.0, "digest at shards={shards} threads={threads}");
                assert_eq!(got.1, want.1, "windows at shards={shards}");
                assert_eq!(got.2, want.2, "messages at shards={shards}");
                assert_eq!(got.3, want.3, "events at shards={shards}");
                assert_eq!(
                    got.4, want.4,
                    "metrics at shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn per_pair_protocol_is_invariant_and_matches_global_results() {
        let want = fingerprint(build(5, 40));
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let got = fingerprint(
                    build(5, 40)
                        .per_pair_lookahead(uniform_matrix(5))
                        .shards(shards)
                        .threads(threads),
                );
                // A uniform matrix at the global latency widens
                // horizons only through echo chunking; digests,
                // messages and events must match the global protocol
                // exactly.
                assert_eq!(got.0, want.0, "digest at shards={shards} threads={threads}");
                assert_eq!(got.2, want.2, "messages at shards={shards}");
                assert_eq!(got.3, want.3, "events at shards={shards}");
            }
        }
    }

    #[test]
    fn inline_encoding_keeps_delivery_allocation_free() {
        let mut sim = build(4, 30);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert!(m.counter("shard.messages") > 0, "messages flowed");
        assert_eq!(
            m.counter("sim.events_boxed"),
            0,
            "every mailbox delivery took the inline Arg2 path"
        );
        assert_eq!(
            m.counter("shard.outbox_regrown"),
            0,
            "outbox double-buffers never regrew"
        );
    }

    #[test]
    fn undersized_outboxes_count_their_regrowth() {
        // A 1-slot hint under a world whose sites send several
        // messages per window forces regrowth, and the counter says
        // so — deterministically, since buffer circulation is part of
        // the coordinator's fixed drain order.
        struct Chatty;
        impl ShardWorld for Chatty {
            type Msg = u64;
            fn deliver(_: u64, _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
            fn encode_msg(msg: u64) -> Result<[u64; 2], u64> {
                Ok([msg, 0])
            }
            fn decode_msg(words: [u64; 2]) -> u64 {
                words[0]
            }
        }
        let mut sim = ShardedSim::new(LAT, [Chatty, Chatty]).outbox_capacity(1);
        sim.with_site(0, |_, en| {
            en.schedule_fn_at(SimTime::ZERO, |site: &mut SiteState<Chatty>, en| {
                for k in 0..8 {
                    site.send(SiteId(1), en.now() + LAT, k);
                }
            });
        });
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("shard.messages"), 8);
        assert!(
            m.counter("shard.outbox_regrown") > 0,
            "a 1-slot hint must regrow under an 8-message burst"
        );
    }

    #[test]
    fn unencodable_messages_fall_back_to_boxed_delivery() {
        struct BigMsg;
        impl ShardWorld for BigMsg {
            type Msg = Vec<u64>;
            fn deliver(msg: Vec<u64>, site: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {
                site.trace.record(
                    SimTime::ZERO,
                    "big",
                    format!("sum {}", msg.iter().sum::<u64>()),
                );
            }
        }
        let mut sim = ShardedSim::new(LAT, [BigMsg, BigMsg]);
        sim.with_site(0, |_, en| {
            en.schedule_fn_at(SimTime::ZERO, |site: &mut SiteState<BigMsg>, en| {
                site.send(SiteId(1), en.now() + LAT, vec![1, 2, 3]);
            });
        });
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("shard.messages"), 1);
        assert_eq!(
            m.counter("sim.events_boxed"),
            1,
            "the default encode_msg declines, so delivery boxes"
        );
    }

    #[test]
    fn messages_arrive_and_are_counted() {
        let mut sim = build(3, 30);
        metrics::reset();
        sim.run();
        metrics::reset();
        let m = sim.merged_metrics();
        assert_eq!(m.counter("ping.received"), sim.messages());
        assert_eq!(m.counter("shard.windows"), sim.windows());
        let received: u64 = (0..3)
            .map(|i| sim.with_site(i, |s, _| s.world.received))
            .sum();
        assert_eq!(received, sim.messages());
        // 30 ticks → sends at every third countdown value (11 per
        // site), delivered exactly once each.
        assert_eq!(sim.messages(), 3 * 11);
    }

    #[test]
    fn run_folds_metrics_into_the_callers_context() {
        metrics::reset();
        metrics::counter_add("ambient.before", 2);
        let mut sim = build(2, 10);
        sim.run();
        let m = metrics::take();
        assert_eq!(m.counter("ambient.before"), 2, "ambient context survives");
        assert_eq!(m.counter("shard.windows"), sim.windows());
        assert!(m.counter("ping.ticks") >= 2 * 10);
        assert!(
            m.counter("sim.events_executed") >= m.counter("ping.ticks"),
            "engine accounting rides along"
        );
    }

    #[test]
    fn critical_path_accounting_models_shard_parallelism() {
        let mut serial = build(4, 30);
        metrics::reset();
        serial.run();
        metrics::reset();
        assert_eq!(
            serial.critical_path_events(),
            serial.total_events(),
            "one shard is its own critical path"
        );
        assert!((serial.model_speedup() - 1.0).abs() < 1e-12);

        let mut sharded = build(4, 30).shards(4);
        metrics::reset();
        sharded.run();
        metrics::reset();
        assert_eq!(sharded.total_events(), serial.total_events());
        assert!(
            sharded.model_speedup() > 2.0,
            "4 near-symmetric sites across 4 shards: got {:.2}",
            sharded.model_speedup()
        );
        assert!(sharded.model_speedup() <= 4.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn sends_below_the_lookahead_panic() {
        struct Hasty;
        impl ShardWorld for Hasty {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Hasty, Hasty]);
        sim.with_site(0, |_, en| {
            // Two windows of local work so the second send's timestamp
            // lands inside an already-executed window.
            en.schedule_at(SimTime::ZERO, |site: &mut SiteState<Hasty>, en| {
                site.send(SiteId(1), en.now(), ());
                en.schedule_in(LAT + LAT, |site: &mut SiteState<Hasty>, en| {
                    site.send(SiteId(1), en.now() - LAT, ());
                });
            });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_sends_panic() {
        struct Selfish;
        impl ShardWorld for Selfish {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Selfish]);
        sim.with_site(0, |_, en| {
            en.schedule_at(SimTime::ZERO, |site: &mut SiteState<Selfish>, en| {
                site.send(SiteId(0), en.now() + LAT, ());
            });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "safe-advance window")]
    fn zero_lookahead_is_rejected() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let _ = ShardedSim::new(SimDuration::ZERO, [Idle]);
    }

    #[test]
    #[should_panic(expected = "different site count")]
    fn mismatched_matrix_is_rejected() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let _ = ShardedSim::new(LAT, [Idle, Idle]).per_pair_lookahead(uniform_matrix(3));
    }

    #[test]
    #[should_panic(expected = "single-shot")]
    fn running_twice_panics() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut sim = ShardedSim::new(LAT, [Idle]);
        sim.run();
        sim.run();
    }

    #[test]
    fn empty_and_idle_worlds_terminate() {
        struct Idle;
        impl ShardWorld for Idle {
            type Msg = ();
            fn deliver(_: (), _: &mut SiteState<Self>, _: &mut Engine<SiteState<Self>>) {}
        }
        let mut none: ShardedSim<Idle> = ShardedSim::new(LAT, []);
        none.run();
        assert_eq!(none.windows(), 0);
        let mut quiet = ShardedSim::new(LAT, [Idle, Idle]).shards(2).threads(2);
        quiet.run();
        assert_eq!(quiet.windows(), 0);
        assert_eq!(quiet.total_events(), 0);
    }

    #[test]
    fn echo_chunked_windows_cut_barriers_without_changing_results() {
        // Two metro pairs (5ms) joined by 40ms WAN links. Each
        // delivery runs a 20-event local burst (1ms apart) and the
        // final burst event sends the next hop. The global protocol
        // chops every burst into 5ms windows (the minimum latency
        // anywhere); per-pair, a bursting site's only constraints are
        // the distant pair (t + 40ms) and its own send's echo — so a
        // whole burst fits in one window and the barrier count drops
        // by the burst-to-lookahead ratio.
        struct Burster;
        fn burst(
            args: [u64; 2],
            site: &mut SiteState<Burster>,
            en: &mut Engine<SiteState<Burster>>,
        ) {
            let [hops_left, burst_left] = args;
            site.trace
                .record(en.now(), "burst", format!("{hops_left}/{burst_left}"));
            if burst_left > 0 {
                en.schedule_arg2_in(
                    SimDuration::from_millis(1),
                    [hops_left, burst_left - 1],
                    burst,
                );
            } else if hops_left > 0 {
                let peer = SiteId(site.id().0 ^ 1);
                site.send(peer, en.now() + SimDuration::from_millis(5), hops_left - 1);
            }
        }
        impl ShardWorld for Burster {
            type Msg = u64;
            fn deliver(msg: u64, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
                burst([msg, 19], site, en);
            }
            fn encode_msg(msg: u64) -> Result<[u64; 2], u64> {
                Ok([msg, 0])
            }
            fn decode_msg(words: [u64; 2]) -> u64 {
                words[0]
            }
        }
        let direct = |a: SiteId, b: SiteId| {
            let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
            match (lo, hi) {
                (0, 1) | (2, 3) => Some(SimDuration::from_millis(5)),
                _ => Some(SimDuration::from_millis(40)),
            }
        };
        let build = |matrix: Option<LookaheadMatrix>| {
            let mut sim = ShardedSim::new(SimDuration::from_millis(5), (0..4).map(|_| Burster));
            if let Some(m) = matrix {
                sim = sim.per_pair_lookahead(m);
            }
            for src in [0usize, 2] {
                sim.with_site(src, |_, en| {
                    en.schedule_arg2_in(SimDuration::ZERO, [12, 19], burst);
                });
            }
            metrics::reset();
            sim.run();
            metrics::reset();
            sim
        };
        let mut global = build(None);
        let mut paired = build(Some(LookaheadMatrix::shortest_paths(4, direct)));
        assert_eq!(
            paired.trace_digest(),
            global.trace_digest(),
            "same schedule"
        );
        assert_eq!(paired.messages(), global.messages());
        assert_eq!(paired.total_events(), global.total_events());
        assert!(
            paired.windows() * 3 <= global.windows(),
            "echo-chunked per-pair windows must cut barriers at least 3x here: {} vs {}",
            paired.windows(),
            global.windows()
        );
    }
}
