//! The discrete-event executor.
//!
//! An [`Engine<W>`] advances a virtual clock by repeatedly popping the
//! earliest pending event and invoking its closure with exclusive
//! access to both the caller's world state `W` and the engine itself
//! (so handlers can schedule follow-up events). Determinism follows
//! from the queue's `(time, sequence)` total order and from all
//! randomness flowing through [`crate::rng::SimRng`].

use crate::event::{EventId, EventQueue};
use crate::metrics::Counter;
use crate::time::{SimDuration, SimTime};

/// Events executed across all engine run loops (pre-resolved handle:
/// the increment happens once per run call, but runs themselves can be
/// hot — e.g. the host scheduler's micro-simulations).
static EVENTS_EXECUTED: Counter = Counter::new("sim.events_executed");

/// An event handler: runs at its scheduled instant with the world and
/// the engine.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A discrete-event simulation executor over a world type `W`.
///
/// See the [crate-level example](crate) for typical use.
pub struct Engine<W> {
    clock: SimTime,
    queue: EventQueue<EventFn<W>>,
    executed: u64,
    horizon: Option<SimTime>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            horizon: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock: the past is
    /// immutable in a discrete-event simulation, so this is always a
    /// caller bug.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        assert!(
            at >= self.clock,
            "schedule_at: {at} is before current time {}",
            self.clock
        );
        self.queue.push(at, Box::new(f))
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.queue.push(self.clock + delay, Box::new(f))
    }

    /// Schedules `f` to run at the current instant, after all events
    /// already scheduled for this instant.
    pub fn schedule_now<F>(&mut self, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.queue.push(self.clock, Box::new(f))
    }

    /// Cancels a pending event. Returns `true` if it had not yet run.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Executes a single event, if any remains (and none lies beyond
    /// the horizon set by [`run_until`](Engine::run_until)). Returns
    /// `true` if an event ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        let next = match self.queue.peek_time() {
            Some(t) => t,
            None => return false,
        };
        if let Some(h) = self.horizon {
            if next > h {
                return false;
            }
        }
        let (time, _, f) = self.queue.pop().expect("peeked event vanished");
        debug_assert!(time >= self.clock, "event queue produced the past");
        self.clock = time;
        self.executed += 1;
        // Periodic self-audit: every dev-profile run continuously
        // sweeps the queue invariants without O(n) work per event.
        #[cfg(any(debug_assertions, feature = "audit"))]
        if self
            .executed
            .is_multiple_of(crate::audit::AUTO_AUDIT_INTERVAL)
        {
            if let Err(v) = self.audit() {
                panic!(
                    "engine self-audit failed after {} events: {v}",
                    self.executed
                );
            }
        }
        f(world, self);
        true
    }

    /// Re-verifies the engine's invariants (runtime audit layer; see
    /// [`crate::audit`]): the event queue's structural checks plus
    /// causality — no pending event may be earlier than the clock,
    /// since the past is immutable in a discrete-event simulation.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        self.queue.audit()?;
        if let Some(next) = self.queue.peek_time() {
            if next < self.clock {
                return Err(crate::audit::AuditViolation {
                    invariant: "causality",
                    detail: format!("pending event at {next} is before the clock {}", self.clock),
                });
            }
        }
        Ok(())
    }

    /// Runs until no events remain.
    pub fn run(&mut self, world: &mut W) {
        self.horizon = None;
        let before = self.executed;
        while self.step(world) {}
        EVENTS_EXECUTED.add(self.executed - before);
    }

    /// Runs until the queue is empty or the next event lies strictly
    /// after `deadline`; then sets the clock to `deadline` if it has
    /// not yet reached it. Events exactly at `deadline` run.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.horizon = Some(deadline);
        let before = self.executed;
        while self.step(world) {}
        EVENTS_EXECUTED.add(self.executed - before);
        self.horizon = None;
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Runs at most `max_events` events; returns how many ran.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        EVENTS_EXECUTED.add(n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_run_in_time_order() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(2), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "b"))
        });
        en.schedule_at(secs(1), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "a"))
        });
        en.run(&mut w);
        assert_eq!(
            w.log,
            vec![(secs(1).as_nanos(), "a"), (secs(2).as_nanos(), "b")]
        );
        assert_eq!(en.executed(), 2);
    }

    #[test]
    fn handlers_can_chain() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_in(SimDuration::from_secs(1), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "first"));
            en.schedule_in(SimDuration::from_secs(1), |w: &mut W, en| {
                w.log.push((en.now().as_nanos(), "second"));
            });
        });
        en.run(&mut w);
        assert_eq!(en.now(), secs(2));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(1), |w: &mut W, en| {
            w.log.push((0, "outer"));
            en.schedule_now(|w: &mut W, _| w.log.push((0, "inner")));
        });
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((0, "peer")));
        en.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["outer", "peer", "inner"]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((1, "in")));
        en.schedule_at(secs(5), |w: &mut W, _| w.log.push((5, "out")));
        en.run_until(&mut w, secs(3));
        assert_eq!(w.log.len(), 1);
        assert_eq!(en.now(), secs(3), "clock advances to deadline");
        assert_eq!(en.pending(), 1);
        en.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_includes_deadline_events() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(3), |w: &mut W, _| w.log.push((3, "at")));
        en.run_until(&mut w, secs(3));
        assert_eq!(w.log.len(), 1);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        let id = en.schedule_at(secs(1), |w: &mut W, _| w.log.push((1, "no")));
        assert!(en.cancel(id));
        en.run(&mut w);
        assert!(w.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(5), |_, en| {
            en.schedule_at(secs(1), |_, _| {});
        });
        en.run(&mut w);
    }

    #[test]
    fn audit_passes_during_and_after_run() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        for i in 0..50 {
            en.schedule_at(secs(i / 5), |w: &mut W, en| {
                w.log.push((0, "x"));
                en.schedule_in(SimDuration::from_secs(1), |_, _| {});
            });
        }
        en.audit().expect("clean before running");
        while en.step(&mut w) {
            en.audit().expect("clean after every step");
        }
        en.audit().expect("clean when drained");
    }

    #[test]
    fn periodic_self_audit_covers_long_runs() {
        // Schedules several times AUTO_AUDIT_INTERVAL chained events so
        // the in-step sweep fires repeatedly; a corrupted queue would
        // panic the run.
        fn chain(w: &mut W, en: &mut Engine<W>) {
            if en.executed() < 4 * crate::audit::AUTO_AUDIT_INTERVAL {
                w.log.push((0, "t"));
                en.schedule_in(SimDuration::from_nanos(1), chain);
            }
        }
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_now(chain);
        en.run(&mut w);
        assert!(en.executed() >= 4 * crate::audit::AUTO_AUDIT_INTERVAL);
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        for i in 0..10 {
            en.schedule_at(secs(i), |w: &mut W, _| w.log.push((0, "x")));
        }
        assert_eq!(en.run_steps(&mut w, 3), 3);
        assert_eq!(w.log.len(), 3);
        assert_eq!(en.pending(), 7);
    }
}
