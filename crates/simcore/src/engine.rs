//! The discrete-event executor.
//!
//! An [`Engine<W>`] advances a virtual clock by repeatedly popping the
//! earliest pending event and invoking its handler with exclusive
//! access to both the caller's world state `W` and the engine itself
//! (so handlers can schedule follow-up events). Determinism follows
//! from the queue's `(time, sequence)` total order and from all
//! randomness flowing through [`crate::rng::SimRng`].
//!
//! ## Allocation-free dispatch
//!
//! Events are stored as an [`Event<W>`] enum directly inside the
//! queue's recycled arena slots. Handlers that are plain function
//! pointers — optionally carrying one or two machine words of state —
//! live entirely in the slot; only closures with larger captures fall
//! back to a heap `Box`, counted by the `sim.events_boxed` metric so
//! experiments can prove the fallback is rare. A zero-sized closure
//! (no captures) nominally takes the boxed path but `Box::new` of a
//! zero-sized type performs no allocation, so it is neither counted
//! nor costed. Steady-state scheduling through the inline variants
//! therefore makes zero allocator calls.

use crate::event::{EventId, EventQueue};
use crate::metrics::Counter;
use crate::time::{SimDuration, SimTime};

/// Events executed across all engine run loops (pre-resolved handle:
/// the increment happens once per run call, but runs themselves can be
/// hot — e.g. the host scheduler's micro-simulations).
static EVENTS_EXECUTED: Counter = Counter::new("sim.events_executed");

/// Events whose handler captured too much state to store inline and
/// fell back to a heap allocation. A healthy model keeps this a tiny
/// fraction of `sim.events_executed`.
static EVENTS_BOXED: Counter = Counter::new("sim.events_boxed");

/// A boxed event handler: the fallback representation for closures
/// whose captures do not fit an [`Event`]'s inline variants. `Send`
/// so an engine (and its pending events) can migrate between the
/// worker threads of a [`crate::shard::ShardedSim`] window.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>) + Send>;

/// A schedulable event: the handler plus up to two machine words of
/// inline state, stored directly in the event queue's arena.
///
/// Construct the inline variants through
/// [`Engine::schedule_fn_at`] / [`Engine::schedule_arg_in`] and
/// friends; captureless closures coerce to the `fn` pointers these
/// take. The generic [`Engine::schedule_at`] family accepts arbitrary
/// closures and boxes the ones with non-zero-sized captures.
pub enum Event<W> {
    /// A bare function pointer; no state beyond the world.
    Fn(fn(&mut W, &mut Engine<W>)),
    /// A function pointer plus one word of state, passed back as the
    /// first argument.
    Arg(u64, fn(u64, &mut W, &mut Engine<W>)),
    /// A function pointer plus two words of state.
    Arg2([u64; 2], fn([u64; 2], &mut W, &mut Engine<W>)),
    /// The boxing fallback for handlers with larger captures.
    Boxed(EventFn<W>),
}

impl<W> Event<W> {
    /// Runs the handler, consuming the event.
    #[inline]
    pub fn invoke(self, world: &mut W, en: &mut Engine<W>) {
        match self {
            Event::Fn(f) => f(world, en),
            Event::Arg(a, f) => f(a, world, en),
            Event::Arg2(a, f) => f(a, world, en),
            Event::Boxed(f) => f(world, en),
        }
    }
}

impl<W> std::fmt::Debug for Event<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Event::Fn(_) => "Event::Fn",
            Event::Arg(..) => "Event::Arg",
            Event::Arg2(..) => "Event::Arg2",
            Event::Boxed(_) => "Event::Boxed",
        })
    }
}

/// Boxes a closure into the fallback variant, counting it against
/// `sim.events_boxed` only when the capture is non-zero-sized (boxing
/// a zero-sized closure performs no allocation).
fn boxed_event<W, F>(f: F) -> Event<W>
where
    F: FnOnce(&mut W, &mut Engine<W>) + Send + 'static,
{
    if std::mem::size_of::<F>() > 0 {
        EVENTS_BOXED.add(1);
    }
    Event::Boxed(Box::new(f))
}

/// A discrete-event simulation executor over a world type `W`.
///
/// See the [crate-level example](crate) for typical use.
pub struct Engine<W> {
    clock: SimTime,
    queue: EventQueue<Event<W>>,
    executed: u64,
    horizon: Option<SimTime>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            horizon: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a pre-built [`Event`] at the absolute instant `at` —
    /// the core all `schedule_*` helpers funnel through.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock: the past is
    /// immutable in a discrete-event simulation, so this is always a
    /// caller bug.
    pub fn schedule_event_at(&mut self, at: SimTime, ev: Event<W>) -> EventId {
        assert!(
            at >= self.clock,
            "schedule_at: {at} is before current time {}",
            self.clock
        );
        self.queue.push(at, ev)
    }

    /// Schedules a pre-built [`Event`] `delay` after the current
    /// instant.
    pub fn schedule_event_in(&mut self, delay: SimDuration, ev: Event<W>) -> EventId {
        self.queue.push(self.clock + delay, ev)
    }

    /// Schedules a pre-built [`Event`] at the current instant, after
    /// all events already scheduled for this instant.
    pub fn schedule_event_now(&mut self, ev: Event<W>) -> EventId {
        self.queue.push(self.clock, ev)
    }

    /// Schedules `f` to run at the absolute instant `at`.
    ///
    /// Closures with non-zero-sized captures are boxed (counted by
    /// `sim.events_boxed`); prefer the `schedule_fn_*` /
    /// `schedule_arg_*` variants on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + Send + 'static,
    {
        self.schedule_event_at(at, boxed_event(f))
    }

    /// Schedules `f` to run `delay` after the current instant.
    ///
    /// Closures with non-zero-sized captures are boxed; see
    /// [`schedule_at`](Engine::schedule_at).
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + Send + 'static,
    {
        self.schedule_event_in(delay, boxed_event(f))
    }

    /// Schedules `f` to run at the current instant, after all events
    /// already scheduled for this instant.
    ///
    /// Closures with non-zero-sized captures are boxed; see
    /// [`schedule_at`](Engine::schedule_at).
    pub fn schedule_now<F>(&mut self, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + Send + 'static,
    {
        self.schedule_event_now(boxed_event(f))
    }

    /// Schedules a bare function pointer at the absolute instant `at`
    /// — fully inline, no allocation. Captureless closures coerce.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_fn_at(&mut self, at: SimTime, f: fn(&mut W, &mut Engine<W>)) -> EventId {
        self.schedule_event_at(at, Event::Fn(f))
    }

    /// Schedules a bare function pointer `delay` after the current
    /// instant — fully inline, no allocation.
    pub fn schedule_fn_in(&mut self, delay: SimDuration, f: fn(&mut W, &mut Engine<W>)) -> EventId {
        self.schedule_event_in(delay, Event::Fn(f))
    }

    /// Schedules a bare function pointer at the current instant —
    /// fully inline, no allocation.
    pub fn schedule_fn_now(&mut self, f: fn(&mut W, &mut Engine<W>)) -> EventId {
        self.schedule_event_now(Event::Fn(f))
    }

    /// Schedules a function pointer carrying one word of state at the
    /// absolute instant `at` — fully inline, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_arg_at(
        &mut self,
        at: SimTime,
        arg: u64,
        f: fn(u64, &mut W, &mut Engine<W>),
    ) -> EventId {
        self.schedule_event_at(at, Event::Arg(arg, f))
    }

    /// Schedules a function pointer carrying one word of state `delay`
    /// after the current instant — fully inline, no allocation.
    pub fn schedule_arg_in(
        &mut self,
        delay: SimDuration,
        arg: u64,
        f: fn(u64, &mut W, &mut Engine<W>),
    ) -> EventId {
        self.schedule_event_in(delay, Event::Arg(arg, f))
    }

    /// Schedules a function pointer carrying one word of state at the
    /// current instant — fully inline, no allocation.
    pub fn schedule_arg_now(&mut self, arg: u64, f: fn(u64, &mut W, &mut Engine<W>)) -> EventId {
        self.schedule_event_now(Event::Arg(arg, f))
    }

    /// Schedules a function pointer carrying two words of state at the
    /// absolute instant `at` — fully inline, no allocation. This is
    /// the widest inline shape, and the one the sharded mailbox drain
    /// uses to deliver encoded cross-site messages without boxing.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_arg2_at(
        &mut self,
        at: SimTime,
        arg: [u64; 2],
        f: fn([u64; 2], &mut W, &mut Engine<W>),
    ) -> EventId {
        self.schedule_event_at(at, Event::Arg2(arg, f))
    }

    /// Schedules a function pointer carrying two words of state
    /// `delay` after the current instant — fully inline, no
    /// allocation.
    pub fn schedule_arg2_in(
        &mut self,
        delay: SimDuration,
        arg: [u64; 2],
        f: fn([u64; 2], &mut W, &mut Engine<W>),
    ) -> EventId {
        self.schedule_event_in(delay, Event::Arg2(arg, f))
    }

    /// Schedules a function pointer carrying two words of state at the
    /// current instant — fully inline, no allocation.
    pub fn schedule_arg2_now(
        &mut self,
        arg: [u64; 2],
        f: fn([u64; 2], &mut W, &mut Engine<W>),
    ) -> EventId {
        self.schedule_event_now(Event::Arg2(arg, f))
    }

    /// Cancels a pending event. Returns `true` if it had not yet run.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Executes a single event, if any remains (and none lies beyond
    /// the horizon set by [`run_until`](Engine::run_until)). Returns
    /// `true` if an event ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        // One fused queue operation: the horizon check and the pop
        // share a single front-bucket activation.
        let Some((time, _, ev)) = self.queue.pop_due(self.horizon) else {
            return false;
        };
        debug_assert!(time >= self.clock, "event queue produced the past");
        self.clock = time;
        self.executed += 1;
        // Periodic self-audit: every dev-profile run continuously
        // sweeps the queue invariants without O(n) work per event.
        #[cfg(any(debug_assertions, feature = "audit"))]
        if self
            .executed
            .is_multiple_of(crate::audit::AUTO_AUDIT_INTERVAL)
        {
            if let Err(v) = self.audit() {
                panic!(
                    "engine self-audit failed after {} events: {v}",
                    self.executed
                );
            }
        }
        ev.invoke(world, self);
        true
    }

    /// Re-verifies the engine's invariants (runtime audit layer; see
    /// [`crate::audit`]): the event queue's structural checks plus
    /// causality — no pending event may be earlier than the clock,
    /// since the past is immutable in a discrete-event simulation.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        self.queue.audit()?;
        if let Some(next) = self.queue.earliest_time() {
            if next < self.clock {
                return Err(crate::audit::AuditViolation {
                    invariant: "causality",
                    detail: format!("pending event at {next} is before the clock {}", self.clock),
                });
            }
        }
        Ok(())
    }

    /// Runs until no events remain.
    pub fn run(&mut self, world: &mut W) {
        self.horizon = None;
        let before = self.executed;
        while self.step(world) {}
        EVENTS_EXECUTED.add(self.executed - before);
    }

    /// Runs until the queue is empty or the next event lies strictly
    /// after `deadline`; then sets the clock to `deadline` if it has
    /// not yet reached it. Events exactly at `deadline` run.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.horizon = Some(deadline);
        let before = self.executed;
        while self.step(world) {}
        EVENTS_EXECUTED.add(self.executed - before);
        self.horizon = None;
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Runs every event strictly before `bound`, leaving the clock at
    /// the last executed event (or untouched when nothing ran) — the
    /// window-execution primitive of the conservative synchronizer in
    /// [`crate::shard`]. Unlike [`run_until`](Engine::run_until), the
    /// bound itself is *exclusive* and the clock is **not** bumped to
    /// it: an event delivered exactly at the bound (the next window's
    /// horizon) must still be schedulable, and schedule-time causality
    /// checks compare against the clock.
    ///
    /// Returns how many events ran.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is [`SimTime::ZERO`]: an empty window is
    /// always a synchronizer bug.
    pub fn run_before(&mut self, world: &mut W, bound: SimTime) -> u64 {
        assert!(bound > SimTime::ZERO, "run_before: empty window");
        // Exclusive bound over integer nanoseconds: everything up to
        // and including `bound - 1ns`.
        self.horizon = Some(bound - SimDuration::from_nanos(1));
        let before = self.executed;
        while self.step(world) {}
        EVENTS_EXECUTED.add(self.executed - before);
        self.horizon = None;
        self.executed - before
    }

    /// Time of the earliest pending event without popping it, if any —
    /// what the conservative synchronizer folds into the global
    /// safe-advance minimum.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.earliest_time()
    }

    /// [`next_event_time`](Engine::next_event_time) for exclusive
    /// owners: may activate (and lazily sort) the queue's front
    /// bucket, so the window loop's repeated peeks cost O(1) instead
    /// of rescanning the front bucket each time. The activation work
    /// is the same the next pop would have done; results never
    /// differ from `next_event_time`.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs at most `max_events` events; returns how many ran.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        EVENTS_EXECUTED.add(n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_run_in_time_order() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(2), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "b"))
        });
        en.schedule_at(secs(1), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "a"))
        });
        en.run(&mut w);
        assert_eq!(
            w.log,
            vec![(secs(1).as_nanos(), "a"), (secs(2).as_nanos(), "b")]
        );
        assert_eq!(en.executed(), 2);
    }

    #[test]
    fn handlers_can_chain() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_in(SimDuration::from_secs(1), |w: &mut W, en| {
            w.log.push((en.now().as_nanos(), "first"));
            en.schedule_in(SimDuration::from_secs(1), |w: &mut W, en| {
                w.log.push((en.now().as_nanos(), "second"));
            });
        });
        en.run(&mut w);
        assert_eq!(en.now(), secs(2));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(1), |w: &mut W, en| {
            w.log.push((0, "outer"));
            en.schedule_now(|w: &mut W, _| w.log.push((0, "inner")));
        });
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((0, "peer")));
        en.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["outer", "peer", "inner"]);
    }

    #[test]
    fn inline_variants_interleave_with_boxed_in_schedule_order() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_fn_at(secs(1), |w, _| w.log.push((0, "fn")));
        en.schedule_arg_at(secs(1), 7, |a, w, _| {
            assert_eq!(a, 7);
            w.log.push((a, "arg"));
        });
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((0, "boxed")));
        en.schedule_event_at(
            secs(1),
            Event::Arg2([3, 4], |a, w, _| w.log.push((a[0] + a[1], "arg2"))),
        );
        en.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["fn", "arg", "boxed", "arg2"]);
        assert_eq!(w.log[3].0, 7, "arg2 words delivered");
    }

    #[test]
    fn inline_fn_and_arg_events_chain_and_cancel() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        fn tick(left: u64, w: &mut W, en: &mut Engine<W>) {
            w.log.push((left, "tick"));
            if left > 0 {
                en.schedule_arg_in(SimDuration::from_secs(1), left - 1, tick);
            }
        }
        en.schedule_arg_now(3, tick);
        let doomed = en.schedule_fn_in(SimDuration::from_secs(10), |w, _| w.log.push((0, "no")));
        assert!(en.cancel(doomed));
        en.run(&mut w);
        let ticks: Vec<u64> = w.log.iter().map(|(n, _)| *n).collect();
        assert_eq!(ticks, vec![3, 2, 1, 0]);
        assert_eq!(en.now(), secs(3));
    }

    #[test]
    fn events_boxed_counts_only_real_captures() {
        metrics::reset();
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        // Inline variants and captureless (zero-sized) closures never
        // count as boxed.
        en.schedule_fn_at(secs(1), |w, _| w.log.push((0, "a")));
        en.schedule_arg_in(SimDuration::from_secs(1), 1, |_, w, _| w.log.push((0, "b")));
        en.schedule_now(|w: &mut W, _| w.log.push((0, "c")));
        let snap = metrics::take();
        assert_eq!(snap.counter("sim.events_boxed"), 0);
        // A closure with a real capture does.
        let payload = [1u8, 2, 3].to_vec();
        en.schedule_at(secs(2), move |w: &mut W, _| {
            w.log.push((payload.len() as u64, "d"))
        });
        let snap = metrics::take();
        assert_eq!(snap.counter("sim.events_boxed"), 1);
        en.run(&mut w);
        assert_eq!(w.log.len(), 4);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((1, "in")));
        en.schedule_at(secs(5), |w: &mut W, _| w.log.push((5, "out")));
        en.run_until(&mut w, secs(3));
        assert_eq!(w.log.len(), 1);
        assert_eq!(en.now(), secs(3), "clock advances to deadline");
        assert_eq!(en.pending(), 1);
        en.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_includes_deadline_events() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(3), |w: &mut W, _| w.log.push((3, "at")));
        en.run_until(&mut w, secs(3));
        assert_eq!(w.log.len(), 1);
    }

    #[test]
    fn run_before_excludes_bound_and_leaves_clock() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(1), |w: &mut W, _| w.log.push((1, "in")));
        en.schedule_at(secs(3), |w: &mut W, _| w.log.push((3, "at-bound")));
        assert_eq!(en.next_event_time(), Some(secs(1)));
        assert_eq!(en.run_before(&mut w, secs(3)), 1, "bound is exclusive");
        assert_eq!(en.now(), secs(1), "clock stays at the last event");
        assert_eq!(en.next_event_time(), Some(secs(3)));
        // An event landing exactly at the previous bound is legal.
        en.schedule_at(secs(3), |w: &mut W, _| w.log.push((3, "delivered")));
        assert_eq!(en.run_before(&mut w, secs(4)), 2);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["in", "at-bound", "delivered"]);
        assert_eq!(en.next_event_time(), None);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        let id = en.schedule_at(secs(1), |w: &mut W, _| w.log.push((1, "no")));
        assert!(en.cancel(id));
        en.run(&mut w);
        assert!(w.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(5), |_, en| {
            en.schedule_at(secs(1), |_, _| {});
        });
        en.run(&mut w);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_fn_in_the_past_panics() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_at(secs(5), |_, en| {
            en.schedule_fn_at(secs(1), |_, _| {});
        });
        en.run(&mut w);
    }

    #[test]
    fn audit_passes_during_and_after_run() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        for i in 0..50 {
            en.schedule_at(secs(i / 5), |w: &mut W, en| {
                w.log.push((0, "x"));
                en.schedule_in(SimDuration::from_secs(1), |_, _| {});
            });
        }
        en.audit().expect("clean before running");
        while en.step(&mut w) {
            en.audit().expect("clean after every step");
        }
        en.audit().expect("clean when drained");
    }

    #[test]
    fn periodic_self_audit_covers_long_runs() {
        // Schedules several times AUTO_AUDIT_INTERVAL chained events so
        // the in-step sweep fires repeatedly; a corrupted queue would
        // panic the run.
        fn chain(w: &mut W, en: &mut Engine<W>) {
            if en.executed() < 4 * crate::audit::AUTO_AUDIT_INTERVAL {
                w.log.push((0, "t"));
                en.schedule_fn_in(SimDuration::from_nanos(1), chain);
            }
        }
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        en.schedule_fn_now(chain);
        en.run(&mut w);
        assert!(en.executed() >= 4 * crate::audit::AUTO_AUDIT_INTERVAL);
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut en: Engine<W> = Engine::new();
        let mut w = W::default();
        for i in 0..10 {
            en.schedule_at(secs(i), |w: &mut W, _| w.log.push((0, "x")));
        }
        assert_eq!(en.run_steps(&mut w, 3), 3);
        assert_eq!(w.log.len(), 3);
        assert_eq!(en.pending(), 7);
    }
}
