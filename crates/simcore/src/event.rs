//! The pending-event set: a timing-wheel front-end over an
//! index-tracked d-ary min-heap, ordered by `(time, sequence)` with
//! O(1) near-future scheduling, O(log n) far-future overflow, and true
//! in-place cancellation — and no hashing anywhere on the hot path.
//!
//! Sequence numbers make same-time ordering deterministic: two events
//! scheduled for the same instant fire in the order they were
//! scheduled, regardless of wheel or heap internals.
//!
//! ## Wheel ↔ heap hybrid
//!
//! Simulation models overwhelmingly schedule a short hop ahead of the
//! current instant (a link hop, a disk block, a scheduler quantum), so
//! the queue keeps a single-level timing wheel of
//! [`WHEEL_BUCKETS`] × [`GRANULE_NS`] ns buckets covering a sliding
//! ~2 ms window. A push inside the window appends to its bucket in
//! O(1); everything beyond the window (or behind its leading edge)
//! overflows into the 4-ary heap. The front bucket is sorted
//! descending by `(time, seq)` on first access, so the minimum pops
//! from its back in O(1) amortized; when the wheel drains, the window
//! re-anchors and in-window heap entries migrate into buckets. Pop
//! always compares the wheel minimum against the heap minimum, so the
//! drain order is *exactly* the heap-only order — the wheel is a
//! layout optimization, never an ordering change (a property the
//! proptests pin against [`EventQueue::heap_only`]).
//!
//! ## Cancellation
//!
//! Unlike the earlier `BinaryHeap` + tombstone-set design,
//! cancellation removes the entry immediately: each pending event
//! lives in a generation-stamped arena slot that records its current
//! location (heap index or wheel bucket+position), and the [`EventId`]
//! handle encodes `(generation, slot)`. Cancel is a direct arena probe
//! (stale handles fail the generation check), so a long-running
//! simulation carries no dead entries: nothing is re-heapified on pop,
//! and cancelling an already-fired id leaves no residual bookkeeping
//! behind.

use std::fmt;

use crate::time::SimTime;

/// Heap arity. Four keeps the tree shallow (log₄ n levels, half the
/// element moves of a binary heap) while the child scan stays within
/// one cache line of 24-byte heap entries — measurably faster than
/// binary on the pop-heavy simulation loop.
const D: usize = 4;

/// Buckets in the timing wheel (power of two so the occupancy bitmap
/// is a handful of words).
const WHEEL_BUCKETS: usize = 512;

/// log₂ of the bucket granularity: each bucket spans 4096 ns.
const GRANULE_BITS: u32 = 12;

/// Bucket width in nanoseconds.
const GRANULE_NS: u64 = 1 << GRANULE_BITS;

/// Width of the whole wheel window (~2.1 ms of virtual time).
const WHEEL_SPAN_NS: u64 = (WHEEL_BUCKETS as u64) << GRANULE_BITS;

/// Words in the bucket-occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;

/// Pending-set size below which pushes bypass the wheel entirely: a
/// d-ary heap of a few dozen 24-byte entries spans a handful of cache
/// lines, which beats touching the wheel's scattered bucket vectors
/// when many queues share a cache (the sharded window loop revisits
/// every site's queue once per window). The wheel engages — via
/// [`EventQueue::insert_entry`] routing and the refill in
/// [`EventQueue::front`] — once the heap outgrows this. Ordering is
/// unaffected either way: pop order is the `(time, seq)` minimum in
/// both structures.
const WHEEL_ENGAGE: usize = 64;

/// Identifies a scheduled event, for cancellation.
///
/// The handle packs the event's arena slot in the low 32 bits and the
/// slot's generation stamp in the high 32 bits. Slots are recycled
/// after an event fires or is cancelled, bumping the generation, so a
/// stale handle can never cancel an unrelated later event. Handles
/// compare by raw value only; scheduling order is *not* recoverable
/// from them (the queue keeps a separate sequence number for
/// deterministic FIFO tie-breaking).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    fn pack(gen: u32, slot: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}g{}", self.slot(), self.gen())
    }
}

/// A compact pending-event record: the `(time, sequence)` ordering key
/// plus the arena slot of its payload and the slot's generation stamp
/// (carried inline so pop can reconstruct the [`EventId`] without a
/// random arena read). Kept `Copy` and 24 bytes so sift steps and
/// bucket sorts move entries through contiguous memory.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Where a live arena slot's entry currently lives. Stale for free
/// slots; cancel validates against the entry itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// Index into the d-ary heap.
    Heap(u32),
    /// Bucket index and position within that bucket's vector.
    Wheel { bucket: u16, pos: u32 },
}

/// Which side of the hybrid currently holds the minimum.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Front {
    Wheel,
    Heap,
}

/// A cancellable min-priority queue of timestamped payloads.
///
/// This is the storage layer under [`crate::engine::Engine`]; it is
/// public so substrates that run their own micro-simulations (e.g. the
/// host CPU scheduler) can reuse it.
///
/// ```
/// use gridvm_simcore::event::EventQueue;
/// use gridvm_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_secs(2), "late");
/// let _b = q.push(SimTime::from_secs(1), "early");
/// q.cancel(a);
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(1), "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Implicit d-ary min-heap of `(time, sequence)` keys: the
    /// far-future overflow behind the wheel (or the whole queue when
    /// the wheel is disabled).
    heap: Vec<Entry>,
    /// Location of each slot's entry, maintained by the sift steps and
    /// bucket operations with plain vector writes (so cancellation
    /// finds its target without searching or hashing). Stale for free
    /// slots; cancel validates against the entry itself.
    loc: Vec<Loc>,
    /// Payloads, indexed by `Entry::slot`; slots are recycled through
    /// `free`, so arena size tracks peak concurrency, not total
    /// events scheduled.
    payloads: Vec<Option<E>>,
    /// Recycled slots, each carrying the generation its next occupant
    /// will get (one past the generation that just died, so stale
    /// handles can never validate).
    free: Vec<(u32, u32)>,
    next_seq: u64,
    /// Timing-wheel buckets; allocated lazily on the first in-window
    /// push so tiny micro-sim queues stay cheap. Empty when the wheel
    /// is disabled.
    wheel: Vec<Vec<Entry>>,
    /// Bucket-occupancy bitmap: bit `b` set iff `wheel[b]` is
    /// non-empty. Makes cursor advance a couple of word scans.
    occupied: [u64; WHEEL_WORDS],
    /// Total entries across all buckets.
    wheel_len: usize,
    /// Virtual time (ns, granule-aligned) of bucket 0 in the current
    /// window.
    wheel_base_ns: u64,
    /// First bucket that may hold entries; every non-empty bucket is
    /// at this index or later.
    cursor: usize,
    /// Whether `wheel[cursor]` is currently sorted descending by key
    /// (so its minimum is at the back).
    cursor_sorted: bool,
    wheel_enabled: bool,
    /// Heap size at which pushes start routing to the wheel; see
    /// [`WHEEL_ENGAGE`]. [`EventQueue::with_wheel`] sets 1 so the
    /// wheel paths stay exercised by tiny test/bench queues.
    wheel_engage: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("wheel", &self.wheel_len)
            .finish()
    }
}

impl<E> EventQueue<E> {
    fn with_wheel_enabled(wheel_enabled: bool) -> Self {
        EventQueue {
            heap: Vec::new(),
            loc: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            wheel: Vec::new(),
            occupied: [0; WHEEL_WORDS],
            wheel_len: 0,
            wheel_base_ns: 0,
            cursor: 0,
            cursor_sorted: false,
            wheel_enabled,
            wheel_engage: WHEEL_ENGAGE,
        }
    }

    /// Creates an empty queue. The timing-wheel front-end is on unless
    /// the crate was built with `--no-default-features` (dropping the
    /// `wheel` feature); either way the drain order is identical.
    pub fn new() -> Self {
        Self::with_wheel_enabled(cfg!(feature = "wheel"))
    }

    /// Creates an empty queue with the timing wheel forced on,
    /// regardless of feature flags, and engaging from the second
    /// pending event (instead of waiting for [`WHEEL_ENGAGE`]). Used
    /// by benches and the wheel-vs-heap equivalence tests, which want
    /// the wheel paths exercised even by small queues.
    pub fn with_wheel() -> Self {
        let mut q = Self::with_wheel_enabled(true);
        q.wheel_engage = 1;
        q
    }

    /// Creates an empty queue that keeps every entry in the d-ary heap
    /// — the pre-wheel implementation, retained as the reference model
    /// for equivalence tests and A/B benchmarks.
    pub fn heap_only() -> Self {
        Self::with_wheel_enabled(false)
    }

    /// Hole-style sift toward the root: parents shift down one level
    /// at a time (one position write each) and the moving entry lands
    /// once at its final index.
    fn sift_up(&mut self, mut i: usize) {
        let Self { heap, loc, .. } = self;
        let entry = heap[i];
        let key = entry.key();
        while i > 0 {
            let parent = (i - 1) / D;
            let p = heap[parent];
            if key < p.key() {
                heap[i] = p;
                loc[p.slot as usize] = Loc::Heap(i as u32);
                i = parent;
            } else {
                break;
            }
        }
        heap[i] = entry;
        loc[entry.slot as usize] = Loc::Heap(i as u32);
    }

    /// Hole-style sift toward the leaves: the smallest child shifts up
    /// one level at a time and the moving entry lands once.
    fn sift_down(&mut self, mut i: usize) {
        let Self { heap, loc, .. } = self;
        let entry = heap[i];
        let key = entry.key();
        let len = heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let mut best_entry = heap[first];
            for (off, e) in heap[first + 1..(first + D).min(len)].iter().enumerate() {
                if e.key() < best_entry.key() {
                    best = first + 1 + off;
                    best_entry = *e;
                }
            }
            if best_entry.key() < key {
                heap[i] = best_entry;
                loc[best_entry.slot as usize] = Loc::Heap(i as u32);
                i = best;
            } else {
                break;
            }
        }
        heap[i] = entry;
        loc[entry.slot as usize] = Loc::Heap(i as u32);
    }

    /// Pop-path sift: the hole at `i` walks straight to the bottom,
    /// promoting the smallest child at each level without comparing
    /// against the moving key (it came from a leaf and almost always
    /// belongs back at one), then the moving entry sifts up from the
    /// leaf hole. Fewer, better-predicted comparisons than the
    /// early-exit sift on the pop-heavy simulation loop — the same
    /// strategy `std::collections::BinaryHeap` uses.
    fn sift_down_to_bottom(&mut self, mut i: usize) {
        let Self { heap, loc, .. } = self;
        let entry = heap[i];
        let len = heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let mut best_entry = heap[first];
            for (off, e) in heap[first + 1..(first + D).min(len)].iter().enumerate() {
                if e.key() < best_entry.key() {
                    best = first + 1 + off;
                    best_entry = *e;
                }
            }
            heap[i] = best_entry;
            loc[best_entry.slot as usize] = Loc::Heap(i as u32);
            i = best;
        }
        let key = entry.key();
        while i > 0 {
            let parent = (i - 1) / D;
            let p = heap[parent];
            if key < p.key() {
                heap[i] = p;
                loc[p.slot as usize] = Loc::Heap(i as u32);
                i = parent;
            } else {
                break;
            }
        }
        heap[i] = entry;
        loc[entry.slot as usize] = Loc::Heap(i as u32);
    }

    /// Restores the heap property for an index whose entry changed.
    fn sift(&mut self, i: usize) {
        if i > 0 && self.heap[i].key() < self.heap[(i - 1) / D].key() {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Virtual time (ns) of the leading edge of the live window: pushes
    /// at or after this instant and inside the span go into buckets.
    #[inline]
    fn cursor_time_ns(&self) -> u64 {
        self.wheel_base_ns
            .saturating_add((self.cursor as u64) << GRANULE_BITS)
    }

    /// Appends an entry to a wheel bucket, maintaining the occupancy
    /// bitmap, the location arena and the cursor-sort flag.
    fn wheel_insert(&mut self, entry: Entry, bucket: usize) {
        if self.wheel.is_empty() {
            self.wheel = (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect();
        }
        let b = &mut self.wheel[bucket];
        b.push(entry);
        self.loc[entry.slot as usize] = Loc::Wheel {
            bucket: bucket as u16,
            pos: (b.len() - 1) as u32,
        };
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
        self.wheel_len += 1;
        if bucket == self.cursor {
            self.cursor_sorted = false;
        }
    }

    /// Pushes an entry onto the d-ary heap.
    fn heap_insert(&mut self, entry: Entry) {
        let i = self.heap.len();
        self.heap.push(entry);
        self.sift_up(i);
    }

    /// Routes a new entry to the wheel (in-window) or the heap
    /// (overflow). The current window is reused whenever it still
    /// covers the incoming time — even when the wheel happens to be
    /// momentarily empty, which is the steady state of a simulation
    /// with one event in flight ("pop, then schedule a little ahead").
    /// Only a push an empty wheel cannot place re-anchors the window,
    /// *centered* on the incoming time so slightly-earlier follow-up
    /// pushes still land in buckets; that makes re-anchoring a
    /// once-per-half-window cost instead of a per-event one.
    #[inline]
    fn insert_entry(&mut self, entry: Entry) {
        if self.wheel_enabled {
            // Small queues stay on the heap: a lone event (the
            // one-in-flight chain steady state) pops from the root in
            // O(1), and anything under the engage threshold fits in a
            // few cache lines where bucket bookkeeping would only add
            // footprint. Routing to the wheel resumes as soon as it
            // holds entries or the heap outgrows the threshold.
            if self.wheel_len == 0 && self.heap.len() < self.wheel_engage {
                self.heap_insert(entry);
                return;
            }
            let t = entry.time.as_nanos();
            if t >= self.cursor_time_ns() && t.wrapping_sub(self.wheel_base_ns) < WHEEL_SPAN_NS {
                let bucket = ((t - self.wheel_base_ns) >> GRANULE_BITS) as usize;
                // An insert into an already-activated (sorted,
                // non-empty) cursor bucket would force a full re-sort
                // on the next pop — quadratic when many events crowd
                // one granule. The heap absorbs those at O(log n)
                // instead; pop already compares both sides.
                if !(bucket == self.cursor
                    && self.cursor_sorted
                    && self.wheel.get(bucket).is_some_and(|b| !b.is_empty()))
                {
                    self.wheel_insert(entry, bucket);
                    return;
                }
            } else if self.wheel_len == 0 {
                self.wheel_base_ns = (t & !(GRANULE_NS - 1)).saturating_sub(WHEEL_SPAN_NS / 2);
                self.cursor = 0;
                self.cursor_sorted = false;
                let bucket = ((t - self.wheel_base_ns) >> GRANULE_BITS) as usize;
                self.wheel_insert(entry, bucket);
                return;
            }
        }
        self.heap_insert(entry);
    }

    /// Schedules `payload` at `time`, returning a handle for
    /// cancellation.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some((s, g)) => {
                self.payloads[s as usize] = Some(payload);
                (s, g)
            }
            None => {
                if self.loc.len() == self.loc.capacity() {
                    // The heap, location and payload arrays grow in
                    // lockstep; doubling each independently would
                    // double the realloc copy traffic of a
                    // single-array design, so grow 4x at a time to
                    // keep total copied bytes comparable.
                    let add = (self.loc.len() * 3).max(64);
                    self.loc.reserve(add);
                    self.payloads.reserve(add);
                    self.heap.reserve(add);
                }
                self.loc.push(Loc::Heap(0));
                self.payloads.push(Some(payload));
                ((self.loc.len() - 1) as u32, 0)
            }
        };
        self.insert_entry(Entry {
            time,
            seq,
            slot,
            gen,
        });
        EventId::pack(gen, slot)
    }

    /// Recycles an arena slot, invalidating every outstanding handle
    /// to its dead generation.
    fn release(&mut self, slot: u32, gen: u32) {
        self.free.push((slot, gen.wrapping_add(1)));
    }

    /// Cancels a previously scheduled event, removing it from its
    /// bucket or heap position in place.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false`, is
    /// harmless, and leaves no bookkeeping behind.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        // The handle is live iff the slot's recorded location holds an
        // entry for this exact (slot, generation) pair; anything stale
        // — fired, cancelled, recycled — fails here.
        let Some(&l) = self.loc.get(slot as usize) else {
            return false;
        };
        match l {
            Loc::Heap(i) => {
                let i = i as usize;
                match self.heap.get(i) {
                    Some(e) if e.slot == slot && e.gen == id.gen() => {}
                    _ => return false,
                }
                let last = self.heap.len() - 1;
                self.heap.swap(i, last);
                self.heap.pop();
                if i < last {
                    self.sift(i);
                }
            }
            Loc::Wheel { bucket, pos } => {
                let (b, p) = (bucket as usize, pos as usize);
                match self.wheel.get(b).and_then(|v| v.get(p)) {
                    Some(e) if e.slot == slot && e.gen == id.gen() => {}
                    _ => return false,
                }
                let bv = &mut self.wheel[b];
                bv.swap_remove(p);
                if let Some(moved) = bv.get(p) {
                    self.loc[moved.slot as usize] = Loc::Wheel { bucket, pos };
                }
                if bv.is_empty() {
                    self.occupied[b / 64] &= !(1u64 << (b % 64));
                }
                self.wheel_len -= 1;
                if b == self.cursor {
                    // swap_remove disturbed the bucket's order.
                    self.cursor_sorted = false;
                }
            }
        }
        self.payloads[slot as usize] = None;
        self.release(slot, id.gen());
        true
    }

    /// First occupied bucket at or after `from`, via the bitmap.
    fn first_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= WHEEL_WORDS {
            return None;
        }
        let mut bits = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == WHEEL_WORDS {
                return None;
            }
            bits = self.occupied[w];
        }
    }

    /// When the wheel has drained but the heap still holds events,
    /// re-anchor the window at the heap minimum and migrate every
    /// in-window heap entry into its bucket. Each event migrates at
    /// most once, so the cost amortizes into its eventual pop.
    fn refill_from_heap(&mut self) {
        let top = self.heap[0].time.as_nanos();
        self.wheel_base_ns = top & !(GRANULE_NS - 1);
        self.cursor = 0;
        self.cursor_sorted = false;
        while let Some(root) = self.heap.first() {
            // Heap order guarantees t >= top >= base.
            let off = root.time.as_nanos() - self.wheel_base_ns;
            if off >= WHEEL_SPAN_NS {
                break;
            }
            let root = *root;
            let tail = self.heap.pop().expect("heap is non-empty");
            if !self.heap.is_empty() {
                self.heap[0] = tail;
                self.sift_down_to_bottom(0);
            }
            self.wheel_insert(root, (off >> GRANULE_BITS) as usize);
        }
    }

    /// Advances the cursor to the first non-empty bucket and sorts it
    /// descending by key (so the minimum is at the back), then returns
    /// the wheel's minimum key.
    fn activate_front_bucket(&mut self) -> Option<(SimTime, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let front = self
            .first_occupied(self.cursor)
            .expect("wheel_len > 0 implies an occupied bucket");
        if front != self.cursor {
            self.cursor = front;
            self.cursor_sorted = false;
        }
        if !self.cursor_sorted {
            let Self {
                wheel, loc, cursor, ..
            } = self;
            let bucket = &mut wheel[*cursor];
            // A single-entry bucket (the common case under steady
            // chained scheduling) is trivially sorted and its location
            // record is already exact.
            if bucket.len() > 1 {
                bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                for (pos, e) in bucket.iter().enumerate() {
                    loc[e.slot as usize] = Loc::Wheel {
                        bucket: *cursor as u16,
                        pos: pos as u32,
                    };
                }
            }
            self.cursor_sorted = true;
        }
        self.wheel[self.cursor].last().map(Entry::key)
    }

    /// Which side holds the global minimum, activating the wheel's
    /// front bucket (and refilling the wheel from the heap when it has
    /// drained) along the way.
    #[inline]
    fn front(&mut self) -> Option<Front> {
        if self.wheel_len == 0 {
            // Heap-only fast path: with nothing staged in buckets
            // there is no activation or key comparison to do. Refill
            // only pays off with at least two heap entries, and only
            // once the heap outgrows the engage threshold — below
            // that the whole pending set pops from the heap without
            // migrating (see [`WHEEL_ENGAGE`] for the rationale).
            if !self.wheel_enabled || self.heap.len() <= 1 || self.heap.len() < self.wheel_engage {
                return if self.heap.is_empty() {
                    None
                } else {
                    Some(Front::Heap)
                };
            }
            self.refill_from_heap();
        }
        let wheel_key = self.activate_front_bucket();
        let heap_key = self.heap.first().map(Entry::key);
        match (wheel_key, heap_key) {
            (None, None) => None,
            (Some(_), None) => Some(Front::Wheel),
            (None, Some(_)) => Some(Front::Heap),
            (Some(w), Some(h)) => Some(if w < h { Front::Wheel } else { Front::Heap }),
        }
    }

    /// Removes the entry `front` pointed at and hands back its
    /// `(time, id, payload)` triple.
    #[inline]
    fn pop_side(&mut self, side: Front) -> (SimTime, EventId, E) {
        let entry = match side {
            Front::Wheel => {
                let b = self.cursor;
                let e = self.wheel[b].pop().expect("front saw a wheel entry");
                if self.wheel[b].is_empty() {
                    self.occupied[b / 64] &= !(1u64 << (b % 64));
                }
                self.wheel_len -= 1;
                e
            }
            Front::Heap => {
                let root = self.heap[0];
                let tail = self.heap.pop().expect("front saw a heap entry");
                if !self.heap.is_empty() {
                    self.heap[0] = tail;
                    self.sift_down_to_bottom(0);
                }
                root
            }
        };
        let payload = self.payloads[entry.slot as usize]
            .take()
            .expect("live entry has a payload");
        self.release(entry.slot, entry.gen);
        (entry.time, EventId::pack(entry.gen, entry.slot), payload)
    }

    /// Removes and returns the earliest live event as
    /// `(time, id, payload)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let side = self.front()?;
        Some(self.pop_side(side))
    }

    /// Removes and returns the earliest live event, but only if its
    /// time is at or before `deadline` (`None` means no bound). A
    /// single front computation serves both the deadline check and the
    /// pop, so run loops with a horizon don't pay for peek + pop
    /// separately.
    #[inline]
    pub fn pop_due(&mut self, deadline: Option<SimTime>) -> Option<(SimTime, EventId, E)> {
        let side = self.front()?;
        if let Some(h) = deadline {
            let next = match side {
                Front::Wheel => {
                    self.wheel[self.cursor]
                        .last()
                        .expect("front saw a wheel entry")
                        .time
                }
                Front::Heap => self.heap.first().expect("front saw a heap entry").time,
            };
            if next > h {
                return None;
            }
        }
        Some(self.pop_side(side))
    }

    /// The timestamp of the earliest live event, if any, without
    /// removing it. Takes `&mut self` because peeking may activate the
    /// wheel's front bucket; [`earliest_time`](Self::earliest_time) is
    /// the non-mutating variant for audits.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match self.front()? {
            Front::Wheel => self.wheel[self.cursor].last().map(|e| e.time),
            Front::Heap => self.heap.first().map(|e| e.time),
        }
    }

    /// The timestamp of the earliest live event without mutating any
    /// lazily-sorted state: scans the wheel's first occupied bucket
    /// (unsorted, so O(bucket length)) and the heap root. Used by the
    /// runtime audit layer, which only holds `&self`.
    pub fn earliest_time(&self) -> Option<SimTime> {
        let wheel_min = self
            .first_occupied(self.cursor)
            .and_then(|b| self.wheel[b].iter().map(|e| e.key()).min());
        let heap_min = self.heap.first().map(Entry::key);
        match (wheel_min, heap_min) {
            (None, None) => None,
            (Some(w), None) => Some(w.0),
            (None, Some(h)) => Some(h.0),
            (Some(w), Some(h)) => Some(w.min(h).0),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel_len
    }

    /// Number of pending events currently staged in the timing wheel
    /// (0 when the wheel is disabled or drained). Exposed so benches
    /// and tests can prove the wheel is actually engaged.
    pub fn wheel_len(&self) -> usize {
        self.wheel_len
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event. Outstanding handles are invalidated,
    /// not leaked: their slots are recycled with a bumped generation.
    pub fn clear(&mut self) {
        while let Some(e) = self.heap.pop() {
            self.payloads[e.slot as usize] = None;
            self.release(e.slot, e.gen);
        }
        for b in &mut self.wheel {
            for e in b.drain(..) {
                self.payloads[e.slot as usize] = None;
                self.free.push((e.slot, e.gen.wrapping_add(1)));
            }
        }
        self.occupied = [0; WHEEL_WORDS];
        self.wheel_len = 0;
        self.cursor = 0;
        self.cursor_sorted = false;
    }

    /// Re-verifies the queue's structural invariants from first
    /// principles (runtime audit layer; see [`crate::audit`]): heap
    /// ordering, location back-pointers, payload liveness, the
    /// wheel↔heap partition (bucket time ranges, occupancy bitmap,
    /// cursor bound, sorted-front flag, entry count), the
    /// slot-arena/free-list partition, and sequence-counter sanity.
    ///
    /// O(n log n) in pending events — called periodically by
    /// [`crate::engine::Engine::step`], directly by tests.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        use crate::audit::violated;
        // Heap property over the (time, seq) key.
        for i in 1..self.heap.len() {
            let parent = (i - 1) / D;
            if self.heap[i].key() < self.heap[parent].key() {
                return violated(
                    "heap-order",
                    format!(
                        "entry {i} (t={}, seq={}) sorts before its parent {parent} \
                         (t={}, seq={})",
                        self.heap[i].time,
                        self.heap[i].seq,
                        self.heap[parent].time,
                        self.heap[parent].seq
                    ),
                );
            }
        }
        // Heap back-pointers, payload liveness, sequence sanity.
        for (i, e) in self.heap.iter().enumerate() {
            let slot = e.slot as usize;
            match self.loc.get(slot) {
                Some(&Loc::Heap(idx)) if idx as usize == i => {}
                other => {
                    return violated(
                        "heap-idx",
                        format!("heap entry {i} for slot {slot}: loc says {other:?}"),
                    );
                }
            }
            self.check_live(slot, e, &format!("heap entry {i}"))?;
        }
        // Wheel: bitmap, cursor bound, bucket time ranges,
        // back-pointers, payload liveness, entry count.
        let mut counted = 0usize;
        for (b, bucket) in self.wheel.iter().enumerate() {
            let bit = self.occupied[b / 64] >> (b % 64) & 1 == 1;
            if bit == bucket.is_empty() {
                return violated(
                    "wheel-bitmap",
                    format!(
                        "bucket {b} has {} entries but its occupancy bit is {bit}",
                        bucket.len()
                    ),
                );
            }
            if !bucket.is_empty() && b < self.cursor {
                return violated(
                    "wheel-cursor",
                    format!(
                        "bucket {b} holds {} entries behind the cursor at {}",
                        bucket.len(),
                        self.cursor
                    ),
                );
            }
            for (p, e) in bucket.iter().enumerate() {
                counted += 1;
                let t = e.time.as_nanos();
                if t < self.wheel_base_ns || (t - self.wheel_base_ns) >> GRANULE_BITS != b as u64 {
                    return violated(
                        "wheel-range",
                        format!(
                            "bucket {b} entry {p} at t={t}ns is outside its bucket's \
                             range (window base {}ns)",
                            self.wheel_base_ns
                        ),
                    );
                }
                let slot = e.slot as usize;
                match self.loc.get(slot) {
                    Some(&Loc::Wheel { bucket, pos })
                        if bucket as usize == b && pos as usize == p => {}
                    other => {
                        return violated(
                            "wheel-loc",
                            format!("bucket {b} entry {p} for slot {slot}: loc says {other:?}"),
                        );
                    }
                }
                self.check_live(slot, e, &format!("bucket {b} entry {p}"))?;
            }
        }
        if counted != self.wheel_len {
            return violated(
                "wheel-count",
                format!(
                    "buckets hold {counted} entries but wheel_len says {}",
                    self.wheel_len
                ),
            );
        }
        if self.cursor_sorted {
            let bucket = &self.wheel[self.cursor];
            for w in bucket.windows(2) {
                if w[0].key() <= w[1].key() {
                    return violated(
                        "wheel-sorted",
                        format!(
                            "cursor bucket {} claims sorted but holds seq {} before seq {}",
                            self.cursor, w[0].seq, w[1].seq
                        ),
                    );
                }
            }
        }
        // Each arena slot lives in exactly one of {heap, wheel, free
        // list}, and free slots hold no payload.
        let mut owner = vec![0u8; self.payloads.len()];
        for e in &self.heap {
            owner[e.slot as usize] += 1;
        }
        for bucket in &self.wheel {
            for e in bucket {
                owner[e.slot as usize] += 1;
            }
        }
        for &(slot, _gen) in &self.free {
            let slot = slot as usize;
            owner[slot] += 2;
            if self.payloads.get(slot).is_some_and(Option::is_some) {
                return violated(
                    "arena-free",
                    format!("free-listed slot {slot} still holds a payload"),
                );
            }
        }
        for (slot, &o) in owner.iter().enumerate() {
            if o != 1 && o != 2 {
                return violated(
                    "arena-partition",
                    format!(
                        "slot {slot} is owned by {} (1=pending once, 2=free once)",
                        match o {
                            0 => "neither heap, wheel nor free list".to_owned(),
                            n => format!("code {n}: multiple owners"),
                        }
                    ),
                );
            }
        }
        Ok(())
    }

    /// Shared audit predicate: a pending entry's payload is live and
    /// its sequence number predates the counter.
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn check_live(&self, slot: usize, e: &Entry, what: &str) -> crate::audit::AuditResult {
        use crate::audit::violated;
        if self.payloads.get(slot).is_none_or(|p| p.is_none()) {
            return violated(
                "payload-liveness",
                format!("{what} points at slot {slot} with no payload"),
            );
        }
        if e.seq >= self.next_seq {
            return violated(
                "seq-counter",
                format!(
                    "{what} carries seq {} but next_seq is {}",
                    e.seq, self.next_seq
                ),
            );
        }
        Ok(())
    }

    /// Number of arena slots currently holding a live event, counted
    /// from the allocator's own books (`slots` minus the free list).
    /// Always equals [`len`](Self::len) when no bookkeeping leaks;
    /// exposed so tests can assert that cancel and pop release every
    /// slot (the seed implementation's tombstone set grew without
    /// bound on cancel-after-fire).
    pub fn tracked_ids(&self) -> usize {
        self.loc.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 'c');
        q.push(t(1), 'a');
        q.push(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
        assert_eq!(q.tracked_ids(), 0);
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuse() {
        // After an event fires, its arena slot is recycled for later
        // events; the fired handle's generation no longer matches, so
        // it must not cancel the unrelated newcomer.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop().unwrap().2, "a");
        let b = q.push(t(2), "b"); // reuses a's slot
        assert!(!q.cancel(a), "stale handle rejected");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.earliest_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.earliest_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        for id in &ids {
            assert!(!q.cancel(*id), "clear invalidates outstanding handles");
        }
    }

    #[test]
    fn cancel_after_fire_leaves_no_bookkeeping() {
        // Regression: the seed implementation inserted every
        // cancelled-after-fire id into a HashSet that was never
        // drained, growing without bound over a long run.
        let mut q = EventQueue::new();
        let mut fired = Vec::new();
        for i in 0..1000 {
            fired.push(q.push(t(i), i));
        }
        while q.pop().is_some() {}
        for id in fired {
            assert!(!q.cancel(id), "already fired");
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.tracked_ids(), 0, "no residual bookkeeping");
    }

    #[test]
    fn arena_tracks_peak_concurrency_not_total_events() {
        // Interleaved push/pop keeps the arena at peak-pending size
        // even as total events scheduled grows without bound.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.push(t(round), round);
            q.push(t(round), round);
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.loc.len() <= 2,
            "arena grew to {} slots for 2 peak-pending events",
            q.loc.len()
        );
    }

    #[test]
    fn tracked_ids_always_equals_len() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64).map(|i| q.push(t(i % 7), i)).collect();
        assert_eq!(q.tracked_ids(), q.len());
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
            assert_eq!(q.tracked_ids(), q.len());
        }
        while q.pop().is_some() {
            assert_eq!(q.tracked_ids(), q.len());
        }
        assert_eq!(q.tracked_ids(), 0);
    }

    /// Nanosecond-scale times so events land in wheel buckets (seconds
    /// apart they overflow into the heap).
    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }

    #[test]
    fn near_future_events_stage_in_the_wheel() {
        let mut q = EventQueue::with_wheel();
        q.push(ns(100), "a"); // lone event: heap fast path
        q.push(ns(200), "b");
        q.push(ns(5_000), "c"); // a later bucket, same window
        assert_eq!(q.wheel_len(), 2, "b and c staged in the window");
        q.push(t(10), "far"); // seconds away: overflows to the heap
        assert_eq!(q.wheel_len(), 2);
        assert_eq!(q.len(), 4);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c", "far"]);
    }

    #[test]
    fn heap_only_queue_never_uses_the_wheel() {
        let mut q = EventQueue::heap_only();
        q.push(ns(100), "a");
        q.push(ns(200), "b");
        assert_eq!(q.wheel_len(), 0);
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn wheel_refills_from_heap_after_draining() {
        let mut q = EventQueue::with_wheel();
        q.push(ns(100), "near-a"); // lone event: heap fast path
        q.push(ns(200), "near-b"); // second event: wheel
                                   // Far beyond the window: heap.
        q.push(ns(50_000_000), "far-a");
        q.push(ns(50_000_001), "far-b");
        assert_eq!(q.wheel_len(), 1);
        assert_eq!(q.pop().unwrap().2, "near-a");
        assert_eq!(q.pop().unwrap().2, "near-b");
        // The wheel drained; the next pop re-anchors the window at the
        // heap minimum and migrates the in-window pair.
        assert_eq!(q.pop().unwrap().2, "far-a");
        assert_eq!(q.wheel_len(), 1, "far-b migrated into a bucket");
        assert_eq!(q.pop().unwrap().2, "far-b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_inside_active_wheel_bucket() {
        // Regression shape: cancel an entry from the *sorted* cursor
        // bucket (not its minimum), which must clear the sorted flag
        // and fix the swapped entry's back-pointer, then keep exact
        // pop order.
        let mut q = EventQueue::with_wheel();
        let ids: Vec<_> = (0..6).map(|i| q.push(ns(100 + i), i)).collect();
        assert_eq!(q.wheel_len(), 5, "one bucket holds all but the first");
        assert_eq!(q.peek_time(), Some(ns(100))); // sorts the bucket
        assert!(q.cancel(ids[3]));
        assert!(q.cancel(ids[1]));
        #[cfg(any(debug_assertions, feature = "audit"))]
        q.audit().expect("cancel inside sorted bucket is clean");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![0, 2, 4, 5]);
        assert_eq!(q.tracked_ids(), 0);
    }

    #[test]
    fn push_into_sorted_cursor_bucket_diverts_to_heap() {
        // Once the cursor bucket is activated (sorted), a same-bucket
        // push goes to the heap instead of dirtying the sort (which
        // would force a full bucket re-sort on the next pop); pops
        // still interleave both sides in exact (time, seq) order.
        let mut q = EventQueue::with_wheel();
        q.push(t(10), "anchor"); // lone event: heap fast path
        q.push(ns(300), "late"); // second event: wheel
        assert_eq!(q.wheel_len(), 1);
        assert_eq!(q.peek_time(), Some(ns(300))); // activates + sorts
        q.push(ns(100), "early"); // same bucket, already sorted
        assert_eq!(q.wheel_len(), 1, "diverted to the heap");
        assert_eq!(q.peek_time(), Some(ns(100)));
        assert_eq!(q.pop().unwrap().2, "early");
        assert_eq!(q.pop().unwrap().2, "late");
        assert_eq!(q.pop().unwrap().2, "anchor");
    }

    #[test]
    fn audit_passes_on_live_queue() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..200).map(|i| q.push(t(i % 13), i)).collect();
        q.audit().expect("fresh queue is consistent");
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
            q.audit().expect("cancel preserves invariants");
        }
        while q.pop().is_some() {
            q.audit().expect("pop preserves invariants");
        }
    }

    #[test]
    fn audit_passes_on_wheel_heavy_queue() {
        let mut q = EventQueue::with_wheel();
        let ids: Vec<_> = (0u64..300)
            .map(|i| q.push(ns(i * 6700 % 2_000_000), i))
            .collect();
        assert!(q.wheel_len() > 0, "wheel engaged");
        q.audit().expect("mixed wheel/heap queue is consistent");
        for id in ids.iter().step_by(5) {
            q.cancel(*id);
            q.audit().expect("cancel preserves invariants");
        }
        while q.pop().is_some() {
            q.audit().expect("pop preserves invariants");
        }
    }

    #[test]
    fn audit_detects_heap_order_corruption() {
        let mut q = EventQueue::heap_only();
        for i in 0..20 {
            q.push(t(i), i);
        }
        // Swap the root with a leaf without fixing key order: the
        // (time, seq) key at the leaf's parent now exceeds the leaf.
        let last = q.heap.len() - 1;
        q.heap.swap(0, last);
        q.loc[q.heap[0].slot as usize] = Loc::Heap(0);
        q.loc[q.heap[last].slot as usize] = Loc::Heap(last as u32);
        let err = q.audit().expect_err("corrupted heap must be detected");
        assert_eq!(err.invariant, "heap-order", "{err}");
    }

    #[test]
    fn audit_detects_stale_back_pointer() {
        let mut q = EventQueue::heap_only();
        for i in 0..8 {
            q.push(t(i), i);
        }
        let slot = q.heap[3].slot as usize;
        q.loc[slot] = Loc::Heap(0); // points at the wrong heap position
        let err = q.audit().expect_err("stale loc must be detected");
        assert_eq!(err.invariant, "heap-idx", "{err}");
    }

    #[test]
    fn audit_detects_missing_payload() {
        let mut q = EventQueue::heap_only();
        for i in 0..4 {
            q.push(t(i), i);
        }
        let slot = q.heap[2].slot as usize;
        q.payloads[slot] = None; // live entry, dead payload
        let err = q.audit().expect_err("payload leak must be detected");
        assert_eq!(err.invariant, "payload-liveness", "{err}");
    }

    #[test]
    fn audit_detects_double_owned_slot() {
        let mut q = EventQueue::heap_only();
        for i in 0..4 {
            q.push(t(i), i);
        }
        // A slot that is both live in the heap and on the free list
        // would hand the same arena cell to two future events.
        let slot = q.heap[1].slot;
        q.free.push((slot, 7));
        let err = q.audit().expect_err("double ownership must be detected");
        assert_eq!(err.invariant, "arena-free", "{err}");
    }

    #[test]
    fn audit_detects_wheel_bitmap_drift() {
        let mut q = EventQueue::with_wheel();
        q.push(ns(100), 0); // lone event: heap fast path
        q.push(ns(200), 1); // wheel
        q.occupied = [0; WHEEL_WORDS]; // bitmap says empty, bucket is not
        let err = q.audit().expect_err("bitmap drift must be detected");
        assert_eq!(err.invariant, "wheel-bitmap", "{err}");
    }

    #[test]
    fn audit_detects_wheel_range_violation() {
        let mut q = EventQueue::with_wheel();
        q.push(t(10), 9); // lone event: heap fast path
        q.push(ns(100), 0);
        q.push(ns(100 + GRANULE_NS), 1); // the next bucket over
                                         // Move the second entry into the first entry's bucket without
                                         // changing its time: it no longer matches the bucket's range.
        let b0 = (100u64.saturating_sub(q.wheel_base_ns) >> GRANULE_BITS) as usize;
        let stray = q.wheel[b0 + 1].pop().unwrap();
        q.occupied[(b0 + 1) / 64] &= !(1u64 << ((b0 + 1) % 64));
        q.wheel[b0].push(stray);
        q.loc[stray.slot as usize] = Loc::Wheel {
            bucket: b0 as u16,
            pos: 1,
        };
        let err = q.audit().expect_err("misfiled entry must be detected");
        assert_eq!(err.invariant, "wheel-range", "{err}");
    }

    #[test]
    fn audit_detects_stale_wheel_back_pointer() {
        let mut q = EventQueue::with_wheel();
        q.push(t(10), 9); // lone event: heap fast path
        q.push(ns(100), 0);
        q.push(ns(150), 1); // same bucket, position 1
        let slot = q.wheel.iter().flatten().nth(1).unwrap().slot as usize;
        q.loc[slot] = Loc::Heap(0);
        let err = q.audit().expect_err("stale wheel loc must be detected");
        assert_eq!(err.invariant, "wheel-loc", "{err}");
    }

    #[test]
    fn audit_detects_wheel_count_drift() {
        let mut q = EventQueue::with_wheel();
        q.push(ns(100), 0);
        q.wheel_len = 2;
        let err = q.audit().expect_err("count drift must be detected");
        assert_eq!(err.invariant, "wheel-count", "{err}");
    }

    #[test]
    fn interleaved_push_pop_cancel_keeps_order() {
        let mut q = EventQueue::new();
        let a = q.push(t(5), "a");
        q.push(t(1), "b");
        q.push(t(3), "c");
        assert_eq!(q.pop().unwrap().2, "b");
        q.cancel(a);
        q.push(t(2), "d");
        assert_eq!(q.pop().unwrap().2, "d");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference model: a flat vector, popped by scanning for
    /// the `(time, arrival)` minimum. Arrival order is tracked with an
    /// explicit sequence counter because [`EventId`] handles encode
    /// `(generation, slot)`, not scheduling order.
    #[derive(Default)]
    struct NaiveQueue {
        live: Vec<(u64, u64, EventId)>,
        next_seq: u64,
    }

    impl NaiveQueue {
        fn push(&mut self, time: u64, id: EventId) {
            self.live.push((time, self.next_seq, id));
            self.next_seq += 1;
        }

        fn cancel(&mut self, id: EventId) -> bool {
            match self.live.iter().position(|(_, _, i)| *i == id) {
                Some(k) => {
                    self.live.remove(k);
                    true
                }
                None => false,
            }
        }

        fn pop(&mut self) -> Option<(u64, EventId)> {
            let k = self
                .live
                .iter()
                .enumerate()
                .min_by_key(|(_, (t, seq, _))| (*t, *seq))
                .map(|(k, _)| k)?;
            let (t, _, id) = self.live.remove(k);
            Some((t, id))
        }
    }

    proptest! {
        /// The hybrid queue agrees with the naive model under random
        /// interleavings of push, pop and cancel — including cancels
        /// of already-fired and already-cancelled ids. Times are drawn
        /// at bucket scale so pushes exercise the wheel, the cursor
        /// bucket and same-bucket FIFO ties.
        #[test]
        fn matches_naive_model(ops in proptest::collection::vec((0u64..200, 0u8..10), 1..300)) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            let mut issued: Vec<EventId> = Vec::new();
            for (time, action) in ops {
                match action {
                    // 60%: push
                    0..=5 => {
                        let id = q.push(SimTime::from_nanos(time), time);
                        model.push(time, id);
                        issued.push(id);
                    }
                    // 20%: pop from both, compare
                    6..=7 => {
                        let got = q.pop().map(|(t, id, _)| (t.as_nanos(), id));
                        prop_assert_eq!(got, model.pop());
                    }
                    // 20%: cancel some issued id (may be live, fired,
                    // or already cancelled)
                    _ => {
                        if let Some(&victim) = issued.get(time as usize % issued.len().max(1)) {
                            prop_assert_eq!(q.cancel(victim), model.cancel(victim));
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.live.len());
                prop_assert_eq!(q.tracked_ids(), q.len());
                prop_assert_eq!(
                    q.peek_time().map(|t| t.as_nanos()),
                    model.live.iter().map(|(t, _, _)| *t).min()
                );
            }
            // Drain: remaining pops agree to the end.
            loop {
                let got = q.pop().map(|(t, id, _)| (t.as_nanos(), id));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }

        /// A mixed near/far/cancel schedule drains from the wheel
        /// hybrid in *exactly* the order the heap-only queue produces,
        /// id-for-id — the wheel is a layout change, never an ordering
        /// change. Times mix bucket-scale offsets, window-boundary
        /// values and far-future overflow.
        #[test]
        fn wheel_drains_identically_to_heap_only(
            ops in proptest::collection::vec((0u64..4u64, 0u64..u64::MAX, 0u8..10), 1..400)
        ) {
            let mut wheel = EventQueue::with_wheel();
            let mut heap = EventQueue::heap_only();
            let mut issued: Vec<EventId> = Vec::new();
            for (scale, raw, action) in ops {
                match action {
                    // 60%: push at near (bucket), window-edge, or far
                    // scale so entries land on both sides of the split
                    0..=5 => {
                        let t = match scale {
                            0 => raw % 500,                    // one bucket
                            1 => raw % (2 * WHEEL_SPAN_NS),    // around the window edge
                            2 => raw % 50_000_000,             // tens of ms: heap
                            _ => raw,                          // anywhere, incl. huge
                        };
                        let a = wheel.push(SimTime::from_nanos(t), t);
                        let b = heap.push(SimTime::from_nanos(t), t);
                        // Slot allocation is part of the contract:
                        // identical op sequences yield identical ids.
                        prop_assert_eq!(a, b);
                        issued.push(a);
                    }
                    // 20%: pop both, compare (time, id, payload)
                    6..=7 => {
                        prop_assert_eq!(wheel.pop(), heap.pop());
                    }
                    // 20%: cancel the same id on both
                    _ => {
                        if let Some(&victim) = issued.get(raw as usize % issued.len().max(1)) {
                            prop_assert_eq!(wheel.cancel(victim), heap.cancel(victim));
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.earliest_time(), heap.earliest_time());
            }
            #[cfg(any(debug_assertions, feature = "audit"))]
            wheel.audit().expect("hybrid invariants hold mid-drain");
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a.is_none(), b.is_none());
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert_eq!(x, y),
                    _ => break,
                }
            }
        }

        /// Same-time events pop in schedule (FIFO) order no matter how
        /// pushes interleave across instants.
        #[test]
        fn same_time_fifo(times in proptest::collection::vec(0u64..5, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            expected.sort(); // stable: FIFO within equal times
            let mut got = Vec::new();
            while let Some((t, _, i)) = q.pop() {
                got.push((t.as_nanos(), i));
            }
            prop_assert_eq!(got, expected);
        }

        /// `len` equals the number of pops remaining.
        #[test]
        fn len_matches_pop_count(times in proptest::collection::vec(0u64..100, 0..50)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_nanos(*t), ());
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() { popped += 1; }
            prop_assert_eq!(popped, times.len());
        }
    }
}
