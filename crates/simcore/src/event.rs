//! The pending-event set: a priority queue ordered by `(time,
//! sequence)` with O(log n) insert/pop and support for cancellation.
//!
//! Sequence numbers make same-time ordering deterministic: two events
//! scheduled for the same instant fire in the order they were
//! scheduled, regardless of heap internals.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// Identifies a scheduled event, for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

pub(crate) struct Scheduled<E> {
    pub time: SimTime,
    pub id: EventId,
    pub payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first,
        // then lowest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A cancellable min-priority queue of timestamped payloads.
///
/// This is the storage layer under [`crate::engine::Engine`]; it is
/// public so substrates that run their own micro-simulations (e.g. the
/// host CPU scheduler) can reuse it.
///
/// ```
/// use gridvm_simcore::event::EventQueue;
/// use gridvm_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_secs(2), "late");
/// let _b = q.push(SimTime::from_secs(1), "early");
/// q.cancel(a);
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(1), "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("cancelled", &self.cancelled.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }

    /// Schedules `payload` at `time`, returning a handle for
    /// cancellation.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled { time, id, payload });
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false` and is
    /// harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // Lazy deletion: remember the id, skip it when popped.
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest live event as
    /// `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            return Some((ev.time, ev.id, ev.payload));
        }
        None
    }

    /// The timestamp of the earliest live event, if any, without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let dead = self.heap.pop().expect("peeked event vanished");
                self.cancelled.remove(&dead.id);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 'c');
        q.push(t(1), 'a');
        q.push(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must always yield a non-decreasing time sequence,
        /// with schedule order breaking ties, for any interleaving of
        /// pushes and cancellations.
        #[test]
        fn pop_order_is_total(ops in proptest::collection::vec((0u64..1000, proptest::bool::weighted(0.2)), 1..200)) {
            let mut q = EventQueue::new();
            let mut live = Vec::new();
            for (time, cancel_one) in ops {
                let id = q.push(SimTime::from_nanos(time), time);
                live.push((time, id));
                if cancel_one && live.len() > 1 {
                    let (_, victim) = live.remove(live.len() / 2);
                    q.cancel(victim);
                }
            }
            let mut expected: Vec<(u64, EventId)> = live;
            expected.sort_by_key(|(t, id)| (*t, *id));
            let mut got = Vec::new();
            while let Some((t, id, _)) = q.pop() {
                got.push((t.as_nanos(), id));
            }
            prop_assert_eq!(got, expected);
        }

        /// `len` equals the number of pops remaining.
        #[test]
        fn len_matches_pop_count(times in proptest::collection::vec(0u64..100, 0..50)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_nanos(*t), ());
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() { popped += 1; }
            prop_assert_eq!(popped, times.len());
        }
    }
}
