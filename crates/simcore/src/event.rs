//! The pending-event set: an index-tracked d-ary min-heap ordered by
//! `(time, sequence)` with O(log n) push/pop and true in-place O(log n)
//! cancellation — and no hashing anywhere on the hot path.
//!
//! Sequence numbers make same-time ordering deterministic: two events
//! scheduled for the same instant fire in the order they were
//! scheduled, regardless of heap internals.
//!
//! Unlike the earlier `BinaryHeap` + tombstone-set design, cancellation
//! removes the entry from the heap immediately: each pending event
//! lives in a generation-stamped arena slot that records its current
//! heap index, and the [`EventId`] handle encodes `(generation, slot)`.
//! Cancel is a direct arena probe (stale handles fail the generation
//! check), so a long-running simulation carries no dead entries:
//! nothing is re-heapified on pop, and cancelling an already-fired id
//! leaves no residual bookkeeping behind.

use std::fmt;

use crate::time::SimTime;

/// Heap arity. Four keeps the tree shallow (log₄ n levels, half the
/// element moves of a binary heap) while the child scan stays within
/// one cache line of 24-byte heap entries — measurably faster than
/// binary on the pop-heavy simulation loop.
const D: usize = 4;

/// Identifies a scheduled event, for cancellation.
///
/// The handle packs the event's arena slot in the low 32 bits and the
/// slot's generation stamp in the high 32 bits. Slots are recycled
/// after an event fires or is cancelled, bumping the generation, so a
/// stale handle can never cancel an unrelated later event. Handles
/// compare by raw value only; scheduling order is *not* recoverable
/// from them (the queue keeps a separate sequence number for
/// deterministic FIFO tie-breaking).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    fn pack(gen: u32, slot: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}g{}", self.slot(), self.gen())
    }
}

/// A compact heap record: the `(time, sequence)` ordering key plus the
/// arena slot of its payload and the slot's generation stamp (carried
/// inline so pop can reconstruct the [`EventId`] without a random
/// arena read). Kept `Copy` and 24 bytes so sift steps move entries
/// through contiguous memory, exactly like the `BinaryHeap` it
/// replaces.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A cancellable min-priority queue of timestamped payloads.
///
/// This is the storage layer under [`crate::engine::Engine`]; it is
/// public so substrates that run their own micro-simulations (e.g. the
/// host CPU scheduler) can reuse it.
///
/// ```
/// use gridvm_simcore::event::EventQueue;
/// use gridvm_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.push(SimTime::from_secs(2), "late");
/// let _b = q.push(SimTime::from_secs(1), "early");
/// q.cancel(a);
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(1), "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Implicit d-ary min-heap of `(time, sequence)` keys.
    heap: Vec<HeapEntry>,
    /// Heap index of each slot's entry, maintained by the sift steps
    /// with plain vector writes (so cancellation finds its target
    /// without searching or hashing). Stale for free slots; cancel
    /// validates against the heap entry itself.
    heap_idx: Vec<u32>,
    /// Payloads, indexed by `HeapEntry::slot`; slots are recycled
    /// through `free`, so arena size tracks peak concurrency, not
    /// total events scheduled.
    payloads: Vec<Option<E>>,
    /// Recycled slots, each carrying the generation its next occupant
    /// will get (one past the generation that just died, so stale
    /// handles can never validate).
    free: Vec<(u32, u32)>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            heap_idx: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Hole-style sift toward the root: parents shift down one level
    /// at a time (one position write each) and the moving entry lands
    /// once at its final index.
    fn sift_up(&mut self, mut i: usize) {
        let Self { heap, heap_idx, .. } = self;
        let entry = heap[i];
        let key = entry.key();
        while i > 0 {
            let parent = (i - 1) / D;
            let p = heap[parent];
            if key < p.key() {
                heap[i] = p;
                heap_idx[p.slot as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        heap[i] = entry;
        heap_idx[entry.slot as usize] = i as u32;
    }

    /// Hole-style sift toward the leaves: the smallest child shifts up
    /// one level at a time and the moving entry lands once.
    fn sift_down(&mut self, mut i: usize) {
        let Self { heap, heap_idx, .. } = self;
        let entry = heap[i];
        let key = entry.key();
        let len = heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let mut best_entry = heap[first];
            for (off, e) in heap[first + 1..(first + D).min(len)].iter().enumerate() {
                if e.key() < best_entry.key() {
                    best = first + 1 + off;
                    best_entry = *e;
                }
            }
            if best_entry.key() < key {
                heap[i] = best_entry;
                heap_idx[best_entry.slot as usize] = i as u32;
                i = best;
            } else {
                break;
            }
        }
        heap[i] = entry;
        heap_idx[entry.slot as usize] = i as u32;
    }

    /// Pop-path sift: the hole at `i` walks straight to the bottom,
    /// promoting the smallest child at each level without comparing
    /// against the moving key (it came from a leaf and almost always
    /// belongs back at one), then the moving entry sifts up from the
    /// leaf hole. Fewer, better-predicted comparisons than the
    /// early-exit sift on the pop-heavy simulation loop — the same
    /// strategy `std::collections::BinaryHeap` uses.
    fn sift_down_to_bottom(&mut self, mut i: usize) {
        let Self { heap, heap_idx, .. } = self;
        let entry = heap[i];
        let len = heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let mut best_entry = heap[first];
            for (off, e) in heap[first + 1..(first + D).min(len)].iter().enumerate() {
                if e.key() < best_entry.key() {
                    best = first + 1 + off;
                    best_entry = *e;
                }
            }
            heap[i] = best_entry;
            heap_idx[best_entry.slot as usize] = i as u32;
            i = best;
        }
        let key = entry.key();
        while i > 0 {
            let parent = (i - 1) / D;
            let p = heap[parent];
            if key < p.key() {
                heap[i] = p;
                heap_idx[p.slot as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        heap[i] = entry;
        heap_idx[entry.slot as usize] = i as u32;
    }

    /// Restores the heap property for an index whose entry changed.
    fn sift(&mut self, i: usize) {
        if i > 0 && self.heap[i].key() < self.heap[(i - 1) / D].key() {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Schedules `payload` at `time`, returning a handle for
    /// cancellation.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some((s, g)) => {
                self.payloads[s as usize] = Some(payload);
                (s, g)
            }
            None => {
                if self.heap_idx.len() == self.heap_idx.capacity() {
                    // The heap, index and payload arrays grow in
                    // lockstep; doubling each independently would
                    // double the realloc copy traffic of a
                    // single-array design, so grow 4x at a time to
                    // keep total copied bytes comparable.
                    let add = (self.heap_idx.len() * 3).max(64);
                    self.heap_idx.reserve(add);
                    self.payloads.reserve(add);
                    self.heap.reserve(add);
                }
                self.heap_idx.push(0);
                self.payloads.push(Some(payload));
                ((self.heap_idx.len() - 1) as u32, 0)
            }
        };
        let i = self.heap.len();
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            gen,
        });
        self.sift_up(i);
        EventId::pack(gen, slot)
    }

    /// Recycles an arena slot, invalidating every outstanding handle
    /// to its dead generation.
    fn release(&mut self, slot: u32, gen: u32) {
        self.free.push((slot, gen.wrapping_add(1)));
    }

    /// Cancels a previously scheduled event, removing it from the heap
    /// in place.
    ///
    /// Returns `true` if the event was still pending. Cancelling an
    /// already-fired or already-cancelled event returns `false`, is
    /// harmless, and leaves no bookkeeping behind.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        // The handle is live iff the slot's recorded heap position
        // holds an entry for this exact (slot, generation) pair;
        // anything stale — fired, cancelled, recycled — fails here.
        let Some(&i) = self.heap_idx.get(slot as usize) else {
            return false;
        };
        let i = i as usize;
        match self.heap.get(i) {
            Some(e) if e.slot == slot && e.gen == id.gen() => {}
            _ => return false,
        }
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.heap.pop();
        if i < last {
            self.sift(i);
        }
        self.payloads[slot as usize] = None;
        self.release(slot, id.gen());
        true
    }

    /// Removes and returns the earliest live event as
    /// `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let root = *self.heap.first()?;
        let tail = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = tail;
            self.sift_down_to_bottom(0);
        }
        let payload = self.payloads[root.slot as usize]
            .take()
            .expect("live heap entry has a payload");
        self.release(root.slot, root.gen);
        Some((root.time, EventId::pack(root.gen, root.slot), payload))
    }

    /// The timestamp of the earliest live event, if any, without
    /// removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event. Outstanding handles are invalidated,
    /// not leaked: their slots are recycled with a bumped generation.
    pub fn clear(&mut self) {
        while let Some(e) = self.heap.pop() {
            self.payloads[e.slot as usize] = None;
            self.release(e.slot, e.gen);
        }
    }

    /// Re-verifies the queue's structural invariants from first
    /// principles (runtime audit layer; see [`crate::audit`]):
    /// heap ordering, `heap_idx` back-pointers, payload liveness,
    /// slot-arena/free-list partition, and sequence-counter sanity.
    ///
    /// O(n log n) in pending events — called periodically by
    /// [`crate::engine::Engine::step`], directly by tests.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub fn audit(&self) -> crate::audit::AuditResult {
        use crate::audit::violated;
        // Heap property over the (time, seq) key.
        for i in 1..self.heap.len() {
            let parent = (i - 1) / D;
            if self.heap[i].key() < self.heap[parent].key() {
                return violated(
                    "heap-order",
                    format!(
                        "entry {i} (t={}, seq={}) sorts before its parent {parent} \
                         (t={}, seq={})",
                        self.heap[i].time,
                        self.heap[i].seq,
                        self.heap[parent].time,
                        self.heap[parent].seq
                    ),
                );
            }
        }
        // Back-pointers, payload liveness, sequence sanity.
        for (i, e) in self.heap.iter().enumerate() {
            let slot = e.slot as usize;
            match self.heap_idx.get(slot) {
                Some(&idx) if idx as usize == i => {}
                other => {
                    return violated(
                        "heap-idx",
                        format!("heap entry {i} for slot {slot}: heap_idx says {other:?}"),
                    );
                }
            }
            if self.payloads.get(slot).is_none_or(|p| p.is_none()) {
                return violated(
                    "payload-liveness",
                    format!("heap entry {i} points at slot {slot} with no payload"),
                );
            }
            if e.seq >= self.next_seq {
                return violated(
                    "seq-counter",
                    format!(
                        "heap entry {i} carries seq {} but next_seq is {}",
                        e.seq, self.next_seq
                    ),
                );
            }
        }
        // Each arena slot lives in exactly one of {heap, free list},
        // and free slots hold no payload.
        let mut owner = vec![0u8; self.payloads.len()];
        for e in &self.heap {
            owner[e.slot as usize] += 1;
        }
        for &(slot, _gen) in &self.free {
            let slot = slot as usize;
            owner[slot] += 2;
            if self.payloads.get(slot).is_some_and(Option::is_some) {
                return violated(
                    "arena-free",
                    format!("free-listed slot {slot} still holds a payload"),
                );
            }
        }
        for (slot, &o) in owner.iter().enumerate() {
            if o != 1 && o != 2 {
                return violated(
                    "arena-partition",
                    format!(
                        "slot {slot} is owned by {} (1=heap once, 2=free once)",
                        match o {
                            0 => "neither heap nor free list".to_owned(),
                            n => format!("code {n}: multiple owners"),
                        }
                    ),
                );
            }
        }
        Ok(())
    }

    /// Number of arena slots currently holding a live event, counted
    /// from the allocator's own books (`slots` minus the free list).
    /// Always equals [`len`](Self::len) when no bookkeeping leaks;
    /// exposed so tests can assert that cancel and pop release every
    /// slot (the seed implementation's tombstone set grew without
    /// bound on cancel-after-fire).
    pub fn tracked_ids(&self) -> usize {
        self.heap_idx.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 'c');
        q.push(t(1), 'a');
        q.push(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
        assert_eq!(q.tracked_ids(), 0);
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuse() {
        // After an event fires, its arena slot is recycled for later
        // events; the fired handle's generation no longer matches, so
        // it must not cancel the unrelated newcomer.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop().unwrap().2, "a");
        let b = q.push(t(2), "b"); // reuses a's slot
        assert!(!q.cancel(a), "stale handle rejected");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        for id in &ids {
            assert!(!q.cancel(*id), "clear invalidates outstanding handles");
        }
    }

    #[test]
    fn cancel_after_fire_leaves_no_bookkeeping() {
        // Regression: the seed implementation inserted every
        // cancelled-after-fire id into a HashSet that was never
        // drained, growing without bound over a long run.
        let mut q = EventQueue::new();
        let mut fired = Vec::new();
        for i in 0..1000 {
            fired.push(q.push(t(i), i));
        }
        while q.pop().is_some() {}
        for id in fired {
            assert!(!q.cancel(id), "already fired");
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.tracked_ids(), 0, "no residual bookkeeping");
    }

    #[test]
    fn arena_tracks_peak_concurrency_not_total_events() {
        // Interleaved push/pop keeps the arena at peak-pending size
        // even as total events scheduled grows without bound.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.push(t(round), round);
            q.push(t(round), round);
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.heap_idx.len() <= 2,
            "arena grew to {} slots for 2 peak-pending events",
            q.heap_idx.len()
        );
    }

    #[test]
    fn tracked_ids_always_equals_len() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64).map(|i| q.push(t(i % 7), i)).collect();
        assert_eq!(q.tracked_ids(), q.len());
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
            assert_eq!(q.tracked_ids(), q.len());
        }
        while q.pop().is_some() {
            assert_eq!(q.tracked_ids(), q.len());
        }
        assert_eq!(q.tracked_ids(), 0);
    }

    #[test]
    fn audit_passes_on_live_queue() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..200).map(|i| q.push(t(i % 13), i)).collect();
        q.audit().expect("fresh queue is consistent");
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
            q.audit().expect("cancel preserves invariants");
        }
        while q.pop().is_some() {
            q.audit().expect("pop preserves invariants");
        }
    }

    #[test]
    fn audit_detects_heap_order_corruption() {
        let mut q = EventQueue::new();
        for i in 0..20 {
            q.push(t(i), i);
        }
        // Swap the root with a leaf without fixing heap_idx-relative
        // order: the (time, seq) key at the leaf's parent now exceeds
        // the leaf.
        let last = q.heap.len() - 1;
        q.heap.swap(0, last);
        q.heap_idx[q.heap[0].slot as usize] = 0;
        q.heap_idx[q.heap[last].slot as usize] = last as u32;
        let err = q.audit().expect_err("corrupted heap must be detected");
        assert_eq!(err.invariant, "heap-order", "{err}");
    }

    #[test]
    fn audit_detects_stale_back_pointer() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.push(t(i), i);
        }
        let slot = q.heap[3].slot as usize;
        q.heap_idx[slot] = 0; // points at the wrong heap position
        let err = q.audit().expect_err("stale heap_idx must be detected");
        assert_eq!(err.invariant, "heap-idx", "{err}");
    }

    #[test]
    fn audit_detects_missing_payload() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(t(i), i);
        }
        let slot = q.heap[2].slot as usize;
        q.payloads[slot] = None; // live entry, dead payload
        let err = q.audit().expect_err("payload leak must be detected");
        assert_eq!(err.invariant, "payload-liveness", "{err}");
    }

    #[test]
    fn audit_detects_double_owned_slot() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(t(i), i);
        }
        // A slot that is both live in the heap and on the free list
        // would hand the same arena cell to two future events.
        let slot = q.heap[1].slot;
        q.free.push((slot, 7));
        let err = q.audit().expect_err("double ownership must be detected");
        assert_eq!(err.invariant, "arena-free", "{err}");
    }

    #[test]
    fn interleaved_push_pop_cancel_keeps_order() {
        let mut q = EventQueue::new();
        let a = q.push(t(5), "a");
        q.push(t(1), "b");
        q.push(t(3), "c");
        assert_eq!(q.pop().unwrap().2, "b");
        q.cancel(a);
        q.push(t(2), "d");
        assert_eq!(q.pop().unwrap().2, "d");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference model: a flat vector, popped by scanning for
    /// the `(time, arrival)` minimum. Arrival order is tracked with an
    /// explicit sequence counter because [`EventId`] handles encode
    /// `(generation, slot)`, not scheduling order.
    #[derive(Default)]
    struct NaiveQueue {
        live: Vec<(u64, u64, EventId)>,
        next_seq: u64,
    }

    impl NaiveQueue {
        fn push(&mut self, time: u64, id: EventId) {
            self.live.push((time, self.next_seq, id));
            self.next_seq += 1;
        }

        fn cancel(&mut self, id: EventId) -> bool {
            match self.live.iter().position(|(_, _, i)| *i == id) {
                Some(k) => {
                    self.live.remove(k);
                    true
                }
                None => false,
            }
        }

        fn pop(&mut self) -> Option<(u64, EventId)> {
            let k = self
                .live
                .iter()
                .enumerate()
                .min_by_key(|(_, (t, seq, _))| (*t, *seq))
                .map(|(k, _)| k)?;
            let (t, _, id) = self.live.remove(k);
            Some((t, id))
        }
    }

    proptest! {
        /// The indexed heap agrees with the naive model under random
        /// interleavings of push, pop and cancel — including cancels
        /// of already-fired and already-cancelled ids.
        #[test]
        fn matches_naive_model(ops in proptest::collection::vec((0u64..200, 0u8..10), 1..300)) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            let mut issued: Vec<EventId> = Vec::new();
            for (time, action) in ops {
                match action {
                    // 60%: push
                    0..=5 => {
                        let id = q.push(SimTime::from_nanos(time), time);
                        model.push(time, id);
                        issued.push(id);
                    }
                    // 20%: pop from both, compare
                    6..=7 => {
                        let got = q.pop().map(|(t, id, _)| (t.as_nanos(), id));
                        prop_assert_eq!(got, model.pop());
                    }
                    // 20%: cancel some issued id (may be live, fired,
                    // or already cancelled)
                    _ => {
                        if let Some(&victim) = issued.get(time as usize % issued.len().max(1)) {
                            prop_assert_eq!(q.cancel(victim), model.cancel(victim));
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.live.len());
                prop_assert_eq!(q.tracked_ids(), q.len());
                prop_assert_eq!(
                    q.peek_time().map(|t| t.as_nanos()),
                    model.live.iter().map(|(t, _, _)| *t).min()
                );
            }
            // Drain: remaining pops agree to the end.
            loop {
                let got = q.pop().map(|(t, id, _)| (t.as_nanos(), id));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }

        /// Same-time events pop in schedule (FIFO) order no matter how
        /// pushes interleave across instants.
        #[test]
        fn same_time_fifo(times in proptest::collection::vec(0u64..5, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            expected.sort(); // stable: FIFO within equal times
            let mut got = Vec::new();
            while let Some((t, _, i)) = q.pop() {
                got.push((t.as_nanos(), i));
            }
            prop_assert_eq!(got, expected);
        }

        /// `len` equals the number of pops remaining.
        #[test]
        fn len_matches_pop_count(times in proptest::collection::vec(0u64..100, 0..50)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_nanos(*t), ());
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() { popped += 1; }
            prop_assert_eq!(popped, times.len());
        }
    }
}
