//! Parallel, deterministic replication of independent simulations.
//!
//! Every experiment in the suite is N independent replications of a
//! deterministic simulation. The [`ReplicationRunner`] fans those
//! replications out across OS threads with `std::thread::scope` (no
//! external dependencies), while keeping the results bit-identical
//! for any thread count:
//!
//! * each replication's seed is a pure function of
//!   `(master_seed, replication_index)` — see [`derive_seed`] — so a
//!   replication computes the same thing no matter which thread picks
//!   it up;
//! * results are returned in replication-index order;
//! * each replication runs against a fresh thread-local
//!   [`metrics`](crate::metrics) context, and the per-replication
//!   registries are merged in index order, so merged metrics are also
//!   independent of scheduling.
//!
//! ```
//! use gridvm_simcore::replication::ReplicationRunner;
//!
//! let serial = ReplicationRunner::new(1).run(42, 8, |ctx| ctx.rng().next_u64());
//! let parallel = ReplicationRunner::new(4).run(42, 8, |ctx| ctx.rng().next_u64());
//! assert_eq!(serial.results, parallel.results);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::{self, Metrics};
use crate::rng::SimRng;

/// Derives the seed of one replication from the experiment's master
/// seed. A pure SplitMix64-style mix: changing either input scrambles
/// the output, and `(master, 0)` differs from `master` itself, so a
/// replication's stream never aliases the master stream.
pub fn derive_seed(master_seed: u64, replication_index: u64) -> u64 {
    let mut z = master_seed ^ replication_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a shard index into an already-derived seed with a second
/// full SplitMix64 round keyed by a distinct odd constant, so the
/// `(master, index, shard)` streams can alias neither each other nor
/// the unsharded `(master, index)` stream — shard 0 is *not* the
/// plain replication seed.
fn mix_shard(base: u64, shard_index: u64) -> u64 {
    let mut z = base ^ shard_index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one shard (site) of one replication from the
/// experiment's master seed: [`derive_seed`]`(master, index)` folded
/// with the shard index. Used when a replication itself runs as a
/// sharded world ([`crate::shard`]) so per-shard RNG streams cannot
/// collide across replications or with the replication's own stream.
pub fn derive_seed_sharded(master_seed: u64, replication_index: u64, shard_index: u64) -> u64 {
    mix_shard(derive_seed(master_seed, replication_index), shard_index)
}

/// Derives an independent sub-stream of one site's seed — stream 0
/// for the workload RNG, stream 1 for trace-sampling decisions, and
/// so on. A further full mix round over an offset base, so stream
/// seeds alias neither each other nor any `(master, index, shard)`
/// seed: the macro-scale worlds need a site's sampling decisions to
/// stay fixed when its workload draw count changes.
pub fn derive_seed_stream(site_seed: u64, stream_index: u64) -> u64 {
    mix_shard(site_seed ^ 0x5851_F42D_4C95_7F2D, stream_index)
}

/// What one replication closure receives: its index and derived seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationCtx {
    /// Zero-based replication index.
    pub index: usize,
    /// Seed derived from `(master_seed, index)`.
    pub seed: u64,
}

impl ReplicationCtx {
    /// A generator seeded with this replication's derived seed.
    pub fn rng(&self) -> SimRng {
        SimRng::seed_from(self.seed)
    }

    /// The seed of one shard (site) of this replication. When the
    /// context's seed came from [`derive_seed`], this equals
    /// [`derive_seed_sharded`]`(master, index, shard)`.
    pub fn shard_seed(&self, shard_index: u64) -> u64 {
        mix_shard(self.seed, shard_index)
    }

    /// A generator seeded for one shard (site) of this replication.
    pub fn shard_rng(&self, shard_index: u64) -> SimRng {
        SimRng::seed_from(self.shard_seed(shard_index))
    }
}

/// Everything a batch of replications produced.
#[derive(Clone, Debug)]
pub struct ReplicationOutcome<R> {
    /// Per-replication results, in replication-index order.
    pub results: Vec<R>,
    /// Each replication's metrics registry, in index order.
    pub replication_metrics: Vec<Metrics>,
    /// All registries merged in index order.
    pub merged_metrics: Metrics,
}

/// Fans independent replications out across OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationRunner {
    threads: usize,
}

impl ReplicationRunner {
    /// A runner using `threads` OS threads; `0` means "one per
    /// available core".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ReplicationRunner { threads }
    }

    /// The worker-thread count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `replications` instances of `f`, replication `i` seeded
    /// with [`derive_seed`]`(master_seed, i)`. Results and metrics are
    /// identical for every thread count.
    pub fn run<R, F>(&self, master_seed: u64, replications: usize, f: F) -> ReplicationOutcome<R>
    where
        R: Send,
        F: Fn(&ReplicationCtx) -> R + Sync,
    {
        let seeds: Vec<u64> = (0..replications)
            .map(|i| derive_seed(master_seed, i as u64))
            .collect();
        self.run_seeded(&seeds, f)
    }

    /// Runs one replication per entry of `seeds` (replication `i`
    /// gets `seeds[i]`). The general form used by harnesses that
    /// derive seeds from richer lineages (e.g. per-scenario labels).
    pub fn run_seeded<R, F>(&self, seeds: &[u64], f: F) -> ReplicationOutcome<R>
    where
        R: Send,
        F: Fn(&ReplicationCtx) -> R + Sync,
    {
        let n = seeds.len();
        let workers = self.threads.min(n.max(1));
        let run_one = |index: usize| {
            let ctx = ReplicationCtx {
                index,
                seed: seeds[index],
            };
            // A fresh context per replication: activity from other
            // replications sharing this OS thread must not bleed in.
            // Pre-sized to the counters registered so far, so hot
            // Counter::add calls never regrow the cell vector
            // mid-replication.
            metrics::reset_presized();
            let result = f(&ctx);
            (result, metrics::take())
        };

        let mut indexed: Vec<(usize, R, Metrics)> = if workers <= 1 {
            (0..n)
                .map(|i| {
                    let (r, m) = run_one(i);
                    (i, r, m)
                })
                .collect()
        } else {
            // Work-stealing over an atomic cursor: replication order
            // of *execution* varies with scheduling, but results are
            // keyed by index, so assembly below is deterministic.
            let next = AtomicUsize::new(0);
            let mut batches = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        // audit:allow(shard-state-escape): work-stealing counter is borrowed only for the scope; results are reassembled by index after join
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let (r, m) = run_one(i);
                                mine.push((i, r, m));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("replication worker panicked"))
                    .collect::<Vec<_>>()
            });
            let mut all: Vec<(usize, R, Metrics)> = batches.drain(..).flatten().collect();
            all.sort_by_key(|(i, _, _)| *i);
            all
        };

        let mut results = Vec::with_capacity(n);
        let mut replication_metrics = Vec::with_capacity(n);
        let mut merged_metrics = Metrics::new();
        for (expected, (i, r, m)) in indexed.drain(..).enumerate() {
            debug_assert_eq!(i, expected, "replication results out of order");
            merged_metrics.merge(&m);
            results.push(r);
            replication_metrics.push(m);
        }
        ReplicationOutcome {
            results,
            replication_metrics,
            merged_metrics,
        }
    }
}

impl Default for ReplicationRunner {
    fn default() -> Self {
        ReplicationRunner::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a = derive_seed(1, 0);
        assert_eq!(a, derive_seed(1, 0));
        assert_ne!(a, derive_seed(1, 1));
        assert_ne!(a, derive_seed(2, 0));
        assert_ne!(a, 1, "replication 0 must not alias the master seed");
    }

    #[test]
    fn sharded_seeds_are_distinct_from_each_other_and_the_base_stream() {
        let base = derive_seed(7, 3);
        let s0 = derive_seed_sharded(7, 3, 0);
        let s1 = derive_seed_sharded(7, 3, 1);
        assert_eq!(s0, derive_seed_sharded(7, 3, 0), "pure function");
        assert_ne!(s0, s1, "shards draw distinct streams");
        assert_ne!(s0, base, "shard 0 must not alias the replication seed");
        assert_ne!(
            derive_seed_sharded(7, 2, 1),
            derive_seed_sharded(7, 3, 1),
            "replication index still matters"
        );
        // The ctx helper agrees with the standalone derivation when the
        // ctx seed came from derive_seed.
        let ctx = ReplicationCtx {
            index: 3,
            seed: base,
        };
        assert_eq!(ctx.shard_seed(1), s1);
        let mut rng = ctx.shard_rng(1);
        assert_eq!(rng.next_u64(), SimRng::seed_from(s1).next_u64());
    }

    #[test]
    fn results_are_in_index_order() {
        let out = ReplicationRunner::new(4).run(7, 100, |ctx| ctx.index);
        assert_eq!(out.results, (0..100).collect::<Vec<_>>());
        assert_eq!(out.replication_metrics.len(), 100);
    }

    #[test]
    fn thread_count_does_not_change_results_or_metrics() {
        let work = |ctx: &ReplicationCtx| {
            let mut rng = ctx.rng();
            metrics::counter_add("test.draws", 3);
            metrics::timer_record("test.t", rng.next_f64());
            (0..3).fold(0u64, |acc, _| acc ^ rng.next_u64())
        };
        let serial = ReplicationRunner::new(1).run(99, 40, work);
        for threads in [2, 4, 8] {
            let parallel = ReplicationRunner::new(threads).run(99, 40, work);
            assert_eq!(serial.results, parallel.results, "threads={threads}");
            assert_eq!(
                serial.merged_metrics, parallel.merged_metrics,
                "threads={threads}"
            );
            assert_eq!(serial.replication_metrics, parallel.replication_metrics);
        }
        assert_eq!(serial.merged_metrics.counter("test.draws"), 120);
    }

    #[test]
    fn metrics_do_not_bleed_across_replications() {
        let out = ReplicationRunner::new(2).run(5, 10, |_| {
            metrics::counter_add("one", 1);
        });
        for m in &out.replication_metrics {
            assert_eq!(m.counter("one"), 1);
        }
        assert_eq!(out.merged_metrics.counter("one"), 10);
    }

    #[test]
    fn zero_replications_is_empty() {
        let out = ReplicationRunner::new(4).run(1, 0, |ctx| ctx.index);
        assert!(out.results.is_empty());
        assert!(out.merged_metrics.is_empty());
    }

    #[test]
    fn run_seeded_uses_given_seeds() {
        let seeds = [11u64, 22, 33];
        let out = ReplicationRunner::new(2).run_seeded(&seeds, |ctx| ctx.seed);
        assert_eq!(out.results, seeds);
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(ReplicationRunner::new(0).threads() >= 1);
        assert_eq!(ReplicationRunner::new(3).threads(), 3);
    }
}
