//! Synthetic host-load generation.
//!
//! The generator layers two processes, following the qualitative
//! findings of the host-load measurement literature (Dinda's PSC
//! traces):
//!
//! 1. a mean-reverting **AR(1)** base `x' = μ + φ(x − μ) + ε`
//!    producing the strong short-lag autocorrelation of load averages,
//!    and
//! 2. **Pareto-duration on/off bursts** adding the heavy-tailed
//!    epochal behaviour responsible for self-similarity (Hurst
//!    parameter ≈ 0.8–0.95).
//!
//! Samples are clamped to `[0, max_load]`. The three presets mirror
//! the paper's *none / light / heavy* background-load conditions.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimDuration;

use crate::trace::LoadTrace;

/// The paper's three background-load intensities (Figure 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// No background load at all.
    #[default]
    None,
    /// Light load: mean ≈ 0.25 runnable processes, rare bursts.
    Light,
    /// Heavy load: mean ≈ 1.0 runnable process, frequent multi-process
    /// bursts.
    Heavy,
}

impl LoadLevel {
    /// All three levels, in presentation order.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::None, LoadLevel::Light, LoadLevel::Heavy];

    /// Short lowercase label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            LoadLevel::None => "none",
            LoadLevel::Light => "light",
            LoadLevel::Heavy => "heavy",
        }
    }
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configurable synthetic load-trace generator.
///
/// ```
/// use gridvm_hostload::generator::{LoadLevel, TraceGenerator};
/// use gridvm_simcore::rng::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let trace = TraceGenerator::preset(LoadLevel::Heavy).generate(3_000, &mut rng);
/// assert_eq!(trace.len(), 3_000);
/// assert!(trace.mean() > 0.5, "heavy load should be substantial");
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    mean: f64,
    phi: f64,
    sigma: f64,
    burst_rate: f64,
    burst_height: f64,
    burst_alpha: f64,
    burst_min_len: f64,
    max_load: f64,
    interval: SimDuration,
}

impl TraceGenerator {
    /// Creates a generator with explicit AR and burst parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative, `phi` is outside `[0, 1)`,
    /// `sigma` is negative, or `max_load` is not positive.
    pub fn new(mean: f64, phi: f64, sigma: f64) -> Self {
        assert!(mean >= 0.0, "negative mean load");
        assert!((0.0..1.0).contains(&phi), "phi must be in [0,1)");
        assert!(sigma >= 0.0, "negative sigma");
        TraceGenerator {
            mean,
            phi,
            sigma,
            burst_rate: 0.0,
            burst_height: 0.0,
            burst_alpha: 1.5,
            burst_min_len: 2.0,
            max_load: 8.0,
            interval: SimDuration::from_millis(1000),
        }
    }

    /// The generator matching one of the paper's load levels.
    pub fn preset(level: LoadLevel) -> Self {
        match level {
            LoadLevel::None => TraceGenerator::new(0.0, 0.0, 0.0),
            LoadLevel::Light => {
                let mut g = TraceGenerator::new(0.2, 0.95, 0.05);
                g = g.with_bursts(0.01, 0.8, 1.5, 3.0);
                g
            }
            LoadLevel::Heavy => {
                let mut g = TraceGenerator::new(0.9, 0.97, 0.08);
                g = g.with_bursts(0.04, 1.5, 1.3, 5.0);
                g
            }
        }
    }

    /// Adds Pareto-duration on/off bursts: bursts begin per-sample
    /// with probability `rate`, add `height` load, and last
    /// `Pareto(min_len, alpha)` samples.
    ///
    /// # Panics
    ///
    /// Panics on negative `rate`/`height` or non-positive
    /// `alpha`/`min_len`.
    pub fn with_bursts(mut self, rate: f64, height: f64, alpha: f64, min_len: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "burst rate must be in [0,1]");
        assert!(height >= 0.0, "negative burst height");
        assert!(alpha > 0.0 && min_len > 0.0, "non-positive burst shape");
        self.burst_rate = rate;
        self.burst_height = height;
        self.burst_alpha = alpha;
        self.burst_min_len = min_len;
        self
    }

    /// Overrides the sampling interval (default 1 s, Dinda's rate).
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "zero sampling interval");
        self.interval = interval;
        self
    }

    /// Overrides the clamp ceiling (default 8.0).
    ///
    /// # Panics
    ///
    /// Panics unless `max_load` is positive.
    pub fn with_max_load(mut self, max_load: f64) -> Self {
        assert!(max_load > 0.0, "non-positive max load");
        self.max_load = max_load;
        self
    }

    /// Generates a trace of `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn generate(&self, len: usize, rng: &mut SimRng) -> LoadTrace {
        assert!(len > 0, "generate: zero-length trace");
        let mut samples = Vec::with_capacity(len);
        let mut x = self.mean;
        let mut burst_remaining = 0u64;
        for _ in 0..len {
            x = self.mean + self.phi * (x - self.mean) + rng.normal(0.0, self.sigma);
            x = x.clamp(0.0, self.max_load);
            let mut v = x;
            if burst_remaining > 0 {
                burst_remaining -= 1;
                v += self.burst_height;
            } else if self.burst_rate > 0.0 && rng.chance(self.burst_rate) {
                burst_remaining = rng
                    .pareto(self.burst_min_len, self.burst_alpha)
                    .min(len as f64) as u64;
                v += self.burst_height;
            }
            samples.push(v.clamp(0.0, self.max_load));
        }
        LoadTrace::from_samples(self.interval, samples)
            .expect("generator produced an invalid trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn none_preset_is_silent() {
        let mut rng = SimRng::seed_from(1);
        let t = TraceGenerator::preset(LoadLevel::None).generate(100, &mut rng);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.peak(), 0.0);
    }

    #[test]
    fn light_and_heavy_means_are_ordered() {
        let mut rng = SimRng::seed_from(2);
        let light = TraceGenerator::preset(LoadLevel::Light).generate(5_000, &mut rng);
        let heavy = TraceGenerator::preset(LoadLevel::Heavy).generate(5_000, &mut rng);
        assert!(light.mean() > 0.05, "light mean {}", light.mean());
        assert!(light.mean() < 0.6, "light mean {}", light.mean());
        assert!(heavy.mean() > 0.7, "heavy mean {}", heavy.mean());
        assert!(heavy.mean() > 2.0 * light.mean());
    }

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        let t = TraceGenerator::preset(LoadLevel::Heavy)
            .with_max_load(4.0)
            .generate(10_000, &mut rng);
        assert!(t.samples().iter().all(|s| (0.0..=4.0).contains(s)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = TraceGenerator::preset(LoadLevel::Light);
        let a = g.generate(500, &mut SimRng::seed_from(7));
        let b = g.generate(500, &mut SimRng::seed_from(7));
        assert_eq!(a, b);
        let c = g.generate(500, &mut SimRng::seed_from(8));
        assert_ne!(a, c);
    }

    #[test]
    fn load_is_strongly_autocorrelated() {
        let mut rng = SimRng::seed_from(4);
        let t = TraceGenerator::preset(LoadLevel::Heavy).generate(8_000, &mut rng);
        let acf1 = analysis::autocorrelation(t.samples(), 1);
        assert!(acf1 > 0.8, "lag-1 autocorrelation {acf1} too weak");
    }

    #[test]
    fn load_is_long_range_dependent() {
        let mut rng = SimRng::seed_from(5);
        let t = TraceGenerator::preset(LoadLevel::Heavy).generate(8_192, &mut rng);
        let h = analysis::hurst_rs(t.samples());
        assert!(h > 0.65, "Hurst estimate {h} shows no LRD");
    }

    #[test]
    fn bursts_raise_the_peak() {
        let mut rng1 = SimRng::seed_from(6);
        let mut rng2 = SimRng::seed_from(6);
        let base = TraceGenerator::new(0.5, 0.9, 0.05).generate(4_000, &mut rng1);
        let bursty = TraceGenerator::new(0.5, 0.9, 0.05)
            .with_bursts(0.05, 2.0, 1.5, 4.0)
            .generate(4_000, &mut rng2);
        assert!(bursty.peak() > base.peak() + 1.0);
    }

    #[test]
    fn custom_interval_is_respected() {
        let mut rng = SimRng::seed_from(9);
        let t = TraceGenerator::preset(LoadLevel::Light)
            .with_interval(SimDuration::from_millis(100))
            .generate(10, &mut rng);
        assert_eq!(t.interval(), SimDuration::from_millis(100));
        assert_eq!(t.duration(), SimDuration::from_secs(1));
    }

    #[test]
    fn level_labels() {
        assert_eq!(LoadLevel::None.to_string(), "none");
        assert_eq!(LoadLevel::Light.label(), "light");
        assert_eq!(LoadLevel::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn invalid_phi_panics() {
        let _ = TraceGenerator::new(0.5, 1.0, 0.1);
    }
}
