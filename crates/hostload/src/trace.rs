//! The load-trace container: a fixed-interval series of load samples.
//!
//! *Load* here is the Unix load-average sense used by Dinda's traces:
//! the number of runnable background processes, as a non-negative
//! float sampled at a fixed interval. A load of `1.0` keeps one CPU
//! busy; `2.0` keeps two busy (or one busy with a 2-deep run queue).

use gridvm_simcore::time::{SimDuration, SimTime};

/// A fixed-interval host-load time series.
///
/// ```
/// use gridvm_hostload::trace::LoadTrace;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let t = LoadTrace::from_samples(SimDuration::from_secs(1), vec![0.0, 1.0, 2.0])?;
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.load_at(SimTime::from_secs(1)), 1.0);
/// // beyond the end, the trace wraps around
/// assert_eq!(t.load_at(SimTime::from_secs(4)), 1.0);
/// # Ok::<(), gridvm_hostload::trace::TraceError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LoadTrace {
    interval: SimDuration,
    samples: Vec<f64>,
}

/// Errors constructing or combining load traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The sample vector was empty.
    Empty,
    /// The sampling interval was zero.
    ZeroInterval,
    /// A sample was negative, NaN or infinite.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
    },
    /// A text line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "load trace has no samples"),
            TraceError::ZeroInterval => write!(f, "load trace interval is zero"),
            TraceError::InvalidSample { index } => {
                write!(f, "load sample {index} is negative or not finite")
            }
            TraceError::Malformed { line } => {
                write!(f, "trace text line {line} is malformed")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl LoadTrace {
    /// Builds a trace from samples taken every `interval`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `samples` is empty, `interval` is
    /// zero, or any sample is negative/non-finite.
    pub fn from_samples(interval: SimDuration, samples: Vec<f64>) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        if interval.is_zero() {
            return Err(TraceError::ZeroInterval);
        }
        if let Some(index) = samples.iter().position(|s| !s.is_finite() || *s < 0.0) {
            return Err(TraceError::InvalidSample { index });
        }
        Ok(LoadTrace { interval, samples })
    }

    /// A trace that is identically zero for `len` samples — the
    /// paper's "none" background load.
    pub fn silent(interval: SimDuration, len: usize) -> Self {
        LoadTrace {
            interval,
            samples: vec![0.0; len.max(1)],
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the trace holds a single sample (it can never be
    /// truly empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Total covered duration (`len * interval`).
    pub fn duration(&self) -> SimDuration {
        self.interval * self.samples.len() as u64
    }

    /// The load at absolute time `t` (zero-order hold, wrapping past
    /// the end so playback can run indefinitely).
    pub fn load_at(&self, t: SimTime) -> f64 {
        let idx = (t.as_nanos() / self.interval.as_nanos()) as usize % self.samples.len();
        self.samples[idx]
    }

    /// The average load over `[start, end)`, integrating the
    /// zero-order-hold signal exactly (with wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn average_between(&self, start: SimTime, end: SimTime) -> f64 {
        assert!(end >= start, "average_between: end before start");
        if end == start {
            return self.load_at(start);
        }
        let step = self.interval.as_nanos();
        let mut acc = 0.0_f64;
        let mut t = start.as_nanos();
        let end = end.as_nanos();
        while t < end {
            let idx = (t / step) as usize % self.samples.len();
            let seg_end = ((t / step) + 1) * step;
            let upto = seg_end.min(end);
            acc += self.samples[idx] * (upto - t) as f64;
            t = upto;
        }
        acc / (end - start.as_nanos()) as f64
    }

    /// Mean load over the whole trace.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Peak load over the whole trace.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0_f64, |a, b| a.max(*b))
    }

    /// Serializes the trace to the one-sample-per-line text format
    /// of Dinda's trace archives: a header line `interval-ns <n>`
    /// followed by one load value per line.
    pub fn to_text(&self) -> String {
        let mut out = format!("interval-ns {}\n", self.interval.as_nanos());
        for s in &self.samples {
            out.push_str(&format!("{s}\n"));
        }
        out
    }

    /// Parses the text format written by [`to_text`](LoadTrace::to_text).
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] (with a 1-based line number) on
    /// syntax problems, plus the usual construction errors.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TraceError::Empty)?;
        let interval_ns: u64 = header
            .strip_prefix("interval-ns ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(TraceError::Malformed { line: 1 })?;
        let mut samples = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v: f64 = line
                .parse()
                .map_err(|_| TraceError::Malformed { line: idx + 1 })?;
            samples.push(v);
        }
        LoadTrace::from_samples(SimDuration::from_nanos(interval_ns), samples)
    }

    /// Pointwise-scales every sample by `factor` (>= 0).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite factor.
    pub fn scaled(&self, factor: f64) -> LoadTrace {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scaled: invalid factor {factor}"
        );
        LoadTrace {
            interval: self.interval,
            samples: self.samples.iter().map(|s| s * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            LoadTrace::from_samples(secs(1), vec![]),
            Err(TraceError::Empty)
        );
        assert_eq!(
            LoadTrace::from_samples(SimDuration::ZERO, vec![1.0]),
            Err(TraceError::ZeroInterval)
        );
        assert_eq!(
            LoadTrace::from_samples(secs(1), vec![0.5, -0.1]),
            Err(TraceError::InvalidSample { index: 1 })
        );
        assert_eq!(
            LoadTrace::from_samples(secs(1), vec![f64::NAN]),
            Err(TraceError::InvalidSample { index: 0 })
        );
    }

    #[test]
    fn load_at_holds_and_wraps() {
        let t = LoadTrace::from_samples(secs(10), vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.load_at(SimTime::ZERO), 1.0);
        assert_eq!(t.load_at(SimTime::from_secs(9)), 1.0);
        assert_eq!(t.load_at(SimTime::from_secs(10)), 2.0);
        assert_eq!(t.load_at(SimTime::from_secs(29)), 3.0);
        assert_eq!(t.load_at(SimTime::from_secs(30)), 1.0, "wraps");
        assert_eq!(t.duration(), secs(30));
    }

    #[test]
    fn average_integrates_exactly() {
        let t = LoadTrace::from_samples(secs(10), vec![0.0, 2.0]).unwrap();
        // [5s,15s): 5s at 0.0 then 5s at 2.0 -> 1.0
        let avg = t.average_between(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((avg - 1.0).abs() < 1e-12);
        // full period -> mean
        let avg2 = t.average_between(SimTime::ZERO, SimTime::from_secs(20));
        assert!((avg2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_wraps_past_end() {
        let t = LoadTrace::from_samples(secs(1), vec![1.0, 3.0]).unwrap();
        let avg = t.average_between(SimTime::from_secs(1), SimTime::from_secs(3));
        // sample 1 (3.0) then wrap to sample 0 (1.0)
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn silent_trace_is_zero_everywhere() {
        let t = LoadTrace::silent(secs(1), 5);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.peak(), 0.0);
        assert_eq!(t.load_at(SimTime::from_secs(123)), 0.0);
    }

    #[test]
    fn scaling_scales_mean() {
        let t = LoadTrace::from_samples(secs(1), vec![1.0, 2.0, 3.0]).unwrap();
        let s = t.scaled(0.5);
        assert!((s.mean() - 1.0).abs() < 1e-12);
        assert_eq!(s.peak(), 1.5);
    }

    #[test]
    fn degenerate_average_is_pointwise() {
        let t = LoadTrace::from_samples(secs(1), vec![4.0]).unwrap();
        assert_eq!(
            t.average_between(SimTime::from_secs(2), SimTime::from_secs(2)),
            4.0
        );
    }

    #[test]
    fn text_round_trip_preserves_trace() {
        let t = LoadTrace::from_samples(secs(2), vec![0.0, 1.5, 2.25]).unwrap();
        let text = t.to_text();
        assert!(text.starts_with("interval-ns 2000000000"));
        let back = LoadTrace::from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_parsing_reports_line_numbers() {
        assert_eq!(LoadTrace::from_text(""), Err(TraceError::Empty));
        assert_eq!(
            LoadTrace::from_text("bogus header\n1.0\n"),
            Err(TraceError::Malformed { line: 1 })
        );
        assert_eq!(
            LoadTrace::from_text("interval-ns 1000\n1.0\nnot-a-number\n"),
            Err(TraceError::Malformed { line: 3 })
        );
        // comments and blank lines are tolerated
        let t = LoadTrace::from_text("interval-ns 1000\n# comment\n\n0.5\n").unwrap();
        assert_eq!(t.samples(), &[0.5]);
        // construction errors still apply
        assert_eq!(
            LoadTrace::from_text("interval-ns 1000\n-1.0\n"),
            Err(TraceError::InvalidSample { index: 0 })
        );
        assert_eq!(
            LoadTrace::from_text("interval-ns 0\n1.0\n"),
            Err(TraceError::ZeroInterval)
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(TraceError::Empty.to_string().contains("no samples"));
        assert!(TraceError::InvalidSample { index: 3 }
            .to_string()
            .contains("sample 3"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The exact integral average over any window must lie between
        /// the min and max sample values.
        #[test]
        fn average_is_bounded(samples in proptest::collection::vec(0.0f64..4.0, 1..32),
                              start in 0u64..1_000, len in 0u64..1_000) {
            let t = LoadTrace::from_samples(SimDuration::from_millis(7), samples.clone()).unwrap();
            let s = SimTime::from_nanos(start * 1_000_000);
            let e = s + SimDuration::from_nanos(len * 1_000_000);
            let avg = t.average_between(s, e);
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(0.0, f64::max);
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {} not in [{}, {}]", avg, lo, hi);
        }

        /// Averaging over an exact whole number of trace periods gives
        /// the trace mean.
        #[test]
        fn whole_period_average_is_mean(samples in proptest::collection::vec(0.0f64..4.0, 1..16),
                                        periods in 1u64..4) {
            let t = LoadTrace::from_samples(SimDuration::from_millis(3), samples).unwrap();
            let end = SimTime::ZERO + t.duration() * periods;
            let avg = t.average_between(SimTime::ZERO, end);
            prop_assert!((avg - t.mean()).abs() < 1e-9);
        }
    }
}
