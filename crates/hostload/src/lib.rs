//! # gridvm-hostload
//!
//! Host-load traces: generation, playback and analysis.
//!
//! Figure 1 of the paper drives its microbenchmark with *host load
//! trace playback* [Dinda & O'Hallaron, LCR 2000] of traces collected
//! on the Pittsburgh Supercomputing Center's Alpha cluster, at three
//! intensities: **none**, **light** and **heavy**. Those trace files
//! are not available, so this crate generates synthetic traces with
//! the statistical properties the host-load literature reports for
//! them — strong short-range autocorrelation (AR-like behaviour),
//! heavy-tailed burst durations, and long-range dependence (Hurst
//! parameter well above 0.5) — and provides the playback machinery to
//! drive a simulated host with them.
//!
//! * [`trace`] — the [`LoadTrace`](trace::LoadTrace) sample container.
//! * [`generator`] — AR(1)-plus-Pareto-burst synthesis and the paper's
//!   three [`LoadLevel`](generator::LoadLevel) presets.
//! * [`playback`] — turning a trace into per-quantum background CPU
//!   demand.
//! * [`analysis`] — autocorrelation and R/S Hurst estimation used by
//!   tests to verify the generator produces realistic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod generator;
pub mod playback;
pub mod trace;

pub use generator::{LoadLevel, TraceGenerator};
pub use playback::TracePlayback;
pub use trace::LoadTrace;
