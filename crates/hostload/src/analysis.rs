//! Time-series analysis used to validate generated load: sample
//! autocorrelation and rescaled-range (R/S) Hurst estimation.

/// Sample autocorrelation of `xs` at the given `lag`.
///
/// Returns 0.0 for degenerate inputs (constant series, or series
/// shorter than `lag + 2`).
///
/// ```
/// use gridvm_hostload::analysis::autocorrelation;
/// let ramp: Vec<f64> = (0..100).map(f64::from).collect();
/// assert!(autocorrelation(&ramp, 1) > 0.9);
/// ```
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() < lag + 2 {
        return 0.0;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Rescaled-range (R/S) estimate of the Hurst exponent.
///
/// Splits the series into windows of doubling size, computes the mean
/// log(R/S) per size, and regresses against log(size). An estimate of
/// 0.5 indicates no long-range dependence; host-load traces typically
/// show 0.7–0.95.
///
/// Returns 0.5 for series too short (< 32 samples) or degenerate
/// (constant) to estimate.
pub fn hurst_rs(xs: &[f64]) -> f64 {
    if xs.len() < 32 {
        return 0.5;
    }
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut window = 8usize;
    while window <= xs.len() / 2 {
        let mut ratios = Vec::new();
        for chunk in xs.chunks_exact(window) {
            if let Some(rs) = rescaled_range(chunk) {
                ratios.push(rs);
            }
        }
        if !ratios.is_empty() {
            let mean_rs = ratios.iter().sum::<f64>() / ratios.len() as f64;
            if mean_rs > 0.0 {
                points.push(((window as f64).ln(), mean_rs.ln()));
            }
        }
        window *= 2;
    }
    if points.len() < 2 {
        return 0.5;
    }
    linear_slope(&points).clamp(0.0, 1.0)
}

/// R/S statistic of one window; `None` when the window is constant.
fn rescaled_range(xs: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt();
    if std == 0.0 {
        return None;
    }
    let mut cum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for x in xs {
        cum += x - mean;
        min = min.min(cum);
        max = max.max(cum);
    }
    Some((max - min) / std)
}

/// Ordinary-least-squares slope through `(x, y)` points.
///
/// # Panics
///
/// Panics with fewer than two points (callers guard this).
fn linear_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "linear_slope needs >= 2 points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::rng::SimRng;

    #[test]
    fn white_noise_has_no_autocorrelation() {
        let mut rng = SimRng::seed_from(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.standard_normal()).collect();
        let a = autocorrelation(&xs, 1);
        assert!(a.abs() < 0.05, "white noise acf {a}");
    }

    #[test]
    fn ar1_has_expected_autocorrelation() {
        let mut rng = SimRng::seed_from(2);
        let phi = 0.9;
        let mut xs = vec![0.0f64];
        for _ in 0..20_000 {
            let prev = *xs.last().expect("non-empty");
            xs.push(phi * prev + rng.standard_normal());
        }
        let a1 = autocorrelation(&xs, 1);
        assert!((a1 - phi).abs() < 0.03, "lag-1 acf {a1} vs phi {phi}");
        let a5 = autocorrelation(&xs, 5);
        assert!((a5 - phi.powi(5)).abs() < 0.05, "lag-5 acf {a5}");
    }

    #[test]
    fn degenerate_series_are_safe() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0, 1.0], 1), 0.0);
        assert_eq!(hurst_rs(&[1.0; 10]), 0.5);
        assert_eq!(hurst_rs(&[2.0; 1000]), 0.5, "constant series");
    }

    #[test]
    fn white_noise_hurst_is_near_half() {
        let mut rng = SimRng::seed_from(3);
        let xs: Vec<f64> = (0..8_192).map(|_| rng.standard_normal()).collect();
        let h = hurst_rs(&xs);
        assert!((0.4..0.65).contains(&h), "white-noise Hurst {h}");
    }

    #[test]
    fn trending_series_hurst_is_high() {
        // A random walk (integrated noise) is strongly persistent.
        let mut rng = SimRng::seed_from(4);
        let mut acc = 0.0;
        let xs: Vec<f64> = (0..8_192)
            .map(|_| {
                acc += rng.standard_normal();
                acc
            })
            .collect();
        let h = hurst_rs(&xs);
        assert!(h > 0.8, "random-walk Hurst {h}");
    }

    #[test]
    fn slope_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linear_slope(&pts) - 3.0).abs() < 1e-12);
    }
}
