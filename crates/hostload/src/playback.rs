//! Trace playback: converting a load trace into the background CPU
//! demand a simulated host applies while a test task runs.
//!
//! This mirrors the paper's experimental method ("background load was
//! produced by host load trace playback of load traces collected on
//! the Pittsburgh Supercomputing Center's Alpha Cluster"): the trace
//! value at time *t* is the number of runnable background processes,
//! which the playback exposes both as an instantaneous process count
//! (for schedulers that need a run queue) and as an exact average
//! demand over a quantum (for analytic accounting).

use gridvm_simcore::time::{SimDuration, SimTime};

use crate::trace::LoadTrace;

/// Plays a [`LoadTrace`] from a configurable phase offset, wrapping
/// indefinitely.
///
/// ```
/// use gridvm_hostload::{LoadTrace, TracePlayback};
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let trace = LoadTrace::from_samples(SimDuration::from_secs(1), vec![0.0, 2.4])?;
/// let pb = TracePlayback::new(trace);
/// assert_eq!(pb.runnable_at(SimTime::ZERO), 0);
/// assert_eq!(pb.runnable_at(SimTime::from_secs(1)), 3); // ceil(2.4)
/// # Ok::<(), gridvm_hostload::trace::TraceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TracePlayback {
    trace: LoadTrace,
    offset: SimDuration,
}

impl TracePlayback {
    /// Starts playback at the beginning of the trace.
    pub fn new(trace: LoadTrace) -> Self {
        TracePlayback {
            trace,
            offset: SimDuration::ZERO,
        }
    }

    /// Starts playback `offset` into the trace (different experiment
    /// replications use different offsets, as Dinda's playback tool
    /// did).
    pub fn with_offset(trace: LoadTrace, offset: SimDuration) -> Self {
        TracePlayback { trace, offset }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &LoadTrace {
        &self.trace
    }

    /// Instantaneous load at simulation time `t`.
    pub fn load_at(&self, t: SimTime) -> f64 {
        self.trace.load_at(t + self.offset)
    }

    /// Number of runnable background processes at `t`: the load
    /// rounded up, so a load of 0.3 presents one occasionally-runnable
    /// process rather than none.
    pub fn runnable_at(&self, t: SimTime) -> usize {
        self.load_at(t).ceil() as usize
    }

    /// Exact average load over `[start, end)`.
    pub fn average_load(&self, start: SimTime, end: SimTime) -> f64 {
        self.trace
            .average_between(start + self.offset, end + self.offset)
    }

    /// The CPU time the background demands during `[start, end)` on a
    /// host with `cores` CPUs: `min(load, cores) * window`, i.e. load
    /// beyond the core count queues rather than consuming extra CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `end < start`.
    pub fn cpu_demand(&self, start: SimTime, end: SimTime, cores: usize) -> SimDuration {
        assert!(cores > 0, "cpu_demand: zero cores");
        let window = end.duration_since(start);
        let load = self.average_load(start, end).min(cores as f64);
        window.mul_f64(load / 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{LoadLevel, TraceGenerator};
    use gridvm_simcore::rng::SimRng;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn offset_shifts_phase() {
        let trace = LoadTrace::from_samples(secs(1), vec![1.0, 2.0, 3.0]).unwrap();
        let pb = TracePlayback::with_offset(trace, secs(1));
        assert_eq!(pb.load_at(SimTime::ZERO), 2.0);
        assert_eq!(pb.load_at(SimTime::from_secs(2)), 1.0, "wraps");
    }

    #[test]
    fn runnable_rounds_up() {
        let trace = LoadTrace::from_samples(secs(1), vec![0.0, 0.3, 1.0, 2.4]).unwrap();
        let pb = TracePlayback::new(trace);
        let counts: Vec<usize> = (0..4)
            .map(|i| pb.runnable_at(SimTime::from_secs(i)))
            .collect();
        assert_eq!(counts, vec![0, 1, 1, 3]);
    }

    #[test]
    fn cpu_demand_caps_at_core_count() {
        let trace = LoadTrace::from_samples(secs(1), vec![4.0]).unwrap();
        let pb = TracePlayback::new(trace);
        let d = pb.cpu_demand(SimTime::ZERO, SimTime::from_secs(10), 2);
        assert_eq!(d, secs(20), "4 runnable on 2 cores burns 2 cpu-sec/sec");
    }

    #[test]
    fn cpu_demand_of_silence_is_zero() {
        let pb = TracePlayback::new(LoadTrace::silent(secs(1), 4));
        assert_eq!(
            pb.cpu_demand(SimTime::ZERO, SimTime::from_secs(100), 2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn generated_playback_round_trip() {
        let mut rng = SimRng::seed_from(10);
        let trace = TraceGenerator::preset(LoadLevel::Light).generate(600, &mut rng);
        let pb = TracePlayback::new(trace.clone());
        let avg = pb.average_load(SimTime::ZERO, SimTime::ZERO + trace.duration());
        assert!((avg - trace.mean()).abs() < 1e-9);
    }
}
