//! A PBS-style space-shared batch queue (the paper's \[3\]): the
//! job-submission layer many 2003 grids actually ran, and the
//! natural consumer of VM startup latencies — every batch job that
//! runs in a freshly instantiated VM pays Table 2's costs before its
//! first useful cycle.
//!
//! Two policies are implemented:
//!
//! * [`QueuePolicy::Fifo`] — strict first-come-first-served.
//! * [`QueuePolicy::EasyBackfill`] — EASY backfilling: the head job
//!   gets a reservation at the earliest instant enough nodes free
//!   up; later jobs may jump ahead only if they cannot delay that
//!   reservation.

use std::collections::BinaryHeap;

use gridvm_simcore::time::{SimDuration, SimTime};

/// Scheduling policy of the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// Strict FIFO: nothing overtakes the queue head.
    Fifo,
    /// EASY backfilling.
    EasyBackfill,
}

/// One batch job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchJob {
    /// Job name (for reports).
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Actual runtime (we assume accurate estimates; EASY uses this
    /// as the walltime bound).
    pub runtime: SimDuration,
}

impl BatchJob {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics on zero nodes or zero runtime.
    pub fn new(name: impl Into<String>, nodes: usize, runtime: SimDuration) -> Self {
        assert!(nodes > 0, "job with zero nodes");
        assert!(!runtime.is_zero(), "job with zero runtime");
        BatchJob {
            name: name.into(),
            nodes,
            runtime,
        }
    }
}

/// When a job ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The job.
    pub job: BatchJob,
    /// Submission instant.
    pub submitted: SimTime,
    /// Start instant.
    pub started: SimTime,
    /// Completion instant.
    pub finished: SimTime,
}

impl BatchOutcome {
    /// Queue wait time.
    pub fn wait(&self) -> SimDuration {
        self.started.duration_since(self.submitted)
    }

    /// Turnaround (submit → finish).
    pub fn turnaround(&self) -> SimDuration {
        self.finished.duration_since(self.submitted)
    }
}

/// Errors from batch scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A job requests more nodes than the machine has.
    TooWide {
        /// The job's name.
        job: String,
        /// Nodes requested.
        requested: usize,
        /// Nodes available in total.
        total: usize,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::TooWide {
                job,
                requested,
                total,
            } => write!(
                f,
                "job {job:?} wants {requested} nodes, machine has {total}"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Running {
    end: SimTime,
    nodes: usize,
}

impl Ord for Running {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap by end time
        other.end.cmp(&self.end)
    }
}

impl PartialOrd for Running {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates a space-shared machine of `total_nodes` running the
/// submitted jobs under `policy`. `submissions` is `(submit_time,
/// job)` in any order; per-VM startup overhead (e.g. a Table 2
/// scenario's mean) can be folded in by the caller via
/// [`with_startup_overhead`].
///
/// Returns outcomes in completion order.
///
/// # Errors
///
/// [`BatchError::TooWide`] if any job can never fit.
pub fn schedule(
    submissions: &[(SimTime, BatchJob)],
    total_nodes: usize,
    policy: QueuePolicy,
) -> Result<Vec<BatchOutcome>, BatchError> {
    assert!(total_nodes > 0, "machine with zero nodes");
    for (_, job) in submissions {
        if job.nodes > total_nodes {
            return Err(BatchError::TooWide {
                job: job.name.clone(),
                requested: job.nodes,
                total: total_nodes,
            });
        }
    }
    let mut pending: Vec<(SimTime, BatchJob)> = submissions.to_vec();
    pending.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.name.cmp(&b.1.name)));
    let mut queue: Vec<(SimTime, BatchJob)> = Vec::new();
    let mut running: BinaryHeap<Running> = BinaryHeap::new();
    let mut free = total_nodes;
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_submit = 0usize;

    loop {
        // Admit all submissions up to `now`.
        while next_submit < pending.len() && pending[next_submit].0 <= now {
            queue.push(pending[next_submit].clone());
            next_submit += 1;
        }
        // Start whatever the policy allows.
        start_eligible(&mut queue, &mut running, &mut free, now, policy, &mut out);
        // Advance time to the next event.
        let next_completion = running.peek().map(|r| r.end);
        let next_arrival = pending.get(next_submit).map(|(t, _)| *t);
        now = match (next_completion, next_arrival) {
            (Some(c), Some(a)) => c.min(a),
            (Some(c), None) => c,
            (None, Some(a)) => a,
            (None, None) => break,
        };
        // Retire completions at `now`.
        while running.peek().is_some_and(|r| r.end <= now) {
            let done = running.pop().expect("peeked");
            free += done.nodes;
        }
    }
    out.sort_by_key(|o| (o.finished, o.started, o.job.name.clone()));
    Ok(out)
}

fn start_eligible(
    queue: &mut Vec<(SimTime, BatchJob)>,
    running: &mut BinaryHeap<Running>,
    free: &mut usize,
    now: SimTime,
    policy: QueuePolicy,
    out: &mut Vec<BatchOutcome>,
) {
    // Start from the head while it fits.
    while let Some((submitted, job)) = queue.first().cloned() {
        if job.nodes <= *free {
            *free -= job.nodes;
            running.push(Running {
                end: now + job.runtime,
                nodes: job.nodes,
            });
            out.push(BatchOutcome {
                finished: now + job.runtime,
                started: now,
                submitted,
                job,
            });
            queue.remove(0);
        } else {
            break;
        }
    }
    if queue.is_empty() || policy == QueuePolicy::Fifo {
        return;
    }
    // EASY backfill: compute the head's shadow start.
    let head_nodes = queue[0].1.nodes;
    let mut avail = *free;
    let mut ends: Vec<Running> = running.clone().into_sorted_vec();
    // into_sorted_vec of our reversed Ord yields descending end; fix:
    ends.sort_by_key(|r| r.end);
    let mut shadow = now;
    let mut spare_at_shadow = avail;
    for r in &ends {
        if avail >= head_nodes {
            break;
        }
        avail += r.nodes;
        shadow = r.end;
        spare_at_shadow = avail - head_nodes.min(avail);
    }
    if avail < head_nodes {
        return; // cannot ever start with current running set (wait)
    }
    // Backfill later jobs that fit now and do not delay the shadow.
    let mut i = 1;
    while i < queue.len() {
        let (submitted, job) = queue[i].clone();
        let fits_now = job.nodes <= *free;
        let ends_before_shadow = now + job.runtime <= shadow;
        let within_spare = job.nodes <= spare_at_shadow;
        if fits_now && (ends_before_shadow || within_spare) {
            *free -= job.nodes;
            if !ends_before_shadow {
                spare_at_shadow -= job.nodes;
            }
            running.push(Running {
                end: now + job.runtime,
                nodes: job.nodes,
            });
            out.push(BatchOutcome {
                finished: now + job.runtime,
                started: now,
                submitted,
                job,
            });
            queue.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Returns a copy of `job` with a VM-instantiation prologue folded
/// into its runtime — how a VM-based grid turns Table 2's startup
/// latency into batch cost.
pub fn with_startup_overhead(job: &BatchJob, startup: SimDuration) -> BatchJob {
    BatchJob {
        name: job.name.clone(),
        nodes: job.nodes,
        runtime: job.runtime + startup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn job(name: &str, nodes: usize, secs: u64) -> BatchJob {
        BatchJob::new(name, nodes, d(secs))
    }

    #[test]
    fn fifo_runs_in_order() {
        let subs = vec![
            (t(0), job("a", 4, 100)),
            (t(0), job("b", 4, 100)),
            (t(0), job("c", 4, 100)),
        ];
        let out = schedule(&subs, 4, QueuePolicy::Fifo).unwrap();
        assert_eq!(out[0].job.name, "a");
        assert_eq!(out[0].started, t(0));
        assert_eq!(out[1].started, t(100));
        assert_eq!(out[2].started, t(200));
    }

    #[test]
    fn parallel_jobs_share_the_machine() {
        let subs = vec![(t(0), job("a", 2, 100)), (t(0), job("b", 2, 100))];
        let out = schedule(&subs, 4, QueuePolicy::Fifo).unwrap();
        assert_eq!(out[0].started, t(0));
        assert_eq!(out[1].started, t(0), "both fit at once");
    }

    #[test]
    fn fifo_head_blocks_small_jobs() {
        // Wide head cannot start until the long job finishes; FIFO
        // makes the small job wait behind it even though it fits now.
        let subs = vec![
            (t(0), job("long", 3, 1000)),
            (t(1), job("wide-head", 4, 10)),
            (t(2), job("small", 1, 10)),
        ];
        let out = schedule(&subs, 4, QueuePolicy::Fifo).unwrap();
        let small = out.iter().find(|o| o.job.name == "small").unwrap();
        assert!(small.started >= t(1000), "FIFO: small waits for the head");
    }

    #[test]
    fn backfill_lets_small_jobs_through_without_delaying_head() {
        let subs = vec![
            (t(0), job("long", 3, 1000)),
            (t(1), job("wide-head", 4, 10)),
            (t(2), job("small", 1, 10)),
        ];
        let out = schedule(&subs, 4, QueuePolicy::EasyBackfill).unwrap();
        let small = out.iter().find(|o| o.job.name == "small").unwrap();
        let head = out.iter().find(|o| o.job.name == "wide-head").unwrap();
        assert_eq!(small.started, t(2), "small backfills immediately");
        assert_eq!(head.started, t(1000), "head not delayed");
    }

    #[test]
    fn backfill_rejects_jobs_that_would_delay_head() {
        // A backfill candidate that runs past the shadow and uses the
        // head's nodes must wait.
        let subs = vec![
            (t(0), job("long", 3, 100)),
            (t(1), job("head", 4, 10)),
            (t(2), job("greedy", 1, 5000)), // would hold a node past t=100
        ];
        let out = schedule(&subs, 4, QueuePolicy::EasyBackfill).unwrap();
        let head = out.iter().find(|o| o.job.name == "head").unwrap();
        assert_eq!(head.started, t(100), "head starts exactly at shadow");
        let greedy = out.iter().find(|o| o.job.name == "greedy").unwrap();
        assert!(greedy.started >= t(100), "greedy could not backfill");
    }

    #[test]
    fn too_wide_jobs_are_rejected() {
        let subs = vec![(t(0), job("huge", 9, 10))];
        assert!(matches!(
            schedule(&subs, 8, QueuePolicy::Fifo),
            Err(BatchError::TooWide { requested: 9, .. })
        ));
    }

    #[test]
    fn startup_overhead_stretches_runtime() {
        let j = job("a", 1, 100);
        let slow = with_startup_overhead(&j, d(69)); // reboot/DiskFS mean
        let fast = with_startup_overhead(&j, d(12)); // restore/DiskFS mean
        assert_eq!(slow.runtime, d(169));
        assert_eq!(fast.runtime, d(112));
    }

    #[test]
    fn outcomes_account_waits_and_turnaround() {
        let subs = vec![(t(0), job("a", 4, 50)), (t(10), job("b", 4, 50))];
        let out = schedule(&subs, 4, QueuePolicy::Fifo).unwrap();
        let b = out.iter().find(|o| o.job.name == "b").unwrap();
        assert_eq!(b.wait(), d(40));
        assert_eq!(b.turnaround(), d(90));
    }

    #[test]
    fn backfill_never_oversubscribes() {
        // Dense random-ish mix; verify the node bound holds at every
        // start instant.
        let mut subs = Vec::new();
        for i in 0..40u64 {
            subs.push((
                t(i * 3),
                job(&format!("j{i}"), (i % 5 + 1) as usize, 20 + (i * 7) % 90),
            ));
        }
        let nodes = 6;
        let out = schedule(&subs, nodes, QueuePolicy::EasyBackfill).unwrap();
        assert_eq!(out.len(), 40);
        // Check instantaneous usage at each start event.
        for probe in &out {
            let used: usize = out
                .iter()
                .filter(|o| o.started <= probe.started && o.finished > probe.started)
                .map(|o| o.job.nodes)
                .sum();
            assert!(used <= nodes, "oversubscribed at {}: {used}", probe.started);
        }
    }

    #[test]
    fn backfill_beats_fifo_on_makespan_or_ties() {
        let mut subs = Vec::new();
        for i in 0..30u64 {
            subs.push((
                t(i),
                job(&format!("j{i}"), (i % 4 + 1) as usize, 10 + (i * 13) % 120),
            ));
        }
        let fifo = schedule(&subs, 5, QueuePolicy::Fifo).unwrap();
        let easy = schedule(&subs, 5, QueuePolicy::EasyBackfill).unwrap();
        let makespan = |v: &[BatchOutcome]| v.iter().map(|o| o.finished).max().unwrap();
        assert!(makespan(&easy) <= makespan(&fifo));
        let avg_wait = |v: &[BatchOutcome]| {
            v.iter().map(|o| o.wait().as_secs_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(avg_wait(&easy) <= avg_wait(&fifo) + 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Node capacity is never exceeded and every job runs exactly
        /// once, under both policies.
        #[test]
        fn conservation(jobs in proptest::collection::vec((0u64..100, 1usize..4, 1u64..60), 1..25),
                        fifo in proptest::bool::ANY) {
            let subs: Vec<(SimTime, BatchJob)> = jobs
                .iter()
                .enumerate()
                .map(|(i, (at, n, rt))| {
                    (SimTime::from_secs(*at),
                     BatchJob::new(format!("j{i}"), *n, SimDuration::from_secs(*rt)))
                })
                .collect();
            let nodes = 4;
            let policy = if fifo { QueuePolicy::Fifo } else { QueuePolicy::EasyBackfill };
            let out = schedule(&subs, nodes, policy).unwrap();
            prop_assert_eq!(out.len(), subs.len());
            for probe in &out {
                prop_assert!(probe.started >= probe.submitted);
                prop_assert_eq!(probe.finished, probe.started + probe.job.runtime);
                let used: usize = out
                    .iter()
                    .filter(|o| o.started <= probe.started && o.finished > probe.started)
                    .map(|o| o.job.nodes)
                    .sum();
                prop_assert!(used <= nodes);
            }
        }
    }
}
