//! Per-RPC failure semantics: capped exponential backoff with seeded
//! jitter and bounded retry budgets.
//!
//! Grid middleware of the paper's era (Globus GRAM/MDS/GridFTP) wraps
//! every remote call in timeout + retry; a session that meets a
//! transient fault retries with growing delays and gives up loudly
//! when the budget is spent. The schedule here is deliberately
//! boring and fully deterministic:
//!
//! * delays are **monotonically non-decreasing** and never exceed the
//!   cap (jitter is clamped against both);
//! * total attempts never exceed `max_attempts`;
//! * identical seeds yield identical jitter sequences.
//!
//! Those three invariants are what the workspace proptest battery
//! pins (`tests/retry_backoff.rs`).

use gridvm_simcore::metrics;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

/// A retry policy: capped exponential backoff with jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff delay.
    pub base: SimDuration,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Growth per retry, percent (200 = double each time). Must be
    /// ≥ 100 so the nominal sequence is non-decreasing.
    pub multiplier_percent: u32,
    /// Total attempt budget (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Jitter as a percent of the nominal delay: each delay gains a
    /// uniform extra in `[0, nominal × jitter%)`, clamped to the cap.
    pub jitter_percent: u32,
}

impl Default for RetryPolicy {
    /// 250 ms base, 8 s cap, doubling, 6 attempts, 25 % jitter — a
    /// LAN-era middleware profile.
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(250),
            cap: SimDuration::from_secs(8),
            multiplier_percent: 200,
            max_attempts: 6,
            jitter_percent: 25,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics when the multiplier shrinks delays or the budget is
    /// zero.
    pub fn validated(self) -> Self {
        assert!(
            self.multiplier_percent >= 100,
            "multiplier below 100% would shrink delays"
        );
        assert!(self.max_attempts >= 1, "zero attempt budget");
        self
    }

    /// The backoff-delay sequence for one operation, drawing jitter
    /// from `rng`. Yields at most `max_attempts - 1` delays (one
    /// between each pair of attempts).
    pub fn backoff(&self, rng: SimRng) -> Backoff {
        Backoff {
            policy: *self,
            rng,
            nominal: self.base.min(self.cap),
            floor: SimDuration::ZERO,
            issued: 0,
        }
    }
}

/// Iterator over one operation's backoff delays.
///
/// ```
/// use gridvm_gridmw::retry::RetryPolicy;
/// use gridvm_simcore::rng::SimRng;
///
/// let policy = RetryPolicy::default();
/// let delays: Vec<_> = policy.backoff(SimRng::seed_from(1)).collect();
/// assert_eq!(delays.len() as u32, policy.max_attempts - 1);
/// assert!(delays.windows(2).all(|w| w[0] <= w[1]), "monotone");
/// assert!(delays.iter().all(|d| *d <= policy.cap), "capped");
/// ```
#[derive(Clone, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: SimRng,
    nominal: SimDuration,
    floor: SimDuration,
    issued: u32,
}

impl Iterator for Backoff {
    type Item = SimDuration;

    fn next(&mut self) -> Option<SimDuration> {
        if self.issued + 1 >= self.policy.max_attempts {
            return None;
        }
        let jitter = self
            .nominal
            .mul_f64(self.policy.jitter_percent as f64 / 100.0 * self.rng.next_f64());
        // Monotone by construction: never below the previous delay,
        // never above the cap.
        let delay = (self.nominal + jitter).max(self.floor).min(self.policy.cap);
        self.floor = delay;
        self.issued += 1;
        self.nominal = self
            .nominal
            .mul_f64(self.policy.multiplier_percent as f64 / 100.0)
            .min(self.policy.cap);
        Some(delay)
    }
}

/// Why a retried operation ultimately failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Every attempt in the budget failed; the last error is kept.
    BudgetExhausted {
        /// Attempts actually made (= the policy's budget).
        attempts: u32,
        /// The error of the final attempt.
        last: E,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::BudgetExhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for RetryError<E> {}

/// Runs `op` under the policy, advancing simulated time through
/// failed attempts and backoff delays.
///
/// `op` receives `(attempt_start_time, attempt_index)` and returns
/// the attempt's finish time plus its outcome. On failure the next
/// attempt starts after the backoff delay; when the budget is spent
/// the final finish time and the last error are returned.
///
/// Metrics: `gridmw.rpc_attempts` counts every attempt,
/// `gridmw.rpc_retries` the re-attempts, and
/// `gridmw.retry_exhausted` the operations that gave up.
pub fn retry_rpc<T, E>(
    policy: &RetryPolicy,
    now: SimTime,
    rng: &mut SimRng,
    mut op: impl FnMut(SimTime, u32) -> (SimTime, Result<T, E>),
) -> (SimTime, Result<T, RetryError<E>>) {
    let mut backoff = policy.backoff(rng.split("backoff"));
    let mut t = now;
    let mut attempt = 0u32;
    loop {
        metrics::counter_add("gridmw.rpc_attempts", 1);
        let (finish, result) = op(t, attempt);
        match result {
            Ok(v) => return (finish, Ok(v)),
            Err(e) => match backoff.next() {
                Some(delay) => {
                    metrics::counter_add("gridmw.rpc_retries", 1);
                    t = finish + delay;
                    attempt += 1;
                }
                None => {
                    metrics::counter_add("gridmw.retry_exhausted", 1);
                    return (
                        finish,
                        Err(RetryError::BudgetExhausted {
                            attempts: attempt + 1,
                            last: e,
                        }),
                    );
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_monotone_capped_and_budgeted() {
        let policy = RetryPolicy {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(2),
            multiplier_percent: 300,
            max_attempts: 8,
            jitter_percent: 50,
        }
        .validated();
        let delays: Vec<_> = policy.backoff(SimRng::seed_from(42)).collect();
        assert_eq!(delays.len(), 7);
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "{delays:?}");
        assert!(delays.iter().all(|d| *d <= policy.cap));
        assert!(delays[0] >= policy.base);
    }

    #[test]
    fn identical_seeds_give_identical_jitter() {
        let policy = RetryPolicy::default();
        let a: Vec<_> = policy.backoff(SimRng::seed_from(9)).collect();
        let b: Vec<_> = policy.backoff(SimRng::seed_from(9)).collect();
        assert_eq!(a, b);
        let c: Vec<_> = policy.backoff(SimRng::seed_from(10)).collect();
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let policy = RetryPolicy {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(30),
            multiplier_percent: 200,
            max_attempts: 5,
            jitter_percent: 0,
        };
        let delays: Vec<_> = policy.backoff(SimRng::seed_from(1)).collect();
        assert_eq!(
            delays,
            vec![
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
                SimDuration::from_secs(8),
            ]
        );
    }

    #[test]
    fn single_attempt_budget_never_waits() {
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(SimRng::seed_from(1)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn shrinking_multiplier_is_rejected() {
        let _ = RetryPolicy {
            multiplier_percent: 50,
            ..RetryPolicy::default()
        }
        .validated();
    }

    #[test]
    fn retry_rpc_succeeds_after_transient_failures() {
        let policy = RetryPolicy {
            jitter_percent: 0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from(5);
        let cost = SimDuration::from_millis(100);
        let (finish, result) = retry_rpc(&policy, SimTime::ZERO, &mut rng, |t, attempt| {
            if attempt < 2 {
                (t + cost, Err("timeout"))
            } else {
                (t + cost, Ok(attempt))
            }
        });
        assert_eq!(result, Ok(2));
        // 3 attempts × 100 ms + backoff(250 ms + 500 ms).
        assert_eq!(finish, SimTime::ZERO + SimDuration::from_millis(1_050));
    }

    #[test]
    fn retry_rpc_exhausts_loudly() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from(6);
        let (_, result): (_, Result<(), _>) =
            retry_rpc(&policy, SimTime::ZERO, &mut rng, |t, _| {
                (t + SimDuration::from_millis(10), Err("down"))
            });
        match result {
            Err(RetryError::BudgetExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(last, "down");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn retry_rpc_records_metrics() {
        gridvm_simcore::metrics::reset();
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from(7);
        let (_, result) = retry_rpc(&policy, SimTime::ZERO, &mut rng, |t, attempt| {
            if attempt < 1 {
                (t, Err("x"))
            } else {
                (t, Ok(()))
            }
        });
        assert!(result.is_ok());
        let m = gridvm_simcore::metrics::take();
        assert_eq!(m.counter("gridmw.rpc_attempts"), 2);
        assert_eq!(m.counter("gridmw.rpc_retries"), 1);
        assert_eq!(m.counter("gridmw.retry_exhausted"), 0);
    }

    #[test]
    fn error_display_names_the_budget() {
        let e = RetryError::BudgetExhausted {
            attempts: 6,
            last: "timeout",
        };
        let s = e.to_string();
        assert!(s.contains('6') && s.contains("timeout"));
    }
}
