//! RPS-style resource prediction \[11\]: "Fed by a streaming
//! time-series produced by a resource sensor, it provides time-series
//! and application-level performance predictions on which basis
//! applications can make adaptation decisions."
//!
//! The predictor fits an AR(p) model over a sliding window of
//! measurements (host load, bandwidth) by least squares and produces
//! multi-step forecasts with widening confidence intervals.

use std::collections::VecDeque;

/// A fitted AR(p) model.
#[derive(Clone, Debug, PartialEq)]
pub struct ArModel {
    /// AR coefficients, lag 1 first.
    pub coeffs: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Residual (innovation) variance.
    pub noise_var: f64,
}

/// One forecast step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Expected value.
    pub mean: f64,
    /// Half-width of the ~95% confidence interval.
    pub ci95: f64,
}

/// Errors from fitting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than needed for the model order.
    TooFewObservations {
        /// Observations available.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// The design matrix was singular (constant series).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations { have, need } => {
                write!(f, "need {need} observations, have {have}")
            }
            FitError::Singular => write!(f, "design matrix is singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when the system is singular.
// Index loops are clearer than iterator gymnastics for in-place
// row elimination (two rows of `a` are borrowed at once).
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty");
        if pivot_val < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Sliding-window AR(p) predictor.
///
/// ```
/// use gridvm_gridmw::rps::ArPredictor;
///
/// let mut p = ArPredictor::new(1, 256);
/// for i in 0..200 {
///     p.observe(if i % 2 == 0 { 1.0 } else { 0.0 });
/// }
/// let model = p.fit()?;
/// assert!(model.coeffs[0] < 0.0, "alternating series has negative lag-1");
/// # Ok::<(), gridvm_gridmw::rps::FitError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ArPredictor {
    order: usize,
    window: VecDeque<f64>,
    capacity: usize,
}

impl ArPredictor {
    /// Creates a predictor of the given AR order over a sliding
    /// window of `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics on zero order, or capacity too small to fit the order.
    pub fn new(order: usize, capacity: usize) -> Self {
        assert!(order > 0, "AR(0) is not a model");
        assert!(
            capacity >= order * 4 + 4,
            "window of {capacity} too small for AR({order})"
        );
        ArPredictor {
            order,
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no observations have been made.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Appends a measurement, evicting the oldest beyond capacity.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite measurement.
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite observation {value}");
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }

    /// Fits the AR(p) model to the current window by least squares.
    ///
    /// # Errors
    ///
    /// [`FitError`] when too few observations or the series is
    /// degenerate.
    pub fn fit(&self) -> Result<ArModel, FitError> {
        let p = self.order;
        let xs: Vec<f64> = self.window.iter().copied().collect();
        let need = p * 3 + 3;
        if xs.len() < need {
            return Err(FitError::TooFewObservations {
                have: xs.len(),
                need,
            });
        }
        let rows = xs.len() - p;
        // Design: [x_{t-1} ... x_{t-p} 1] -> x_t
        let dim = p + 1;
        let mut ata = vec![vec![0.0; dim]; dim];
        let mut atb = vec![0.0; dim];
        for t in p..xs.len() {
            let mut row = Vec::with_capacity(dim);
            for lag in 1..=p {
                row.push(xs[t - lag]);
            }
            row.push(1.0);
            for i in 0..dim {
                for j in 0..dim {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * xs[t];
            }
        }
        let sol = solve(ata, atb).ok_or(FitError::Singular)?;
        let (coeffs, intercept) = (sol[..p].to_vec(), sol[p]);
        // Residual variance.
        let mut ss = 0.0;
        for t in p..xs.len() {
            let mut pred = intercept;
            for (lag, c) in coeffs.iter().enumerate() {
                pred += c * xs[t - lag - 1];
            }
            ss += (xs[t] - pred).powi(2);
        }
        Ok(ArModel {
            coeffs,
            intercept,
            noise_var: ss / rows as f64,
        })
    }

    /// Forecasts `steps` values ahead using a fitted model and the
    /// current window tail. Confidence intervals widen with the
    /// horizon (variance accumulates through the AR recursion).
    ///
    /// # Panics
    ///
    /// Panics if the window holds fewer than `order` observations or
    /// `steps` is zero.
    pub fn predict(&self, model: &ArModel, steps: usize) -> Vec<Prediction> {
        assert!(steps > 0, "zero-step forecast");
        assert!(
            self.window.len() >= self.order,
            "window shorter than model order"
        );
        let mut state: Vec<f64> = self.window.iter().rev().take(self.order).copied().collect(); // state[0] = most recent
        let mut out = Vec::with_capacity(steps);
        let mut var = 0.0;
        // Variance propagation via the lag-1 coefficient dominates;
        // the exact MA(∞) expansion is overkill for adaptation hints.
        let gain: f64 = model.coeffs.iter().sum::<f64>().abs().min(0.999);
        for _ in 0..steps {
            let mut mean = model.intercept;
            for (lag, c) in model.coeffs.iter().enumerate() {
                mean += c * state[lag];
            }
            var = model.noise_var + gain * gain * var;
            out.push(Prediction {
                mean,
                ci95: 1.96 * var.sqrt(),
            });
            state.rotate_right(1);
            state[0] = mean;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::rng::SimRng;

    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = 2.0 + phi * (x - 2.0) + rng.normal(0.0, 0.1);
                x
            })
            .collect()
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let mut p = ArPredictor::new(1, 2048);
        for v in ar1_series(0.9, 2000, 1) {
            p.observe(v);
        }
        let m = p.fit().unwrap();
        assert!(
            (m.coeffs[0] - 0.9).abs() < 0.05,
            "phi estimate {}",
            m.coeffs[0]
        );
        assert!(m.noise_var < 0.02, "noise var {}", m.noise_var);
    }

    #[test]
    fn prediction_beats_the_long_run_mean_short_term() {
        let series = ar1_series(0.95, 3000, 2);
        let mut p = ArPredictor::new(1, 1024);
        for v in &series[..2999] {
            p.observe(*v);
        }
        let truth = series[2999];
        let m = p.fit().unwrap();
        let pred = p.predict(&m, 1)[0].mean;
        let long_run_mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
        assert!(
            (pred - truth).abs() < (long_run_mean - truth).abs() + 0.05,
            "AR forecast {pred} vs mean {long_run_mean}, truth {truth}"
        );
    }

    #[test]
    fn confidence_widens_with_horizon() {
        let mut p = ArPredictor::new(1, 1024);
        for v in ar1_series(0.9, 1000, 3) {
            p.observe(v);
        }
        let m = p.fit().unwrap();
        let f = p.predict(&m, 20);
        assert!(f[19].ci95 > f[0].ci95, "CI must widen");
        assert!(f[0].ci95 > 0.0);
    }

    #[test]
    fn higher_order_models_fit() {
        let mut p = ArPredictor::new(3, 1024);
        for v in ar1_series(0.8, 900, 4) {
            p.observe(v);
        }
        let m = p.fit().unwrap();
        assert_eq!(m.coeffs.len(), 3);
        let f = p.predict(&m, 5);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|x| x.mean.is_finite()));
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let mut p = ArPredictor::new(2, 64);
        p.observe(1.0);
        p.observe(2.0);
        assert!(matches!(p.fit(), Err(FitError::TooFewObservations { .. })));
    }

    #[test]
    fn constant_series_is_singular() {
        let mut p = ArPredictor::new(2, 128);
        for _ in 0..100 {
            p.observe(5.0);
        }
        assert_eq!(p.fit(), Err(FitError::Singular));
    }

    #[test]
    fn window_slides() {
        let mut p = ArPredictor::new(1, 8);
        for i in 0..100 {
            p.observe(f64::from(i));
        }
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn solver_handles_small_systems() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!(solve(vec![vec![1.0, 1.0], vec![1.0, 1.0]], vec![1.0, 2.0]).is_none());
    }
}
