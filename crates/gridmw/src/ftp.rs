//! GridFTP-style explicit transfers: control-channel setup, parallel
//! streams, and striped throughput — the "explicit transfers (e.g.
//! GridFTP)" alternative to on-demand virtual-file-system sessions in
//! step 3 of the architecture.

use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{Bandwidth, ByteSize};

/// A GridFTP endpoint pair (control + data channels over one path).
#[derive(Clone, Debug)]
pub struct GridFtp {
    /// Control-channel RTT-ish setup cost per session.
    session_setup: SimDuration,
    /// The network path.
    path_latency: SimDuration,
    path_bandwidth: Bandwidth,
    /// Parallel TCP streams (GridFTP's signature feature).
    streams: u32,
    /// Fraction of path bandwidth one stream achieves (TCP window
    /// limits on high-RTT paths).
    single_stream_efficiency: f64,
    sessions: u64,
    bytes: ByteSize,
}

impl GridFtp {
    /// Creates an endpoint over a path with the given latency and
    /// bandwidth, using `streams` parallel streams.
    ///
    /// # Panics
    ///
    /// Panics on zero streams.
    pub fn new(path_latency: SimDuration, path_bandwidth: Bandwidth, streams: u32) -> Self {
        assert!(streams > 0, "GridFTP needs at least one stream");
        GridFtp {
            session_setup: SimDuration::from_millis(900),
            path_latency,
            path_bandwidth,
            streams,
            single_stream_efficiency: 0.35,
            sessions: 0,
            bytes: ByteSize::ZERO,
        }
    }

    /// Sessions opened so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Bytes moved so far.
    pub fn bytes_moved(&self) -> ByteSize {
        self.bytes
    }

    /// Effective throughput with the configured stream count: each
    /// stream achieves a window-limited share; streams sum up to the
    /// path bandwidth at most.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        let per_stream = self.path_bandwidth.as_bytes_per_sec() * self.single_stream_efficiency;
        let total =
            (per_stream * f64::from(self.streams)).min(self.path_bandwidth.as_bytes_per_sec());
        Bandwidth::from_bytes_per_sec(total)
    }

    /// Transfers `size` bytes starting at `now`; returns the
    /// completion instant.
    pub fn transfer(&mut self, now: SimTime, size: ByteSize) -> SimTime {
        self.sessions += 1;
        self.bytes += size;
        let mut pipe = Pipe::new(self.path_latency, self.effective_bandwidth());
        let g = pipe.send(now + self.session_setup, size);
        g.finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wan(streams: u32) -> GridFtp {
        GridFtp::new(
            SimDuration::from_millis(17),
            Bandwidth::from_mbit_per_sec(20.0),
            streams,
        )
    }

    #[test]
    fn parallel_streams_beat_a_single_stream() {
        let mut one = wan(1);
        let mut four = wan(4);
        let size = ByteSize::from_mib(64);
        let t1 = one.transfer(SimTime::ZERO, size);
        let t4 = four.transfer(SimTime::ZERO, size);
        assert!(
            t4.as_secs_f64() < t1.as_secs_f64() / 2.0,
            "4 streams {t4} vs 1 stream {t1}"
        );
    }

    #[test]
    fn streams_cannot_exceed_path_bandwidth() {
        let many = wan(64);
        let eff = many.effective_bandwidth().as_bytes_per_sec();
        let path = Bandwidth::from_mbit_per_sec(20.0).as_bytes_per_sec();
        assert!((eff - path).abs() < 1.0, "capped at path bandwidth");
    }

    #[test]
    fn session_setup_is_paid_per_transfer() {
        let mut g = wan(4);
        let t = g.transfer(SimTime::ZERO, ByteSize::from_bytes(1));
        assert!(
            t.as_secs_f64() > 0.9,
            "setup dominates a tiny transfer: {t}"
        );
        assert_eq!(g.sessions(), 1);
        assert_eq!(g.bytes_moved(), ByteSize::from_bytes(1));
    }

    #[test]
    fn accounting_accumulates() {
        let mut g = wan(2);
        g.transfer(SimTime::ZERO, ByteSize::from_mib(1));
        g.transfer(SimTime::ZERO, ByteSize::from_mib(2));
        assert_eq!(g.sessions(), 2);
        assert_eq!(g.bytes_moved(), ByteSize::from_mib(3));
    }
}
