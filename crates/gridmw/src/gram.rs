//! GRAM-style job dispatch: the `globusrun` pipeline.
//!
//! Table 2 measures "wall-clock execution time from the beginning to
//! the end of the execution of globusrun", so the middleware framing
//! matters: GSI mutual authentication, gatekeeper fork and
//! job-manager hand-off on the way in; status polling and teardown on
//! the way out. Calibrated so the full round trip adds ≈ 4 s on a
//! LAN, matching the floor visible in the paper's fastest row
//! (12.4 s restore = middleware + 128 MB state read).

use std::collections::BTreeMap;

use gridvm_simcore::server::FifoServer;
use gridvm_simcore::time::{SimDuration, SimTime};

/// What a submission asks the gatekeeper to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRequest {
    /// Executable label (e.g. `"vmware-start"`).
    pub executable: String,
    /// Grid identity of the submitter.
    pub subject: String,
}

/// Handle to a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Job lifecycle states, GRAM-style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the job manager.
    Pending,
    /// Running on the resource.
    Active,
    /// Finished; wall-clock endpoints known.
    Done,
    /// The resource died under the job (host crash); the job must be
    /// resubmitted to finish.
    Failed,
}

/// Errors from the gatekeeper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GramError {
    /// The subject is not in the grid-mapfile.
    NotAuthorized(
        /// The rejected subject.
        String,
    ),
    /// Unknown job handle.
    UnknownJob(
        /// The handle.
        JobId,
    ),
    /// The job has not finished yet (for
    /// [`GramServer::globusrun_end`]).
    StillRunning(
        /// The handle.
        JobId,
    ),
    /// The job's resource failed; `globusrun` cannot complete it and
    /// the caller must resubmit.
    JobFailed(
        /// The handle.
        JobId,
    ),
}

impl std::fmt::Display for GramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GramError::NotAuthorized(s) => write!(f, "subject {s:?} not authorized"),
            GramError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            GramError::StillRunning(id) => write!(f, "job {id:?} still running"),
            GramError::JobFailed(id) => write!(f, "job {id:?} failed; resubmit it"),
        }
    }
}

impl std::error::Error for GramError {}

/// Timing profile of the middleware path.
#[derive(Clone, Copy, Debug)]
pub struct GramCosts {
    /// GSI mutual authentication (certificate exchange, delegation).
    pub authenticate: SimDuration,
    /// Gatekeeper fork + job-manager start.
    pub dispatch: SimDuration,
    /// Poll interval for status.
    pub poll_interval: SimDuration,
    /// Client-side teardown after Done is observed.
    pub teardown: SimDuration,
}

impl Default for GramCosts {
    fn default() -> Self {
        GramCosts {
            authenticate: SimDuration::from_millis(1_600),
            dispatch: SimDuration::from_millis(1_200),
            poll_interval: SimDuration::from_millis(500),
            teardown: SimDuration::from_millis(300),
        }
    }
}

#[derive(Clone, Debug)]
struct Job {
    state: JobState,
    started: SimTime,
    payload_done: Option<SimTime>,
}

/// The gatekeeper + job manager of one compute server.
///
/// ```
/// use gridvm_gridmw::gram::{GramServer, JobRequest};
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut gram = GramServer::new();
/// gram.authorize("/O=Grid/CN=userX");
/// let req = JobRequest { executable: "vmware-start".into(),
///                        subject: "/O=Grid/CN=userX".into() };
/// let (t_active, job) = gram.submit(SimTime::ZERO, &req)?;
/// // ... payload runs; report when it ends:
/// gram.payload_finished(job, t_active + SimDuration::from_secs(10))?;
/// let t_end = gram.globusrun_end(job)?;
/// assert!(t_end > t_active + SimDuration::from_secs(10));
/// # Ok::<(), gridvm_gridmw::gram::GramError>(())
/// ```
#[derive(Debug, Default)]
pub struct GramServer {
    costs: GramCosts,
    mapfile: Vec<String>,
    gatekeeper: FifoServer,
    jobs: BTreeMap<JobId, Job>,
    next_id: u64,
}

impl GramServer {
    /// Creates a gatekeeper with default costs and an empty
    /// grid-mapfile.
    pub fn new() -> Self {
        GramServer::default()
    }

    /// Overrides the timing profile.
    pub fn with_costs(mut self, costs: GramCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The timing profile.
    pub fn costs(&self) -> &GramCosts {
        &self.costs
    }

    /// Adds a subject to the grid-mapfile.
    pub fn authorize(&mut self, subject: &str) {
        self.mapfile.push(subject.to_owned());
    }

    /// Submits a job at `now`. Returns the instant the payload may
    /// begin (authentication + dispatch done) and the job handle.
    ///
    /// # Errors
    ///
    /// [`GramError::NotAuthorized`] for unknown subjects.
    pub fn submit(
        &mut self,
        now: SimTime,
        req: &JobRequest,
    ) -> Result<(SimTime, JobId), GramError> {
        if !self.mapfile.contains(&req.subject) {
            return Err(GramError::NotAuthorized(req.subject.clone()));
        }
        // Authentication and dispatch serialize through the
        // gatekeeper process.
        let grant = self
            .gatekeeper
            .admit(now, self.costs.authenticate + self.costs.dispatch);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                state: JobState::Active,
                started: grant.finish,
                payload_done: None,
            },
        );
        Ok((grant.finish, id))
    }

    /// Current state of a job.
    ///
    /// # Errors
    ///
    /// [`GramError::UnknownJob`].
    pub fn state(&self, id: JobId) -> Result<JobState, GramError> {
        self.jobs
            .get(&id)
            .map(|j| j.state)
            .ok_or(GramError::UnknownJob(id))
    }

    /// Reports that the job's payload completed at `when`.
    ///
    /// # Errors
    ///
    /// [`GramError::UnknownJob`].
    pub fn payload_finished(&mut self, id: JobId, when: SimTime) -> Result<(), GramError> {
        let job = self.jobs.get_mut(&id).ok_or(GramError::UnknownJob(id))?;
        job.state = JobState::Done;
        job.payload_done = Some(when);
        Ok(())
    }

    /// Marks the job's resource as dead at `when` (an injected host
    /// crash): the job moves to [`JobState::Failed`] and can only be
    /// completed through [`GramServer::resubmit`].
    ///
    /// # Errors
    ///
    /// [`GramError::UnknownJob`].
    pub fn fail_job(&mut self, id: JobId, when: SimTime) -> Result<(), GramError> {
        let job = self.jobs.get_mut(&id).ok_or(GramError::UnknownJob(id))?;
        job.state = JobState::Failed;
        job.payload_done = Some(when);
        gridvm_simcore::metrics::counter_add("gram.jobs_failed", 1);
        Ok(())
    }

    /// Resubmits after a failure: a fresh submission (full
    /// authentication + dispatch — GSI does not reuse the dead job's
    /// delegation), counted in `gram.resubmissions`.
    ///
    /// # Errors
    ///
    /// [`GramError::NotAuthorized`] for unknown subjects.
    pub fn resubmit(
        &mut self,
        now: SimTime,
        req: &JobRequest,
    ) -> Result<(SimTime, JobId), GramError> {
        gridvm_simcore::metrics::counter_add("gram.resubmissions", 1);
        self.submit(now, req)
    }

    /// The instant `globusrun` returns to the user: the first poll
    /// tick at or after payload completion, plus teardown.
    ///
    /// # Errors
    ///
    /// Unknown job, a failed job, or the payload has not been
    /// reported finished.
    pub fn globusrun_end(&self, id: JobId) -> Result<SimTime, GramError> {
        let job = self.jobs.get(&id).ok_or(GramError::UnknownJob(id))?;
        if job.state == JobState::Failed {
            return Err(GramError::JobFailed(id));
        }
        let done = job.payload_done.ok_or(GramError::StillRunning(id))?;
        // Polling starts when the job went active; the client sees
        // Done at the next poll boundary.
        let elapsed = done.saturating_duration_since(job.started);
        let interval = self.costs.poll_interval.as_nanos().max(1);
        let polls = elapsed.as_nanos().div_ceil(interval);
        let observed = job.started + self.costs.poll_interval * polls;
        Ok(observed + self.costs.teardown)
    }

    /// Total middleware overhead for a payload of the given length:
    /// `globusrun` wall time minus the payload itself.
    pub fn middleware_overhead(&self, payload: SimDuration) -> SimDuration {
        // auth + dispatch + poll rounding (≤ one interval) + teardown
        self.costs.authenticate
            + self.costs.dispatch
            + self.costs.poll_interval
            + self.costs.teardown
            - SimDuration::from_nanos(
                payload.as_nanos() % self.costs.poll_interval.as_nanos().max(1),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> GramServer {
        let mut g = GramServer::new();
        g.authorize("/CN=alice");
        g
    }

    fn req() -> JobRequest {
        JobRequest {
            executable: "vm-start".into(),
            subject: "/CN=alice".into(),
        }
    }

    #[test]
    fn authorized_submission_pays_auth_and_dispatch() {
        let mut g = server();
        let (start, id) = g.submit(SimTime::ZERO, &req()).unwrap();
        assert!(
            (start.as_secs_f64() - 2.8).abs() < 1e-9,
            "auth+dispatch {start}"
        );
        assert_eq!(g.state(id).unwrap(), JobState::Active);
    }

    #[test]
    fn unauthorized_subject_is_rejected() {
        let mut g = server();
        let bad = JobRequest {
            executable: "vm-start".into(),
            subject: "/CN=mallory".into(),
        };
        assert!(matches!(
            g.submit(SimTime::ZERO, &bad),
            Err(GramError::NotAuthorized(_))
        ));
    }

    #[test]
    fn globusrun_wall_time_brackets_payload() {
        let mut g = server();
        let (start, id) = g.submit(SimTime::ZERO, &req()).unwrap();
        let payload = SimDuration::from_secs(10);
        g.payload_finished(id, start + payload).unwrap();
        let end = g.globusrun_end(id).unwrap();
        let total = end.as_secs_f64();
        // 2.8 (in) + 10 (payload) + ≤0.5 (poll) + 0.3 (out)
        assert!((12.8..13.7).contains(&total), "globusrun total {total}");
        assert_eq!(g.state(id).unwrap(), JobState::Done);
    }

    #[test]
    fn middleware_floor_is_about_four_seconds() {
        let g = server();
        let o = g
            .middleware_overhead(SimDuration::from_secs(8))
            .as_secs_f64();
        assert!((3.5..4.5).contains(&o), "middleware overhead {o}");
    }

    #[test]
    fn concurrent_submissions_queue_on_the_gatekeeper() {
        let mut g = server();
        let (a, _) = g.submit(SimTime::ZERO, &req()).unwrap();
        let (b, _) = g.submit(SimTime::ZERO, &req()).unwrap();
        assert!(b > a, "second submission waits for the gatekeeper");
    }

    #[test]
    fn failed_job_must_be_resubmitted() {
        gridvm_simcore::metrics::reset();
        let mut g = server();
        let (start, id) = g.submit(SimTime::ZERO, &req()).unwrap();
        g.fail_job(id, start + SimDuration::from_secs(3)).unwrap();
        assert_eq!(g.state(id).unwrap(), JobState::Failed);
        assert!(matches!(g.globusrun_end(id), Err(GramError::JobFailed(_))));
        let (restart, id2) = g
            .resubmit(start + SimDuration::from_secs(5), &req())
            .unwrap();
        assert_ne!(id, id2, "resubmission is a fresh job");
        assert!(restart > start, "fresh auth+dispatch paid again");
        g.payload_finished(id2, restart + SimDuration::from_secs(2))
            .unwrap();
        assert!(g.globusrun_end(id2).is_ok());
        let m = gridvm_simcore::metrics::take();
        assert_eq!(m.counter("gram.jobs_failed"), 1);
        assert_eq!(m.counter("gram.resubmissions"), 1);
    }

    #[test]
    fn job_errors_are_reported() {
        let mut g = server();
        assert!(matches!(g.state(JobId(9)), Err(GramError::UnknownJob(_))));
        let (_, id) = g.submit(SimTime::ZERO, &req()).unwrap();
        assert!(matches!(
            g.globusrun_end(id),
            Err(GramError::StillRunning(_))
        ));
        assert!(g.payload_finished(JobId(99), SimTime::ZERO).is_err());
    }
}
