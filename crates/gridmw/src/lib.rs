//! # gridvm-gridmw
//!
//! Grid middleware services (Sections 3.2, 3.4 and 4): the pieces of
//! Globus-era infrastructure the VM architecture plugs into.
//!
//! * [`info`] — an information service in the MDS/URGIS mold: typed
//!   resource records (physical hosts, VM instances and **VM
//!   futures** — "hosts would advertise what kinds and how many
//!   virtual machines they were willing to instantiate"), relational
//!   queries with bounded, nondeterministic partial results.
//! * [`batch`] — a PBS-style space-shared batch queue \[3\] with
//!   FIFO and EASY-backfill policies, the layer that converts VM
//!   startup latency into batch throughput cost.
//! * [`gram`] — GRAM-style job dispatch: the `globusrun` pipeline of
//!   authentication, job-manager hand-off and polling that frames
//!   every Table 2 measurement ("wall-clock execution time from the
//!   beginning to the end of the execution of globusrun").
//! * [`ftp`] — GridFTP-style explicit transfers with control-channel
//!   setup and parallel streams.
//! * [`accounts`] — logical user accounts (PUNCH \[20\]): leases
//!   decoupling grid identities from local accounts.
//! * [`rps`] — an RPS-like resource predictor \[11\]: AR-model
//!   fitting over a sliding window of load measurements, with
//!   confidence intervals for adaptation decisions.
//! * [`retry`] — per-RPC failure semantics: capped exponential
//!   backoff with seeded jitter and bounded retry budgets, the
//!   middleware layer's answer to injected faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounts;
pub mod batch;
pub mod ftp;
pub mod gram;
pub mod info;
pub mod retry;
pub mod rps;

pub use accounts::AccountPool;
pub use batch::{BatchJob, QueuePolicy};
pub use gram::{GramServer, JobRequest};
pub use info::{InfoService, Query, ResourceKind, ResourceRecord};
pub use retry::RetryPolicy;
pub use rps::ArPredictor;
