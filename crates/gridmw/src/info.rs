//! The grid information service: resource records, VM futures, and
//! relational queries with bounded nondeterministic results.
//!
//! "Virtual machines would register when instantiated. Hosts would
//! advertise what kinds and how many virtual machines they were
//! willing to instantiate (virtual machine futures). ... such queries
//! are non-deterministic and return partial results in a bounded
//! amount of time."

use std::collections::BTreeMap;
use std::fmt;

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

/// Unique id of a registered resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u64);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// What kind of thing a record describes.
#[derive(Clone, Debug, PartialEq)]
pub enum ResourceKind {
    /// A physical compute server (a potential VM host).
    PhysicalHost {
        /// CPU count.
        cores: usize,
        /// Clock rate in Hz.
        clock_hz: f64,
        /// Installed memory in MiB.
        memory_mib: u64,
    },
    /// A running VM instance.
    VmInstance {
        /// The host it runs on.
        host: ResourceId,
        /// Guest OS label.
        guest_os: String,
        /// Memory in MiB.
        memory_mib: u64,
    },
    /// A *VM future*: capacity to instantiate VMs on demand.
    VmFuture {
        /// The advertising host.
        host: ResourceId,
        /// Guest OS images the host can instantiate.
        images: Vec<String>,
        /// How many more VMs the host will accept.
        available_slots: u32,
    },
    /// An image server archiving VM images.
    ImageServer {
        /// Image names archived.
        images: Vec<String>,
    },
    /// A data server holding user files.
    DataServer {
        /// Site label.
        site: String,
    },
}

impl ResourceKind {
    /// Short tag for queries and display.
    pub fn tag(&self) -> &'static str {
        match self {
            ResourceKind::PhysicalHost { .. } => "host",
            ResourceKind::VmInstance { .. } => "vm",
            ResourceKind::VmFuture { .. } => "future",
            ResourceKind::ImageServer { .. } => "image-server",
            ResourceKind::DataServer { .. } => "data-server",
        }
    }
}

/// One registered resource.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceRecord {
    /// Identity.
    pub id: ResourceId,
    /// Typed payload.
    pub kind: ResourceKind,
    /// Owning site / administrative domain.
    pub site: String,
    /// Free-form attributes (key → value), queryable.
    pub attrs: BTreeMap<String, String>,
}

/// A relational query over records.
///
/// Queries compose with [`Query::and`]/[`Query::or`]/[`Query::not`];
/// evaluation is a pure predicate on a record.
#[derive(Clone, Debug)]
pub enum Query {
    /// Match everything.
    All,
    /// Match records of the given kind tag (see
    /// [`ResourceKind::tag`]).
    Kind(
        /// The tag.
        &'static str,
    ),
    /// Match records from a site.
    Site(
        /// Site name.
        String,
    ),
    /// Match records whose attribute equals a value.
    AttrEq(
        /// Attribute key.
        String,
        /// Required value.
        String,
    ),
    /// Match VM futures that can instantiate the named image with at
    /// least one slot.
    CanInstantiate(
        /// Image name.
        String,
    ),
    /// Match physical hosts with at least this many cores.
    MinCores(
        /// Core floor.
        usize,
    ),
    /// Conjunction.
    And(Box<Query>, Box<Query>),
    /// Disjunction.
    Or(Box<Query>, Box<Query>),
    /// Negation.
    Not(Box<Query>),
}

impl Query {
    /// `self AND other`.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Evaluates the query against one record.
    pub fn matches(&self, r: &ResourceRecord) -> bool {
        match self {
            Query::All => true,
            Query::Kind(tag) => r.kind.tag() == *tag,
            Query::Site(s) => r.site == *s,
            Query::AttrEq(k, v) => r.attrs.get(k).is_some_and(|x| x == v),
            Query::CanInstantiate(image) => matches!(
                &r.kind,
                ResourceKind::VmFuture { images, available_slots, .. }
                    if *available_slots > 0 && images.iter().any(|i| i == image)
            ),
            Query::MinCores(n) => {
                matches!(&r.kind, ResourceKind::PhysicalHost { cores, .. } if cores >= n)
            }
            Query::And(a, b) => a.matches(r) && b.matches(r),
            Query::Or(a, b) => a.matches(r) || b.matches(r),
            Query::Not(q) => !q.matches(r),
        }
    }
}

/// The information service directory.
///
/// ```
/// use gridvm_gridmw::info::{InfoService, Query, ResourceKind};
/// use gridvm_simcore::rng::SimRng;
/// use gridvm_simcore::time::SimTime;
///
/// let mut mds = InfoService::new();
/// let host = mds.register(SimTime::ZERO, "uf", ResourceKind::PhysicalHost {
///     cores: 2, clock_hz: 800e6, memory_mib: 1024 });
/// mds.register(SimTime::ZERO, "uf", ResourceKind::VmFuture {
///     host, images: vec!["rh72".into()], available_slots: 4 });
/// let mut rng = SimRng::seed_from(1);
/// let hits = mds.query(&Query::CanInstantiate("rh72".into()), 10, &mut rng);
/// assert_eq!(hits.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InfoService {
    records: BTreeMap<ResourceId, ResourceRecord>,
    next_id: u64,
    /// Registration lag: directory entries become visible after this
    /// propagation delay.
    propagation: SimDuration,
    registered_at: BTreeMap<ResourceId, SimTime>,
}

impl InfoService {
    /// Creates an empty directory with a 2-second propagation delay.
    pub fn new() -> Self {
        InfoService {
            records: BTreeMap::new(),
            next_id: 0,
            propagation: SimDuration::from_secs(2),
            registered_at: BTreeMap::new(),
        }
    }

    /// Overrides the propagation delay.
    pub fn with_propagation(mut self, d: SimDuration) -> Self {
        self.propagation = d;
        self
    }

    /// Registers a resource at `now`; it becomes queryable after the
    /// propagation delay.
    pub fn register(&mut self, now: SimTime, site: &str, kind: ResourceKind) -> ResourceId {
        let id = ResourceId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            id,
            ResourceRecord {
                id,
                kind,
                site: site.to_owned(),
                attrs: BTreeMap::new(),
            },
        );
        self.registered_at.insert(id, now);
        id
    }

    /// Sets an attribute on a record. No-op for unknown ids.
    pub fn set_attr(&mut self, id: ResourceId, key: &str, value: &str) {
        if let Some(r) = self.records.get_mut(&id) {
            r.attrs.insert(key.to_owned(), value.to_owned());
        }
    }

    /// Deregisters (VM shutdown, host withdrawal). Idempotent.
    pub fn deregister(&mut self, id: ResourceId) {
        self.records.remove(&id);
        self.registered_at.remove(&id);
    }

    /// Updates the free-slot count of a VM future. No-op for other
    /// kinds.
    pub fn update_future_slots(&mut self, id: ResourceId, slots: u32) {
        if let Some(r) = self.records.get_mut(&id) {
            if let ResourceKind::VmFuture {
                available_slots, ..
            } = &mut r.kind
            {
                *available_slots = slots;
            }
        }
    }

    /// Fetches a record by id (visible immediately to its owner).
    pub fn get(&self, id: ResourceId) -> Option<&ResourceRecord> {
        self.records.get(&id)
    }

    /// Number of registered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Runs a bounded query **as of `now`**: only records whose
    /// registration has propagated are candidates; at most `limit`
    /// matches are returned, and when more exist a random subset is
    /// chosen (the paper's nondeterministic partial results).
    pub fn query_at(
        &self,
        now: SimTime,
        q: &Query,
        limit: usize,
        rng: &mut SimRng,
    ) -> Vec<&ResourceRecord> {
        let mut hits: Vec<&ResourceRecord> = self
            .records
            .values()
            .filter(|r| {
                self.registered_at
                    .get(&r.id)
                    .is_some_and(|t| *t + self.propagation <= now)
            })
            .filter(|r| q.matches(r))
            .collect();
        if hits.len() > limit {
            rng.shuffle(&mut hits);
            hits.truncate(limit);
            hits.sort_by_key(|r| r.id);
        }
        hits
    }

    /// [`query_at`](InfoService::query_at) at the end of time —
    /// every registration visible (testing convenience).
    pub fn query(&self, q: &Query, limit: usize, rng: &mut SimRng) -> Vec<&ResourceRecord> {
        self.query_at(SimTime::MAX, q, limit, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> (InfoService, ResourceId, ResourceId) {
        let mut mds = InfoService::new().with_propagation(SimDuration::ZERO);
        let h1 = mds.register(
            SimTime::ZERO,
            "uf",
            ResourceKind::PhysicalHost {
                cores: 2,
                clock_hz: 800e6,
                memory_mib: 1024,
            },
        );
        let h2 = mds.register(
            SimTime::ZERO,
            "nw",
            ResourceKind::PhysicalHost {
                cores: 4,
                clock_hz: 933e6,
                memory_mib: 512,
            },
        );
        mds.register(
            SimTime::ZERO,
            "uf",
            ResourceKind::VmFuture {
                host: h1,
                images: vec!["rh72".into(), "rh71".into()],
                available_slots: 2,
            },
        );
        mds.register(
            SimTime::ZERO,
            "nw",
            ResourceKind::VmFuture {
                host: h2,
                images: vec!["rh71".into()],
                available_slots: 0,
            },
        );
        (mds, h1, h2)
    }

    #[test]
    fn typed_queries_compose() {
        let (mds, ..) = directory();
        let mut rng = SimRng::seed_from(1);
        let uf_hosts = mds.query(
            &Query::Kind("host").and(Query::Site("uf".into())),
            10,
            &mut rng,
        );
        assert_eq!(uf_hosts.len(), 1);
        let big = mds.query(&Query::MinCores(4), 10, &mut rng);
        assert_eq!(big.len(), 1);
        let not_uf = mds.query(
            &Query::Kind("host").and(Query::Site("uf".into()).not()),
            10,
            &mut rng,
        );
        assert_eq!(not_uf.len(), 1);
        let either = mds.query(
            &Query::Site("uf".into()).or(Query::Site("nw".into())),
            10,
            &mut rng,
        );
        assert_eq!(either.len(), 4);
    }

    #[test]
    fn futures_with_no_slots_do_not_match() {
        let (mds, ..) = directory();
        let mut rng = SimRng::seed_from(2);
        let rh71 = mds.query(&Query::CanInstantiate("rh71".into()), 10, &mut rng);
        assert_eq!(rh71.len(), 1, "the zero-slot future is excluded");
        let rh72 = mds.query(&Query::CanInstantiate("rh72".into()), 10, &mut rng);
        assert_eq!(rh72.len(), 1);
    }

    #[test]
    fn slot_updates_change_visibility() {
        let (mut mds, _, h2) = directory();
        let mut rng = SimRng::seed_from(3);
        // Find the nw future and give it slots.
        let future_id = mds.query(
            &Query::Kind("future").and(Query::Site("nw".into())),
            1,
            &mut rng,
        )[0]
        .id;
        mds.update_future_slots(future_id, 3);
        let rh71 = mds.query(&Query::CanInstantiate("rh71".into()), 10, &mut rng);
        assert_eq!(rh71.len(), 2);
        let _ = h2;
    }

    #[test]
    fn results_are_bounded_and_partial() {
        let mut mds = InfoService::new().with_propagation(SimDuration::ZERO);
        for i in 0..50 {
            mds.register(
                SimTime::ZERO,
                if i % 2 == 0 { "a" } else { "b" },
                ResourceKind::DataServer { site: "x".into() },
            );
        }
        let mut rng = SimRng::seed_from(4);
        let r1 = mds.query(&Query::All, 10, &mut rng);
        assert_eq!(r1.len(), 10);
        let r2 = mds.query(&Query::All, 10, &mut rng);
        let ids1: Vec<ResourceId> = r1.iter().map(|r| r.id).collect();
        let ids2: Vec<ResourceId> = r2.iter().map(|r| r.id).collect();
        assert_ne!(ids1, ids2, "partial results are nondeterministic");
    }

    #[test]
    fn propagation_delay_hides_fresh_registrations() {
        let mut mds = InfoService::new(); // 2 s propagation
        mds.register(
            SimTime::from_secs(10),
            "uf",
            ResourceKind::DataServer { site: "uf".into() },
        );
        let mut rng = SimRng::seed_from(5);
        assert!(mds
            .query_at(SimTime::from_secs(11), &Query::All, 10, &mut rng)
            .is_empty());
        assert_eq!(
            mds.query_at(SimTime::from_secs(12), &Query::All, 10, &mut rng)
                .len(),
            1
        );
    }

    #[test]
    fn attributes_are_queryable() {
        let (mut mds, h1, _) = directory();
        mds.set_attr(h1, "arch", "i686");
        let mut rng = SimRng::seed_from(6);
        let hits = mds.query(&Query::AttrEq("arch".into(), "i686".into()), 10, &mut rng);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, h1);
    }

    #[test]
    fn deregistration_removes_records() {
        let (mut mds, h1, _) = directory();
        let before = mds.len();
        mds.deregister(h1);
        mds.deregister(h1); // idempotent
        assert_eq!(mds.len(), before - 1);
        assert!(mds.get(h1).is_none());
    }
}
