//! Logical user accounts (PUNCH \[20\], Section 3.1): a pool of
//! local accounts leased to grid identities on demand, decoupling
//! "access to physical resources (middleware) from access to virtual
//! resources (end-users and services)".
//!
//! VMs make this natural — "dedicated VM guests can be assigned on a
//! per-user basis, and the user identities within a VM guest are
//! completely decoupled from the identities of its VM host" — but the
//! host still needs a local account to run each VMM process under;
//! that is what this pool manages.

use std::collections::BTreeMap;

use gridvm_simcore::time::{SimDuration, SimTime};

/// A local (physical) account name on a resource.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalAccount(pub String);

/// Errors from the account pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccountError {
    /// Every local account is leased.
    PoolExhausted,
    /// The grid identity holds no lease.
    NoLease(
        /// The identity.
        String,
    ),
}

impl std::fmt::Display for AccountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountError::PoolExhausted => write!(f, "no free logical accounts"),
            AccountError::NoLease(id) => write!(f, "no lease held by {id:?}"),
        }
    }
}

impl std::error::Error for AccountError {}

/// A pool of local accounts leased to grid identities.
///
/// ```
/// use gridvm_gridmw::accounts::AccountPool;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut pool = AccountPool::new(&["grid01", "grid02"], SimDuration::from_secs(3600));
/// let acct = pool.acquire(SimTime::ZERO, "/CN=alice")?;
/// assert!(acct.0.starts_with("grid0"));
/// # Ok::<(), gridvm_gridmw::accounts::AccountError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AccountPool {
    accounts: Vec<LocalAccount>,
    lease_time: SimDuration,
    /// grid identity -> (account index, expiry)
    leases: BTreeMap<String, (usize, SimTime)>,
}

impl AccountPool {
    /// Creates a pool over the given local account names.
    ///
    /// # Panics
    ///
    /// Panics on an empty name list or zero lease time.
    pub fn new(names: &[&str], lease_time: SimDuration) -> Self {
        assert!(!names.is_empty(), "empty account pool");
        assert!(!lease_time.is_zero(), "zero lease time");
        AccountPool {
            accounts: names
                .iter()
                .map(|n| LocalAccount((*n).to_owned()))
                .collect(),
            lease_time,
            leases: BTreeMap::new(),
        }
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.accounts.len()
    }

    /// Leases held (unexpired at `now`).
    pub fn active(&self, now: SimTime) -> usize {
        self.leases.values().filter(|(_, e)| *e > now).count()
    }

    /// Acquires (or renews) the lease for a grid identity.
    ///
    /// # Errors
    ///
    /// [`AccountError::PoolExhausted`] when all accounts are held.
    pub fn acquire(&mut self, now: SimTime, identity: &str) -> Result<LocalAccount, AccountError> {
        if let Some((idx, expiry)) = self.leases.get_mut(identity) {
            if *expiry > now {
                *expiry = now + self.lease_time;
                return Ok(self.accounts[*idx].clone());
            }
        }
        let taken: Vec<usize> = self
            .leases
            .values()
            .filter(|(_, e)| *e > now)
            .map(|(i, _)| *i)
            .collect();
        let free = (0..self.accounts.len()).find(|i| !taken.contains(i));
        match free {
            Some(idx) => {
                self.leases
                    .insert(identity.to_owned(), (idx, now + self.lease_time));
                Ok(self.accounts[idx].clone())
            }
            None => Err(AccountError::PoolExhausted),
        }
    }

    /// The account currently leased to an identity.
    ///
    /// # Errors
    ///
    /// [`AccountError::NoLease`].
    pub fn lookup(&self, now: SimTime, identity: &str) -> Result<LocalAccount, AccountError> {
        match self.leases.get(identity) {
            Some((idx, expiry)) if *expiry > now => Ok(self.accounts[*idx].clone()),
            _ => Err(AccountError::NoLease(identity.to_owned())),
        }
    }

    /// Releases an identity's lease. Idempotent.
    pub fn release(&mut self, identity: &str) {
        self.leases.remove(identity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> AccountPool {
        AccountPool::new(&["grid01", "grid02"], SimDuration::from_secs(100))
    }

    #[test]
    fn identities_map_to_distinct_accounts() {
        let mut p = pool();
        let a = p.acquire(SimTime::ZERO, "/CN=alice").unwrap();
        let b = p.acquire(SimTime::ZERO, "/CN=bob").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.active(SimTime::ZERO), 2);
    }

    #[test]
    fn renewal_is_stable() {
        let mut p = pool();
        let a1 = p.acquire(SimTime::ZERO, "/CN=alice").unwrap();
        let a2 = p.acquire(SimTime::from_secs(50), "/CN=alice").unwrap();
        assert_eq!(a1, a2);
        // renewal extended the lease past the original expiry
        assert!(p.lookup(SimTime::from_secs(120), "/CN=alice").is_ok());
    }

    #[test]
    fn exhaustion_then_expiry_reclaims() {
        let mut p = pool();
        p.acquire(SimTime::ZERO, "/CN=a").unwrap();
        p.acquire(SimTime::ZERO, "/CN=b").unwrap();
        assert_eq!(
            p.acquire(SimTime::ZERO, "/CN=c"),
            Err(AccountError::PoolExhausted)
        );
        assert!(p.acquire(SimTime::from_secs(101), "/CN=c").is_ok());
    }

    #[test]
    fn release_frees_the_account() {
        let mut p = pool();
        let a = p.acquire(SimTime::ZERO, "/CN=a").unwrap();
        p.release("/CN=a");
        p.release("/CN=a"); // idempotent
        assert!(matches!(
            p.lookup(SimTime::ZERO, "/CN=a"),
            Err(AccountError::NoLease(_))
        ));
        let b = p.acquire(SimTime::ZERO, "/CN=b").unwrap();
        let c = p.acquire(SimTime::ZERO, "/CN=c").unwrap();
        assert!(a == b || a == c, "released account is reusable");
    }
}
