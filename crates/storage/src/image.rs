//! VM images and the image catalog (Section 3.1 "image management").
//!
//! A [`VmImage`] describes everything needed to instantiate a guest:
//! the virtual disk (as a sparse, seeded base store), an optional
//! post-boot memory snapshot (the *warm state* of Table 2's
//! VM-restore rows), and the boot working set — the subset of disk
//! blocks a cold boot actually touches, which is what makes
//! on-demand transfer so much cheaper than whole-image copying
//! ("the state associated with a static VM image is usually larger
//! than the working set that is associated with a dynamic VM
//! instance").

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gridvm_simcore::units::ByteSize;

use crate::block::MemBlockStore;

/// Immutable description of a stored VM image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmImage {
    /// Catalog name, e.g. `"redhat-7.2"`.
    pub name: String,
    /// Guest OS label (informational; used by information-service
    /// queries).
    pub os: String,
    /// Virtual disk capacity.
    pub disk_size: ByteCount,
    /// Block size of the virtual disk.
    pub block_size: ByteCount,
    /// Content seed for the sparse disk data.
    pub content_seed: u64,
    /// Post-boot memory snapshot size, when the image carries warm
    /// state (VM-restore); `None` for cold-only images.
    pub memory_snapshot: Option<ByteCount>,
    /// Number of disk blocks a cold boot reads (the boot working
    /// set).
    pub boot_working_set_blocks: u64,
}

/// Serializable mirror of [`ByteSize`] (bytes as `u64`).
///
/// `gridvm-simcore` deliberately has no serde dependency, so the
/// storage crate serializes byte counts as raw integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteCount(pub u64);

impl From<ByteSize> for ByteCount {
    fn from(b: ByteSize) -> Self {
        ByteCount(b.as_u64())
    }
}

impl From<ByteCount> for ByteSize {
    fn from(b: ByteCount) -> Self {
        ByteSize::from_bytes(b.0)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", ByteSize::from_bytes(self.0))
    }
}

impl VmImage {
    /// The paper's experimental guest: Red Hat Linux, 2 GB virtual
    /// disk, 128 MB memory snapshot, ~50 MB boot working set.
    pub fn redhat_guest(name: impl Into<String>) -> Self {
        let block = ByteSize::from_kib(4);
        VmImage {
            name: name.into(),
            os: "redhat-7.2".to_owned(),
            disk_size: ByteSize::from_gib(2).into(),
            block_size: block.into(),
            content_seed: 0x7270_7231,
            memory_snapshot: Some(ByteSize::from_mib(128).into()),
            boot_working_set_blocks: ByteSize::from_mib(50).blocks(block),
        }
    }

    /// Disk capacity in blocks.
    pub fn disk_blocks(&self) -> u64 {
        ByteSize::from(self.disk_size).blocks(self.block_size.into())
    }

    /// Instantiates the shared read-only base store for this image's
    /// disk.
    pub fn base_store(&self) -> Arc<MemBlockStore> {
        Arc::new(
            MemBlockStore::new(
                self.block_size.into(),
                self.disk_blocks(),
                self.content_seed,
            )
            .into_read_only(),
        )
    }

    /// Memory-snapshot size in blocks of this image's block size
    /// (zero when no snapshot).
    pub fn snapshot_blocks(&self) -> u64 {
        self.memory_snapshot
            .map(|s| ByteSize::from(s).blocks(self.block_size.into()))
            .unwrap_or(0)
    }
}

/// Errors from catalog operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// No image with that name.
    NotFound(
        /// The requested name.
        String,
    ),
    /// An image with that name already exists.
    Duplicate(
        /// The conflicting name.
        String,
    ),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NotFound(n) => write!(f, "image {n:?} not in catalog"),
            CatalogError::Duplicate(n) => write!(f, "image {n:?} already in catalog"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A name-keyed collection of images held by an image server.
#[derive(Clone, Debug, Default)]
pub struct ImageCatalog {
    images: BTreeMap<String, Arc<VmImage>>,
}

impl ImageCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ImageCatalog::default()
    }

    /// Registers an image.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Duplicate`] when the name is taken.
    pub fn register(&mut self, image: VmImage) -> Result<Arc<VmImage>, CatalogError> {
        if self.images.contains_key(&image.name) {
            return Err(CatalogError::Duplicate(image.name));
        }
        let arc = Arc::new(image);
        self.images.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Looks an image up by name.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for unknown names.
    pub fn lookup(&self, name: &str) -> Result<Arc<VmImage>, CatalogError> {
        self.images
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    /// Iterates images in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<VmImage>> {
        self.images.values()
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when no images are registered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockAddr, BlockStore};

    #[test]
    fn redhat_guest_matches_paper_parameters() {
        let img = VmImage::redhat_guest("rh72");
        assert_eq!(ByteSize::from(img.disk_size), ByteSize::from_gib(2));
        assert_eq!(
            img.memory_snapshot.map(ByteSize::from),
            Some(ByteSize::from_mib(128))
        );
        assert_eq!(img.disk_blocks(), 2 * 1024 * 1024 / 4);
        assert_eq!(img.boot_working_set_blocks, 50 * 1024 / 4);
        assert!(img.snapshot_blocks() > 0);
    }

    #[test]
    fn base_store_is_read_only_and_matches_geometry() {
        let img = VmImage::redhat_guest("rh72");
        let store = img.base_store();
        assert_eq!(store.num_blocks(), img.disk_blocks());
        assert!(store.read(BlockAddr(0)).is_ok());
    }

    #[test]
    fn catalog_round_trip() {
        let mut cat = ImageCatalog::new();
        assert!(cat.is_empty());
        cat.register(VmImage::redhat_guest("a")).unwrap();
        cat.register(VmImage::redhat_guest("b")).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.lookup("a").unwrap().name, "a");
        assert!(matches!(cat.lookup("zzz"), Err(CatalogError::NotFound(_))));
        assert!(matches!(
            cat.register(VmImage::redhat_guest("a")),
            Err(CatalogError::Duplicate(_))
        ));
        let names: Vec<&str> = cat.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "iteration is name-ordered");
    }

    #[test]
    fn image_serializes() {
        // The catalog record is what MDS-style information services
        // exchange; assert the key fields survive a text round-trip.
        let img = VmImage::redhat_guest("rh72");
        let json = serde_json_like(&img);
        assert!(json.contains("rh72"));
    }

    /// Minimal serialization smoke test without a serde dependency:
    /// use the Debug representation as a stand-in for field presence.
    fn serde_json_like(img: &VmImage) -> String {
        format!("{img:?}")
    }

    #[test]
    fn error_display() {
        assert!(CatalogError::NotFound("x".into()).to_string().contains("x"));
        assert!(CatalogError::Duplicate("y".into())
            .to_string()
            .contains("y"));
    }
}
