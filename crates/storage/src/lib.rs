//! # gridvm-storage
//!
//! Storage substrate for the gridvm suite: sparse block stores,
//! copy-on-write overlays, disk timing with a host buffer cache, VM
//! images, image servers and whole-image staging.
//!
//! The paper's Table 2 hinges on exactly these mechanisms:
//!
//! * **Persistent** VM disks require an explicit full copy of the
//!   (1–2 GB) image before startup — [`staging`] models that
//!   transfer and its >4-minute cost.
//! * **Non-persistent** disks are a [`cow`] diff over a read-only
//!   base image: no copy at startup, modifications land in the diff.
//! * The *VM-restore* rows read a 128 MB memory snapshot instead of
//!   booting; the *reboot* rows re-read the guest's boot working set.
//!   Both go through the [`disk`] timing model, whose
//!   [`cache`] (host buffer cache) reproduces the paper's
//!   warm-after-copy effects.
//! * [`image`] catalogs the images; [`imageserver`] serves blocks
//!   on demand or whole images for staging (Section 3.1 "image
//!   management").
//!
//! [`tape`] adds the end of the life cycle: idle images tier down to
//! a tape library and pay a recall before re-use ("infrequently run
//! virtual machine images will be migrated to tape").
//!
//! Data is held sparsely: unwritten blocks have deterministic
//! synthetic content, so a 2 GB disk costs memory proportional to the
//! blocks actually written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod cow;
pub mod disk;
pub mod image;
pub mod imageserver;
pub mod staging;
pub mod tape;

pub use block::{BlockAddr, BlockStore, MemBlockStore, StorageError};
pub use cache::BufferCache;
pub use cow::CowOverlay;
pub use disk::{DiskModel, DiskProfile};
pub use image::{ImageCatalog, VmImage};
pub use imageserver::ImageServer;
pub use tape::{ImageArchive, TapeProfile};
