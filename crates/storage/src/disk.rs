//! Disk timing: seeks, sequential bandwidth, and the host buffer
//! cache.
//!
//! The model is deliberately simple — a FIFO disk arm with a seek
//! charge for non-sequential accesses, constant sequential bandwidth,
//! and an LRU buffer cache in front — because those three effects are
//! what Table 2 turns on: explicit image copies are
//! bandwidth-limited, cold boots pay scattered seeks, and
//! boots/restores that follow a copy run out of the warm cache.

use gridvm_simcore::server::{FifoServer, ServiceGrant};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{Bandwidth, ByteSize};

use crate::block::BlockAddr;
use crate::cache::BufferCache;

/// Performance profile of a disk.
#[derive(Clone, Copy, Debug)]
pub struct DiskProfile {
    /// Positioning cost (seek + rotational) for a non-sequential
    /// access.
    pub seek: SimDuration,
    /// Sequential transfer bandwidth.
    pub bandwidth: Bandwidth,
    /// Block size of all devices on this disk.
    pub block_size: ByteSize,
    /// Host buffer-cache capacity, in blocks.
    pub cache_blocks: usize,
    /// Time to satisfy a read from the buffer cache.
    pub cache_hit_time: SimDuration,
}

impl DiskProfile {
    /// A c. 2003 commodity IDE disk: ~9 ms positioning, 16 MiB/s
    /// sequential, 4 KiB blocks, 256 MiB of host buffer cache, ~10 µs
    /// per cached block.
    pub fn ide_2003() -> Self {
        DiskProfile {
            seek: SimDuration::from_millis(9),
            bandwidth: Bandwidth::from_mib_per_sec(16.0),
            block_size: ByteSize::from_kib(4),
            cache_blocks: (256 * 1024) / 4,
            cache_hit_time: SimDuration::from_micros(10),
        }
    }

    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics on zero block size or zero cache capacity.
    pub fn validated(self) -> Self {
        assert!(!self.block_size.is_zero(), "zero block size");
        assert!(self.cache_blocks > 0, "zero cache");
        self
    }

    /// Per-block sequential transfer time.
    pub fn transfer_per_block(&self) -> SimDuration {
        self.bandwidth.transfer_time(self.block_size)
    }
}

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Read,
    /// A (write-through) write.
    Write,
}

/// A timed disk: FIFO arm, seek model, buffer cache.
///
/// ```
/// use gridvm_storage::block::BlockAddr;
/// use gridvm_storage::disk::{AccessKind, DiskModel, DiskProfile};
/// use gridvm_simcore::time::SimTime;
///
/// let mut d = DiskModel::new(DiskProfile::ide_2003());
/// let cold = d.access(SimTime::ZERO, BlockAddr(100), AccessKind::Read);
/// let warm = d.access(cold.finish, BlockAddr(100), AccessKind::Read);
/// assert!(warm.latency_from(cold.finish) < cold.latency_from(SimTime::ZERO));
/// ```
#[derive(Clone, Debug)]
pub struct DiskModel {
    profile: DiskProfile,
    arm: FifoServer,
    cache: BufferCache,
    last_block: Option<BlockAddr>,
    blocks_read: u64,
    blocks_written: u64,
    slowdown_percent: u32,
}

impl DiskModel {
    /// Creates a disk with a cold cache.
    pub fn new(profile: DiskProfile) -> Self {
        let profile = profile.validated();
        DiskModel {
            arm: FifoServer::new(),
            cache: BufferCache::new(profile.cache_blocks),
            last_block: None,
            blocks_read: 0,
            blocks_written: 0,
            slowdown_percent: 0,
            profile,
        }
    }

    /// Degrades the disk (fault injection): every subsequent access —
    /// seeks, transfers and cache hits alike — takes `percent` %
    /// longer. Zero restores nominal speed.
    pub fn set_slowdown_percent(&mut self, percent: u32) {
        self.slowdown_percent = percent;
    }

    /// The current slowdown, in percent (0 = nominal).
    pub fn slowdown_percent(&self) -> u32 {
        self.slowdown_percent
    }

    /// Scales a nominal service time by the active slowdown.
    fn degraded(&self, nominal: SimDuration) -> SimDuration {
        if self.slowdown_percent == 0 {
            nominal
        } else {
            nominal.mul_f64(1.0 + self.slowdown_percent as f64 / 100.0)
        }
    }

    /// The disk profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// The buffer cache (for hit-ratio assertions).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Blocks read so far (cache hits included).
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Blocks written so far.
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    /// Drops the buffer cache (host reboot between experiment
    /// samples).
    pub fn drop_cache(&mut self) {
        self.cache.clear();
        self.last_block = None;
    }

    /// Times a single-block access at `now`.
    ///
    /// Reads that hit the buffer cache cost
    /// [`cache_hit_time`](DiskProfile::cache_hit_time) and do not
    /// occupy the arm. Misses and writes queue on the arm, pay a seek
    /// unless sequential to the previous arm access, then transfer
    /// one block; the block becomes cache-resident.
    pub fn access(&mut self, now: SimTime, addr: BlockAddr, kind: AccessKind) -> ServiceGrant {
        match kind {
            AccessKind::Read => {
                self.blocks_read += 1;
                if self.cache.touch(addr) {
                    return ServiceGrant {
                        start: now,
                        finish: now + self.degraded(self.profile.cache_hit_time),
                    };
                }
            }
            AccessKind::Write => {
                self.blocks_written += 1;
                // write-through: always goes to the arm
            }
        }
        let sequential = self.last_block.is_some_and(|last| addr.0 == last.0 + 1);
        let service = if sequential {
            self.profile.transfer_per_block()
        } else {
            self.profile.seek + self.profile.transfer_per_block()
        };
        self.last_block = Some(addr);
        self.cache.insert(addr);
        let service = self.degraded(service);
        self.arm.admit(now, service)
    }

    /// Times a sequential run of `count` blocks starting at `start`:
    /// one seek plus streaming transfer for the uncached span. All
    /// touched blocks become resident.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn access_run(
        &mut self,
        now: SimTime,
        start: BlockAddr,
        count: u64,
        kind: AccessKind,
    ) -> ServiceGrant {
        assert!(count > 0, "empty run");
        let mut uncached = 0;
        for i in 0..count {
            let addr = BlockAddr(start.0 + i);
            let hit = match kind {
                AccessKind::Read => {
                    self.blocks_read += 1;
                    self.cache.touch(addr)
                }
                AccessKind::Write => {
                    self.blocks_written += 1;
                    false
                }
            };
            if !hit {
                uncached += 1;
            }
            self.cache.insert(addr);
        }
        if uncached == 0 {
            return ServiceGrant {
                start: now,
                finish: now + self.degraded(self.profile.cache_hit_time * count),
            };
        }
        let service =
            self.degraded(self.profile.seek + self.profile.transfer_per_block() * uncached);
        self.last_block = Some(BlockAddr(start.0 + count - 1));
        self.arm.admit(now, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel::new(DiskProfile::ide_2003())
    }

    #[test]
    fn cold_read_pays_seek_plus_transfer() {
        let mut d = model();
        let g = d.access(SimTime::ZERO, BlockAddr(10), AccessKind::Read);
        let expect = d.profile.seek + d.profile.transfer_per_block();
        assert_eq!(g.finish.duration_since(SimTime::ZERO), expect);
    }

    #[test]
    fn cached_read_is_fast_and_skips_the_arm() {
        let mut d = model();
        let g1 = d.access(SimTime::ZERO, BlockAddr(10), AccessKind::Read);
        let g2 = d.access(g1.finish, BlockAddr(10), AccessKind::Read);
        assert_eq!(g2.latency_from(g1.finish), d.profile.cache_hit_time);
        assert_eq!(d.cache().hits(), 1);
    }

    #[test]
    fn sequential_reads_skip_seeks() {
        let mut d = model();
        let g1 = d.access(SimTime::ZERO, BlockAddr(0), AccessKind::Read);
        let g2 = d.access(g1.finish, BlockAddr(1), AccessKind::Read);
        assert_eq!(
            g2.latency_from(g1.finish),
            d.profile.transfer_per_block(),
            "no seek for the next block"
        );
        let g3 = d.access(g2.finish, BlockAddr(50), AccessKind::Read);
        assert_eq!(
            g3.latency_from(g2.finish),
            d.profile.seek + d.profile.transfer_per_block(),
            "jump pays a seek"
        );
    }

    #[test]
    fn slowdown_stretches_every_path() {
        let mut d = model();
        d.set_slowdown_percent(50);
        assert_eq!(d.slowdown_percent(), 50);
        // Cold single-block read: 1.5× nominal.
        let g = d.access(SimTime::ZERO, BlockAddr(10), AccessKind::Read);
        let nominal = d.profile.seek + d.profile.transfer_per_block();
        assert_eq!(g.finish.duration_since(SimTime::ZERO), nominal.mul_f64(1.5));
        // Cache hit: 1.5× hit time.
        let warm = d.access(g.finish, BlockAddr(10), AccessKind::Read);
        assert_eq!(
            warm.latency_from(g.finish),
            d.profile.cache_hit_time.mul_f64(1.5)
        );
        // Back to nominal once the fault clears.
        d.set_slowdown_percent(0);
        let g2 = d.access(warm.finish, BlockAddr(500), AccessKind::Read);
        assert_eq!(g2.latency_from(warm.finish), nominal);
    }

    #[test]
    fn run_access_is_one_seek_plus_stream() {
        let mut d = model();
        let g = d.access_run(SimTime::ZERO, BlockAddr(0), 1000, AccessKind::Read);
        let expect = d.profile.seek + d.profile.transfer_per_block() * 1000;
        assert_eq!(g.finish.duration_since(SimTime::ZERO), expect);
        // Re-reading the same run is all cache.
        let g2 = d.access_run(g.finish, BlockAddr(0), 1000, AccessKind::Read);
        assert_eq!(
            g2.finish.duration_since(g.finish),
            d.profile.cache_hit_time * 1000
        );
    }

    #[test]
    fn writes_always_hit_the_arm_but_warm_the_cache() {
        let mut d = model();
        let w = d.access(SimTime::ZERO, BlockAddr(5), AccessKind::Write);
        assert!(w.latency_from(SimTime::ZERO) >= d.profile.transfer_per_block());
        let r = d.access(w.finish, BlockAddr(5), AccessKind::Read);
        assert_eq!(r.latency_from(w.finish), d.profile.cache_hit_time);
        assert_eq!(d.blocks_written(), 1);
        assert_eq!(d.blocks_read(), 1);
    }

    #[test]
    fn queued_accesses_serialize_on_the_arm() {
        let mut d = model();
        let a = d.access(SimTime::ZERO, BlockAddr(10), AccessKind::Read);
        let b = d.access(SimTime::ZERO, BlockAddr(500), AccessKind::Read);
        assert_eq!(b.start, a.finish, "arm is FIFO");
    }

    #[test]
    fn drop_cache_forgets_residency() {
        let mut d = model();
        let g = d.access(SimTime::ZERO, BlockAddr(1), AccessKind::Read);
        d.drop_cache();
        let g2 = d.access(g.finish, BlockAddr(1), AccessKind::Read);
        assert!(g2.latency_from(g.finish) > d.profile.cache_hit_time);
    }

    #[test]
    fn a_2gb_sequential_copy_takes_minutes() {
        // Sanity-anchor for Table 2: reading 2 GiB sequentially at
        // 16 MiB/s takes ~128 s; a same-disk copy (read + write) will
        // be roughly double that in the staging module.
        let mut d = model();
        let blocks = ByteSize::from_gib(2).blocks(d.profile.block_size);
        let g = d.access_run(SimTime::ZERO, BlockAddr(0), blocks, AccessKind::Read);
        let secs = g.finish.as_secs_f64();
        assert!((125.0..135.0).contains(&secs), "2GiB read {secs}s");
    }
}
